//! The paper's §4.2 worked examples, verbatim: the relations R1, R2, R3
//! over three four-step transactions with `π(2)` classes {t1, t2} | {t3}
//! and a level-2 breakpoint after each transaction's second step.
//!
//! * R1's coherent closure is a coherent partial order (with a small
//!   fidelity note — see `mla-core::relations` — its generator set is not
//!   literally closed under condition (b));
//! * R2 is non-coherent, and closing it yields exactly R1's closure;
//! * R3 (one pair reversed) closes to a cycle — not extendable to any
//!   coherent total order.
//!
//! Run with: `cargo run --example paper_relations`

use multilevel_atomicity::core::breakpoints::BreakpointDescription;
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::core::relations::{Elem, RelationContext};

/// The paper's 1-based `a_{i j}` notation.
fn a(i: usize, j: usize) -> Elem {
    (i - 1, j - 1)
}

fn main() {
    let nest = Nest::new(3, vec![vec![0], vec![0], vec![1]]).unwrap();
    let bd = BreakpointDescription::from_mid_levels(3, 4, &[vec![2]]).unwrap();
    let ctx = RelationContext::new(nest, vec![bd.clone(), bd.clone(), bd]);

    let r1 = vec![
        (a(1, 2), a(2, 2)),
        (a(2, 2), a(1, 3)),
        (a(1, 4), a(3, 1)),
        (a(2, 4), a(3, 3)),
    ];
    println!("R1 = <t_i orders> + {{(a12,a22), (a22,a13), (a14,a31), (a24,a33)}}");
    println!(
        "  literally coherent?                 {:?}",
        ctx.is_coherent(&r1, true).err().map(|v| v.to_string())
    );
    println!(
        "  extendable to coherent total order? {}",
        ctx.extendable_to_coherent_partial_order(&r1)
    );

    let r2 = vec![
        (a(1, 1), a(2, 2)),
        (a(2, 1), a(1, 3)),
        (a(1, 1), a(3, 1)),
        (a(2, 1), a(3, 3)),
    ];
    println!("\nR2 = sources pulled back to their segment starts");
    println!(
        "  literally coherent?                 {}",
        ctx.is_coherent(&r2, true).is_ok()
    );
    let closure_r1 = ctx.coherent_closure(&r1);
    let closure_r2 = ctx.coherent_closure(&r2);
    println!(
        "  closure(R2) == closure(R1)?         {}",
        closure_r1 == closure_r2
    );

    let r3 = vec![
        (a(1, 1), a(2, 2)),
        (a(2, 1), a(1, 3)),
        (a(3, 1), a(1, 1)), // (a31, a11): the reversed pair
        (a(2, 1), a(3, 3)),
    ];
    println!("\nR3 = R2 with (a31, a11) in place of (a11, a31)");
    let closure_r3 = ctx.coherent_closure(&r3);
    println!(
        "  closure is a partial order?         {}",
        ctx.is_partial_order(&closure_r3)
    );
    println!("  the paper's derivation:");
    println!(
        "    (a31,a11) lifts to (a32,a11): {}",
        ctx.pair_in(&closure_r3, a(3, 2), a(1, 1))
    );
    println!(
        "    (a21,a33) lifts to (a22,a33): {}",
        ctx.pair_in(&closure_r3, a(2, 2), a(3, 3))
    );
    println!(
        "    cycle a11 -> a22 -> a33 -> a11 closed: {}",
        ctx.pair_in(&closure_r3, a(1, 1), a(1, 1))
    );
}
