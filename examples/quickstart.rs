//! Quickstart: the paper's banking example, end to end, offline.
//!
//! Builds the §4.2/§4.3 setting — transfers with a withdraw/deposit
//! breakpoint, an atomic audit, a 4-nest — then:
//!
//! 1. checks executions for multilevel atomicity (membership in C(π, 𝔅));
//! 2. decides *correctability* with Theorem 2;
//! 3. extracts the constructive witness (Lemma 1) for a correctable but
//!    non-atomic interleaving;
//! 4. shows the witness's nested action tree (§7).
//!
//! Run with: `cargo run --example quickstart`

use multilevel_atomicity::core::action_tree::build_action_tree;
use multilevel_atomicity::core::breakpoints::BreakpointDescription;
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::core::spec::{ExecContext, FixedSpec};
use multilevel_atomicity::core::theorem::{decide, Correctability};
use multilevel_atomicity::core::{check_multilevel_atomic, is_multilevel_atomic};
use multilevel_atomicity::model::{EntityId, Execution, Step, TxnId};

fn step(txn: u32, seq: u32, entity: u32) -> Step {
    Step {
        txn: TxnId(txn),
        seq,
        entity: EntityId(entity),
        observed: 0,
        wrote: 0,
    }
}

fn main() {
    // Two transfers (t0, t1) from different families and one bank audit
    // (t2). Transfers: w w | d d with a level-2 breakpoint at the phase
    // boundary and level-3 breakpoints everywhere. The audit is atomic.
    let nest = Nest::new(4, vec![vec![0, 0], vec![0, 1], vec![1, 2]]).unwrap();
    // A transfer's description over an n-step (possibly truncated) run:
    // level-2 breakpoint at the phase boundary (after 2 withdrawals, if
    // reached), level-3 breakpoints everywhere.
    let transfer_bd = |n: usize| {
        let l2 = if n > 2 { vec![2] } else { Vec::new() };
        BreakpointDescription::from_mid_levels(4, n, &[l2, (1..n).collect()]).unwrap()
    };
    let spec_for = |t0: usize, t1: usize, audit: usize| {
        FixedSpec::new(4)
            .set(TxnId(0), transfer_bd(t0))
            .set(TxnId(1), transfer_bd(t1))
            .set(TxnId(2), BreakpointDescription::atomic(4, audit))
    };
    let spec = spec_for(4, 4, 2);

    // Transfers use disjoint accounts; the audit reads one account of
    // each transfer (entities 1 and 11).
    println!("== 1. Multilevel atomicity membership ==");
    let atomic_weave = Execution::new(vec![
        step(0, 0, 1),
        step(0, 1, 2), // t0 completes its withdrawal phase
        step(1, 0, 11),
        step(1, 1, 12),
        step(1, 2, 13),
        step(1, 3, 14), // all of t1 runs at t0's phase boundary
        step(0, 2, 3),
        step(0, 3, 4), // t0 deposits
        step(2, 0, 1),
        step(2, 1, 11), // audit runs after everything
    ])
    .unwrap();
    println!(
        "  phase-boundary weave multilevel atomic? {}",
        is_multilevel_atomic(&atomic_weave, &nest, &spec).unwrap()
    );

    let bad_weave = Execution::new(vec![
        step(0, 0, 1),
        step(1, 0, 11), // t1 interrupts t0 mid-withdrawals: not atomic
        step(0, 1, 2),
    ])
    .unwrap();
    let truncated_spec = spec_for(2, 1, 2);
    let ctx = ExecContext::new(&bad_weave, &nest, &truncated_spec).unwrap();
    match check_multilevel_atomic(&ctx) {
        Ok(()) => println!("  mid-phase interruption accepted (unexpected!)"),
        Err(v) => println!("  mid-phase interruption rejected: {v}"),
    }

    println!("\n== 2. Correctability (Theorem 2) ==");
    // The bad weave is still *correctable*: entities are disjoint, so an
    // equivalent reordering is multilevel atomic.
    match decide(&bad_weave, &nest, &truncated_spec).unwrap() {
        Correctability::Correctable { witness } => {
            println!("  correctable; witness: {witness}");
            assert!(is_multilevel_atomic(&witness, &nest, &truncated_spec).unwrap());
        }
        Correctability::NotCorrectable { cycle } => println!("  NOT correctable: {cycle}"),
    }

    // An audit wedged between conflicting accesses is NOT correctable:
    // audit reads account 1 before t0 writes it and account 11 after t1
    // wrote it, while t0 precedes t1 through a shared account 5.
    let wedged = Execution::new(vec![
        step(2, 0, 1), // audit reads account 1 ...
        step(0, 0, 1), // ... which t0 then withdraws from => audit < t0
        step(0, 1, 5),
        step(1, 0, 5),  // t0 < t1 (shared account)
        step(1, 1, 11), // t1 writes account 11 ...
        step(2, 1, 11), // ... which the audit then reads => t1 < audit
    ])
    .unwrap();
    let wedged_spec = spec_for(2, 2, 2);
    match decide(&wedged, &nest, &wedged_spec).unwrap() {
        Correctability::Correctable { .. } => println!("  wedged audit accepted (unexpected!)"),
        Correctability::NotCorrectable { cycle } => {
            println!("  wedged audit rejected; cycle: {cycle}")
        }
    }

    println!("\n== 3. Nested action tree (§7) ==");
    let ctx = ExecContext::new(&atomic_weave, &nest, &spec).unwrap();
    let tree = build_action_tree(&ctx).unwrap();
    print_tree(&tree, &ctx, 1);
}

fn print_tree(
    node: &multilevel_atomicity::core::action_tree::ActionNode,
    ctx: &ExecContext<'_>,
    indent: usize,
) {
    let txns: Vec<String> = node.txns(ctx).iter().map(|t| t.to_string()).collect();
    println!(
        "{:indent$}level {} steps {:?} txns [{}]",
        "",
        node.level,
        node.steps,
        txns.join(","),
        indent = indent * 2
    );
    for c in &node.children {
        print_tree(c, ctx, indent + 1);
    }
}
