//! The crossing-transfers race: where multilevel atomicity pays off.
//!
//! Two transfers move money in opposite directions between the same two
//! accounts, with tight timing that produces the weave
//! `w0 w1 d1 d0` — opposing conflict orders on the two accounts.
//!
//! * Under **serializability** (SGT), the weave closes a conflict cycle:
//!   one transfer must be rolled back and retried.
//! * Under **multilevel atomicity** with a withdraw/deposit breakpoint
//!   and the two transfers `π(2)`-related, the same weave is *inside*
//!   `C(π, 𝔅)`: MLA-detect grants every step, zero aborts.
//!
//! This is the paper's §6 conjecture ("fewer cycles would be detected
//! ... leading to fewer rollbacks") in its smallest concrete instance.
//!
//! Run with: `cargo run --release --example scheduler_race`

use std::sync::Arc;

use multilevel_atomicity::cc::{oracle, MlaDetect, SgtControl, VictimPolicy};
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::model::program::{ScriptOp::*, ScriptProgram};
use multilevel_atomicity::model::{EntityId, TxnId};
use multilevel_atomicity::sim::{run, Control, SimConfig, SimOutcome};
use multilevel_atomicity::txn::{PhaseTable, RuntimeBreakpoints, RuntimeSpec, TxnInstance};

fn e(x: u32) -> EntityId {
    EntityId(x)
}

fn instances(bp: &Arc<dyn RuntimeBreakpoints>) -> Vec<TxnInstance> {
    vec![
        TxnInstance::new(
            TxnId(0),
            Arc::new(ScriptProgram::new(vec![Add(e(0), -10), Add(e(1), 10)])),
            bp.clone(),
        ),
        TxnInstance::new(
            TxnId(1),
            Arc::new(ScriptProgram::new(vec![Add(e(1), -10), Add(e(0), 10)])),
            bp.clone(),
        ),
    ]
}

fn race(control: &mut dyn Control, bp: &Arc<dyn RuntimeBreakpoints>, seed: u64) -> SimOutcome {
    run(
        Nest::new(3, vec![vec![0], vec![0]]).unwrap(),
        instances(bp),
        [(e(0), 100), (e(1), 100)],
        &[0, 0],
        &SimConfig {
            // Tight symmetric timing maximizes the chance of the weave.
            latency_jitter: 2,
            ..SimConfig::seeded(seed)
        },
        control,
    )
}

fn main() {
    let k = 3;
    let phase_bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
    let spec = RuntimeSpec::new(k)
        .with(TxnId(0), phase_bp.clone())
        .with(TxnId(1), phase_bp.clone());
    let nest = Nest::new(k, vec![vec![0], vec![0]]).unwrap();

    let seeds: Vec<u64> = (0..50).collect();
    let mut sgt_aborts = 0u64;
    let mut mla_aborts = 0u64;
    let mut weaves_seen = 0u64;
    for &seed in &seeds {
        let mut sgt = SgtControl::new(2, VictimPolicy::FewestSteps);
        let out_sgt = race(&mut sgt, &phase_bp, seed);
        assert!(
            oracle::is_serializable_outcome(&out_sgt),
            "SGT must serialize"
        );
        sgt_aborts += out_sgt.metrics.aborts;

        let mut mla = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out_mla = race(&mut mla, &phase_bp, seed);
        assert!(
            oracle::is_correctable_outcome(&out_mla, &nest, &spec),
            "MLA history must satisfy Theorem 2"
        );
        mla_aborts += out_mla.metrics.aborts;
        // Did the interesting weave actually occur in the MLA run?
        let txn_order: Vec<u32> = out_mla.execution.steps().iter().map(|s| s.txn.0).collect();
        if txn_order.windows(2).any(|w| w[0] != w[1]) {
            weaves_seen += 1;
        }
        // Money conserved either way.
        assert_eq!(out_mla.store.value(e(0)) + out_mla.store.value(e(1)), 200);
    }
    println!("crossing transfers, {} seeds:", seeds.len());
    println!("  interleaved weaves observed (MLA runs): {weaves_seen}");
    println!("  SGT aborts (serializability):           {sgt_aborts}");
    println!("  MLA-detect aborts (multilevel):         {mla_aborts}");
    assert!(
        mla_aborts <= sgt_aborts,
        "multilevel atomicity should never abort more than SGT here"
    );
    if sgt_aborts > 0 && mla_aborts == 0 {
        println!("  => the paper's §6 conjecture holds on this instance.");
    }
}
