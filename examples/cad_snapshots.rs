//! Utopian Planning (§2, Application 2): hierarchy depth in action.
//!
//! Runs the CAD workload — expert modifications organized into
//! specialties and teams, plus public-relations snapshots — under MLA
//! cycle prevention, sweeping the breakpoint hierarchy from "no
//! mid-level breakpoints" (pure serializability) to the full 5-level
//! trust gradient. Deeper trust ⇒ more admissible interleavings ⇒ fewer
//! waits. Snapshots stay atomic throughout (the π(2) split guarantees
//! it), which the snapshot-consistency check verifies.
//!
//! Run with: `cargo run --release --example cad_snapshots`

use multilevel_atomicity::cc::{oracle, MlaPrevent, VictimPolicy};
use multilevel_atomicity::sim::{run, SimConfig};
use multilevel_atomicity::workload::cad::{generate, CadConfig};

fn main() {
    println!(
        "{:<26} {:>9} {:>9} {:>8} {:>8} {:>11}",
        "breakpoint hierarchy", "thru/kt", "latency", "defers", "aborts", "correctable"
    );
    // (level3_unit, level2_unit) sweep: 0 = never break at that level.
    // (0, 0) = modifications fully atomic: serializability.
    for (l3, l2, label) in [
        (0usize, 0usize, "atomic (serializable)"),
        (2, 0, "specialty every 2"),
        (1, 0, "specialty every step"),
        (2, 4, "specialty 2 + global 4"),
        (1, 2, "specialty 1 + global 2"),
    ] {
        let cad = generate(CadConfig {
            modifications: 18,
            snapshots: 2,
            level3_unit: l3,
            level2_unit: l2,
            ..CadConfig::default()
        });
        let n = cad.workload.txn_count();
        let mut control = MlaPrevent::new(n, cad.workload.spec(), VictimPolicy::FewestSteps);
        let out = run(
            cad.workload.nest.clone(),
            cad.workload.instances(),
            cad.workload.initial.iter().copied(),
            &cad.workload.arrivals,
            &SimConfig::seeded(0xCAD),
            &mut control,
        );
        assert!(!out.metrics.timed_out, "{label}: timed out");
        assert_eq!(out.metrics.committed as usize, n);
        let correctable =
            oracle::is_correctable_outcome(&out, &cad.workload.nest, &cad.workload.spec());
        println!(
            "{:<26} {:>9.2} {:>9.1} {:>8} {:>8} {:>11}",
            label,
            out.metrics.throughput_per_kilotick(),
            out.metrics.mean_latency(),
            out.metrics.defers,
            out.metrics.aborts,
            if correctable { "yes" } else { "NO" },
        );
        assert!(correctable, "{label}: history violates Theorem 2");
        assert_eq!(
            control.prevention_misses, 0,
            "{label}: the §6 delay rule missed a cycle"
        );
    }
}
