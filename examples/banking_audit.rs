//! The bank transfer–audit scenario (§1, §2) under three concurrency
//! controls.
//!
//! Runs the banking workload — conditional transfers, per-family credit
//! audits, a whole-bank audit — under strict 2PL, MLA cycle prevention,
//! and MLA cycle detection, and reports:
//!
//! * throughput and mean commit latency;
//! * aborts, defers, and wasted (undone) work;
//! * the audit-consistency check: every audit's accumulated reads must
//!   equal the true total — no "money in transit" may ever be observed
//!   (in the equivalent multilevel-atomic execution);
//! * the Theorem 2 verdict on the final history.
//!
//! Run with: `cargo run --release --example banking_audit`

use multilevel_atomicity::cc::{oracle, MlaDetect, MlaPrevent, TwoPhaseLocking, VictimPolicy};
use multilevel_atomicity::model::Value;
use multilevel_atomicity::sim::{run, Control, SimConfig};
use multilevel_atomicity::workload::banking::{generate, Banking, BankingConfig};

fn main() {
    let config = BankingConfig {
        families: 4,
        accounts_per_family: 4,
        transfers: 24,
        bank_audits: 2,
        credit_audits: 4,
        intra_family_ratio: 0.5,
        ..BankingConfig::default()
    };
    println!(
        "banking: {} transfers, {} bank audits, {} credit audits, {} accounts\n",
        config.transfers,
        config.bank_audits,
        config.credit_audits,
        config.families * config.accounts_per_family
    );
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>12} {:>11}",
        "control",
        "thru/kt",
        "latency",
        "aborts",
        "defers",
        "wasted",
        "commit",
        "audit-consistent",
        "correctable"
    );

    let banking = generate(config.clone());
    run_one(&banking, &mut TwoPhaseLocking::new(), "strict-2pl");

    let banking = generate(config.clone());
    let n = banking.workload.txn_count();
    let mut prevent = MlaPrevent::new(n, banking.workload.spec(), VictimPolicy::FewestSteps);
    run_one(&banking, &mut prevent, "mla-prevent");

    let banking = generate(config);
    let mut detect = MlaDetect::new(banking.workload.spec(), VictimPolicy::FewestSteps);
    run_one(&banking, &mut detect, "mla-detect");
}

fn run_one(banking: &Banking, control: &mut dyn Control, label: &str) {
    let out = run(
        banking.workload.nest.clone(),
        banking.workload.instances(),
        banking.workload.initial.iter().copied(),
        &banking.workload.arrivals,
        &SimConfig::seeded(0xAA + banking.workload.txn_count() as u64),
        control,
    );
    assert!(!out.metrics.timed_out, "{label}: run timed out");

    // Audit consistency: each bank audit accumulated observations over
    // all accounts; in a correct system they sum to the bank total.
    let expected = banking.total_money();
    let audits_ok = banking.bank_audits.iter().all(|&a| {
        let sum: Value = out
            .execution
            .steps()
            .iter()
            .filter(|s| s.txn == a)
            .map(|s| s.observed)
            .sum();
        sum == expected
    });
    let correctable =
        oracle::is_correctable_outcome(&out, &banking.workload.nest, &banking.workload.spec());
    println!(
        "{:<14} {:>9.2} {:>9.1} {:>8} {:>8} {:>7.1}% {:>7} {:>12} {:>11}",
        label,
        out.metrics.throughput_per_kilotick(),
        out.metrics.mean_latency(),
        out.metrics.aborts,
        out.metrics.defers,
        out.metrics.wasted_work() * 100.0,
        out.metrics.committed,
        if audits_ok { "yes" } else { "NO" },
        if correctable { "yes" } else { "NO" },
    );
    assert!(audits_ok, "{label}: an audit observed money in transit");
    assert!(correctable, "{label}: final history violates Theorem 2");
}
