//! Every concurrency control, against the theory, across workloads and
//! seeds: the "safety oracle" sweep of DESIGN.md.
//!
//! For each (control, workload, seed) cell:
//! * the run must complete (all transactions committed, no timeout);
//! * serializable controls must produce conflict-serializable histories;
//! * MLA controls must produce Theorem-2-correctable histories;
//! * domain invariants must hold (money conserved; audits consistent);
//! * the §6 delay rule must never need its fallback
//!   (`prevention_misses == 0`).

use multilevel_atomicity::cc::{
    oracle, MlaDetect, MlaPrevent, SerialControl, SgtControl, TimestampOrdering, TwoPhaseLocking,
    VictimPolicy,
};
use multilevel_atomicity::model::Value;
use multilevel_atomicity::sim::{run, Control, SimConfig, SimOutcome};
use multilevel_atomicity::workload::banking::{generate as banking, BankingConfig};
use multilevel_atomicity::workload::cad::{generate as cad, CadConfig};
use multilevel_atomicity::workload::synthetic::{generate as synthetic, SyntheticConfig};
use multilevel_atomicity::workload::Workload;

fn run_workload(wl: &Workload, control: &mut dyn Control, seed: u64) -> SimOutcome {
    run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(seed),
        control,
    )
}

fn assert_complete(out: &SimOutcome, wl: &Workload, label: &str) {
    assert!(!out.metrics.timed_out, "{label}: timed out");
    assert_eq!(
        out.metrics.committed as usize,
        wl.txn_count(),
        "{label}: not all transactions committed"
    );
}

fn banking_invariants(b: &multilevel_atomicity::workload::banking::Banking, out: &SimOutcome) {
    let total: Value = b.accounts.iter().map(|&a| out.store.value(a)).sum();
    assert_eq!(total, b.total_money(), "money must be conserved");
    for &a in &b.bank_audits {
        let sum: Value = out
            .execution
            .steps()
            .iter()
            .filter(|s| s.txn == a)
            .map(|s| s.observed)
            .sum();
        assert_eq!(sum, b.total_money(), "audit {a} observed money in transit");
    }
}

#[test]
fn serializable_controls_on_banking() {
    for seed in [1u64, 2, 3] {
        let b = banking(BankingConfig {
            transfers: 10,
            bank_audits: 1,
            credit_audits: 2,
            seed,
            ..BankingConfig::default()
        });
        let wl = &b.workload;

        let out = run_workload(wl, &mut SerialControl::default(), seed);
        assert_complete(&out, wl, "serial");
        assert!(out.execution.is_serial());
        banking_invariants(&b, &out);

        let out = run_workload(wl, &mut TwoPhaseLocking::new(), seed);
        assert_complete(&out, wl, "2pl");
        assert!(
            oracle::is_serializable_outcome(&out),
            "2PL not serializable"
        );
        banking_invariants(&b, &out);

        let out = run_workload(wl, &mut TimestampOrdering::new(), seed);
        assert_complete(&out, wl, "t/o");
        assert!(
            oracle::is_serializable_outcome(&out),
            "T/O not serializable"
        );
        banking_invariants(&b, &out);

        let out = run_workload(
            wl,
            &mut SgtControl::new(wl.txn_count(), VictimPolicy::FewestSteps),
            seed,
        );
        assert_complete(&out, wl, "sgt");
        assert!(
            oracle::is_serializable_outcome(&out),
            "SGT not serializable"
        );
        banking_invariants(&b, &out);
    }
}

#[test]
fn mla_controls_on_banking() {
    for seed in [4u64, 5, 6] {
        let b = banking(BankingConfig {
            transfers: 12,
            bank_audits: 1,
            credit_audits: 2,
            seed,
            ..BankingConfig::default()
        });
        let wl = &b.workload;
        let spec = wl.spec();

        let mut detect = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run_workload(wl, &mut detect, seed);
        assert_complete(&out, wl, "mla-detect");
        assert!(
            oracle::is_correctable_outcome(&out, &wl.nest, &spec),
            "mla-detect history not correctable"
        );
        banking_invariants(&b, &out);

        let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
        let out = run_workload(wl, &mut prevent, seed);
        assert_complete(&out, wl, "mla-prevent");
        assert!(
            oracle::is_correctable_outcome(&out, &wl.nest, &spec),
            "mla-prevent history not correctable"
        );
        assert_eq!(prevent.prevention_misses, 0, "the §6 rule missed a cycle");
        banking_invariants(&b, &out);
    }
}

#[test]
fn all_controls_on_cad() {
    let c = cad(CadConfig {
        modifications: 10,
        snapshots: 2,
        ..CadConfig::default()
    });
    let wl = &c.workload;
    let spec = wl.spec();

    let out = run_workload(wl, &mut TwoPhaseLocking::new(), 7);
    assert_complete(&out, wl, "2pl/cad");
    assert!(oracle::is_serializable_outcome(&out));

    let mut detect = MlaDetect::new(spec.clone(), VictimPolicy::Requester);
    let out = run_workload(wl, &mut detect, 8);
    assert_complete(&out, wl, "mla-detect/cad");
    assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));

    let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::Requester);
    let out = run_workload(wl, &mut prevent, 9);
    assert_complete(&out, wl, "mla-prevent/cad");
    assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
    assert_eq!(prevent.prevention_misses, 0);

    // Snapshots must be read-only in the final history.
    for s in out.execution.steps() {
        if c.snapshots.contains(&s.txn) {
            assert!(s.is_read());
        }
    }
}

#[test]
fn mla_controls_on_synthetic_grid() {
    for (k, fanout, densities) in [
        (2usize, vec![], vec![]),
        (3, vec![2], vec![0.5]),
        (4, vec![2, 2], vec![0.3, 0.8]),
    ] {
        for seed in [11u64, 12] {
            let s = synthetic(SyntheticConfig {
                txns: 10,
                k,
                fanout: fanout.clone(),
                densities: densities.clone(),
                len_min: 2,
                len_max: 5,
                entities: 6,
                zipf_theta: 0.7,
                seed,
                ..SyntheticConfig::default()
            });
            let wl = &s.workload;
            let spec = wl.spec();

            let mut detect = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
            let out = run_workload(wl, &mut detect, seed);
            assert_complete(&out, wl, "detect/synthetic");
            assert!(
                oracle::is_correctable_outcome(&out, &wl.nest, &spec),
                "k={k} seed={seed}: detect history not correctable"
            );

            let mut prevent =
                MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
            let out = run_workload(wl, &mut prevent, seed);
            assert_complete(&out, wl, "prevent/synthetic");
            assert!(
                oracle::is_correctable_outcome(&out, &wl.nest, &spec),
                "k={k} seed={seed}: prevent history not correctable"
            );
            assert_eq!(prevent.prevention_misses, 0);
        }
    }
}

#[test]
fn victim_policies_all_safe() {
    for policy in [
        VictimPolicy::Requester,
        VictimPolicy::FewestSteps,
        VictimPolicy::MostSteps,
    ] {
        let b = banking(BankingConfig {
            transfers: 10,
            bank_audits: 1,
            credit_audits: 1,
            families: 2,
            accounts_per_family: 3,
            seed: 99,
            ..BankingConfig::default()
        });
        let wl = &b.workload;
        let spec = wl.spec();
        let mut detect = MlaDetect::new(spec.clone(), policy);
        let out = run_workload(wl, &mut detect, 13);
        assert_complete(&out, wl, policy.label());
        assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
        banking_invariants(&b, &out);
    }
}

#[test]
fn escrow_banking_under_both_mla_controls() {
    use multilevel_atomicity::workload::banking_escrow::generate_escrow;
    for seed in [21u64, 22] {
        let b = generate_escrow(BankingConfig {
            transfers: 10,
            bank_audits: 2,
            credit_audits: 0,
            seed,
            ..BankingConfig::default()
        });
        let wl = &b.workload;
        let spec = wl.spec();

        let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
        let out = run_workload(wl, &mut prevent, seed);
        assert_complete(&out, wl, "prevent/escrow");
        assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
        assert_eq!(prevent.prevention_misses, 0);
        banking_invariants(&b, &out);

        let mut detect = MlaDetect::new(spec.clone(), VictimPolicy::Requester);
        let out = run_workload(wl, &mut detect, seed);
        assert_complete(&out, wl, "detect/escrow");
        assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
        banking_invariants(&b, &out);
    }
}

#[test]
fn eviction_preserves_carrier_chains_cad_regression() {
    // Regression for the window-eviction carrier bug: in this exact CAD
    // cell (level-3 breakpoints every 2 steps, no level-2 breakpoints,
    // seed 2), a live modification's influence on future decisions routes
    // through a chain of *committed* transactions (late in-pair ->
    // lift-extended early out-pair). An eviction rule that only kept
    // direct live predecessors severed the chain, the §6 delay rule
    // missed a blocker, and the final history violated Theorem 2. The
    // reachability-based rule must keep the whole chain.
    use multilevel_atomicity::workload::cad::{generate as cad_gen, CadConfig};
    for seed in [1u64, 2] {
        let c = cad_gen(CadConfig {
            modifications: 10,
            snapshots: 2,
            level3_unit: 2,
            level2_unit: 0,
            arrival_spacing: 2,
            ..CadConfig::default()
        });
        let wl = &c.workload;
        let spec = wl.spec();
        let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
        let out = run_workload(wl, &mut prevent, seed);
        assert_complete(&out, wl, "prevent/cad-regression");
        assert!(
            oracle::is_correctable_outcome(&out, &wl.nest, &spec),
            "seed {seed}: eviction severed a carrier chain"
        );
        let mut detect = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run_workload(wl, &mut detect, seed);
        assert_complete(&out, wl, "detect/cad-regression");
        assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
    }
}
