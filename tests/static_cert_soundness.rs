//! Soundness of `mla-lint`'s §5 static safety certificates.
//!
//! A [`StaticCert`](multilevel_atomicity::core::StaticCert) claims that
//! *no* interleaving of the certified workload can fail Theorem 2. Two
//! consequences are tested here, over a sweep of randomly generated
//! partitioned-ish workloads (universe-local scripts touching a shared
//! entity at most once, random level-2 breakpoints — some certify, some
//! are denied; the sweep asserts both outcomes occur):
//!
//! 1. **Theorem oracle.** For every workload that certifies, random
//!    genuine executions (uniformly random live-transaction schedules,
//!    the same construction the experiment harness uses) must all be
//!    judged correctable by the offline Theorem 2 decision procedure.
//!    One counterexample falsifies the certificate.
//! 2. **Byte-identical histories.** The certified `MlaDetect` fast path
//!    must be observationally invisible: its simulated history equals
//!    the uncertified control's, and the uncertified control itself is
//!    run across the six backend shapes of the differential harness —
//!    serial unsharded, sharded ×1, sharded ×4, and thread-parallel
//!    4×2, 4×4, 8×3 — all of which must agree. (On a certified workload
//!    no decision is ever denied, so no victim policy fires and every
//!    shape walks the same grant sequence.)
//!
//! Denied workloads are exercised too: denial must come with a concrete
//! mixed-cycle witness diagnostic, never silently.
//!
//! Since the pass became a per-universe lattice, three more families of
//! checks ride along: partially-certified workloads must skip *only*
//! for their certified universes while still matching the uncertified
//! backends byte-for-byte; random **sub-lattices** (certified universes
//! arbitrarily demoted to condemned — always sound, the lattice is
//! monotone) must never change a history; and the `mixed` workload
//! family — whose all-or-nothing certificate was always `None` — must
//! now produce nonzero certified skips for each certifiable universe
//! under both schedulers, with every admission blessed by the offline
//! Theorem 2 oracle.

use std::sync::Arc;

use multilevel_atomicity::cc::{oracle, MlaDetect, MlaPrevent, VictimPolicy};
use multilevel_atomicity::core::theorem::is_correctable;
use multilevel_atomicity::core::{EngineBackend, StaticCert};
use multilevel_atomicity::explore::{explore, BoundedNest};
use multilevel_atomicity::lint::{certify_workload, Code};
use multilevel_atomicity::model::program::{ScriptOp, ScriptProgram};
use multilevel_atomicity::model::{EntityId, Execution, TxnId};
use multilevel_atomicity::sim::{run, SimConfig, SimOutcome};
use multilevel_atomicity::txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints};
use multilevel_atomicity::workload::mixed::{self, MixedConfig};
use multilevel_atomicity::workload::partitioned::{generate, PartitionedConfig};
use multilevel_atomicity::workload::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random workload in the partitioned family: each transaction lives
/// in one universe, touches its shared entity at most once, and may
/// carry level-2 breakpoints. Enough structure that many instances
/// certify; enough freedom (repeated shared access, breakpoint-free
/// multi-access transactions) that many are denied.
fn random_workload(rng: &mut SmallRng) -> Workload {
    let k = 3;
    let universes = rng.gen_range(1..=3usize);
    let n = rng.gen_range(2..=6usize);
    let mut programs: Vec<Arc<dyn multilevel_atomicity::model::Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut arrivals: Vec<u64> = Vec::new();
    let mut entities: Vec<EntityId> = (0..universes as u32).map(EntityId).collect();
    for t in 0..n {
        let u = rng.gen_range(0..universes);
        let len = rng.gen_range(1..=4usize);
        // Usually at most one shared access; sometimes more, which can
        // open a mixed cycle and deny certification.
        let shared_budget = if rng.gen_bool(0.8) { 1 } else { 2 };
        let mut shared_used = 0;
        let mut ops = Vec::with_capacity(len);
        for i in 0..len {
            let ent = if shared_used < shared_budget && rng.gen_bool(0.5) {
                shared_used += 1;
                EntityId(u as u32)
            } else {
                EntityId(((1 + t * 4 + i) * universes + u) as u32)
            };
            entities.push(ent);
            ops.push(ScriptOp::Add(ent, 1));
        }
        let bp: Arc<dyn RuntimeBreakpoints> = if len > 1 && rng.gen_bool(0.6) {
            let marks: Vec<(usize, usize)> = (1..len)
                .filter(|_| rng.gen_bool(0.5))
                .map(|p| (p, 2))
                .collect();
            Arc::new(PhaseTable::new(k, marks))
        } else {
            Arc::new(NoBreakpoints { k })
        };
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(bp);
        paths.push(vec![u as u32]);
        arrivals.push(rng.gen_range(0..8u64) * 2);
    }
    entities.sort_unstable();
    entities.dedup();
    Workload {
        name: "random-partitioned-ish".to_string(),
        nest: multilevel_atomicity::core::nest::Nest::new(k, paths)
            .expect("one universe path per transaction"),
        programs,
        breakpoints,
        initial: entities.into_iter().map(|e| (e, 0)).collect(),
        arrivals,
    }
}

/// A genuine, value-correct execution under a uniformly random
/// interleaving (the experiment harness's construction).
fn random_execution(wl: &Workload, rng: &mut SmallRng) -> Execution {
    let sys = wl.system();
    let mut schedule: Vec<TxnId> = Vec::new();
    let mut finished = vec![false; wl.txn_count()];
    let mut exec = Execution::empty();
    while schedule.len() < 256 {
        let live: Vec<u32> = (0..wl.txn_count() as u32)
            .filter(|&t| !finished[t as usize])
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[rng.gen_range(0..live.len())];
        schedule.push(TxnId(t));
        match sys.run_schedule(&schedule) {
            Ok(e) => exec = e,
            Err(_) => {
                schedule.pop();
                finished[t as usize] = true;
            }
        }
    }
    exec
}

fn detect_run(wl: &Workload, control: &mut MlaDetect, seed: u64) -> SimOutcome {
    run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(seed),
        control,
    )
}

/// The six backend shapes of the differential harness, as `MlaDetect`
/// configurations: (shards, workers), with (0, 0) the unsharded engine.
const SHAPES: [(usize, usize); 6] = [(0, 0), (1, 0), (4, 0), (4, 2), (4, 4), (8, 3)];

fn shaped(wl: &Workload, shards: usize, workers: usize) -> MlaDetect {
    let mut c = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
    if shards > 0 {
        c = c.with_shards(shards);
    }
    if workers > 0 {
        c = c.with_parallelism(workers);
    }
    c
}

/// A random sound weakening of a certificate lattice: every condemned
/// universe stays condemned, and each certified universe is kept or
/// demoted by a coin flip. Demotion is always sound (fewer skips, more
/// engine checks), so any sub-lattice must leave histories unchanged.
fn random_sub_lattice(lattice: &StaticCert, rng: &mut SmallRng) -> StaticCert {
    let footprints = (0..lattice.txn_count())
        .map(|t| lattice.footprint(TxnId(t as u32)).to_vec())
        .collect();
    let universe = (0..lattice.txn_count())
        .map(|t| lattice.universe_of(TxnId(t as u32)).unwrap())
        .collect();
    let certified = (0..lattice.universe_count() as u32)
        .map(|u| lattice.is_certified(u) && rng.gen_bool(0.5))
        .collect();
    StaticCert::per_universe(lattice.k(), footprints, universe, certified)
}

#[test]
fn certificates_are_sound_on_random_workloads() {
    let mut certified = 0usize;
    let mut partial = 0usize;
    let mut denied = 0usize;
    for seed in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(0xCE27_0000 + seed);
        let wl = random_workload(&mut rng);
        let certification = certify_workload(&wl);
        let lattice = certification
            .lattice
            .expect("script programs always have known footprints");
        if !lattice.any_certified() {
            // Denial must carry the witness diagnostic, never be silent.
            assert!(
                certification
                    .diagnostics
                    .iter()
                    .any(|d| d.code == Code::CertDenied),
                "seed {seed}: denial without an MLA021 witness"
            );
            denied += 1;
            continue;
        }
        let fully = lattice.fully_certified();
        if fully {
            certified += 1;
            // 1. The theorem oracle agrees with the certificate on random
            //    genuine executions.
            for _ in 0..3 {
                let exec = random_execution(&wl, &mut rng);
                if exec.steps().is_empty() {
                    continue;
                }
                assert!(
                    is_correctable(&exec, &wl.nest, &wl.spec())
                        .expect("random execution matches nest and spec"),
                    "seed {seed}: certified workload produced an uncorrectable execution"
                );
            }
        } else {
            partial += 1;
            assert!(
                certification
                    .diagnostics
                    .iter()
                    .any(|d| d.code == Code::CertDenied),
                "seed {seed}: partial certification still carries the MLA021 witness"
            );
        }
        // 2. The certified fast path is history-invisible, across all
        //    six uncertified backend shapes — for full *and* partial
        //    lattices.
        let cert = certification.cert.expect("any_certified implies a cert");
        let mut fast = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(cert);
        let out_fast = detect_run(&wl, &mut fast, seed);
        assert!(
            fast.certified_skips() > 0,
            "seed {seed}: certified run never took the fast path"
        );
        if fully {
            assert_eq!(
                fast.certified_skips(),
                fast.checks,
                "seed {seed}: fully certified run fell off the fast path"
            );
        }
        // Skips land only in certified universes, and account for the
        // whole total.
        let per = fast.certified_skips_per_universe();
        assert_eq!(per.iter().sum::<u64>(), fast.certified_skips());
        for (u, &skips) in per.iter().enumerate() {
            if !lattice.is_certified(u as u32) {
                assert_eq!(skips, 0, "seed {seed}: condemned universe {u} skipped");
            }
        }
        assert!(oracle::is_correctable_outcome(
            &out_fast,
            &wl.nest,
            &wl.spec()
        ));
        for (shards, workers) in SHAPES {
            let mut base = shaped(&wl, shards, workers);
            let out_base = detect_run(&wl, &mut base, seed);
            if fully {
                assert_eq!(
                    out_base.metrics.aborts, 0,
                    "seed {seed}: certified workload aborted on shape {shards}x{workers}"
                );
            }
            assert_eq!(
                out_base.execution.steps(),
                out_fast.execution.steps(),
                "seed {seed}: shape {shards}x{workers} history diverged from the certified run"
            );
            assert_eq!(
                out_base.metrics.aborts, out_fast.metrics.aborts,
                "seed {seed}: shape {shards}x{workers} verdicts diverged from the certified run"
            );
        }
        // 3. Random sound weakenings of the lattice change nothing.
        for _ in 0..2 {
            let sub = random_sub_lattice(&lattice, &mut rng);
            let mut weak =
                MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(sub);
            let out_weak = detect_run(&wl, &mut weak, seed);
            assert_eq!(
                out_weak.execution.steps(),
                out_fast.execution.steps(),
                "seed {seed}: a sub-lattice changed the history"
            );
            assert_eq!(out_weak.metrics.aborts, out_fast.metrics.aborts);
        }
    }
    // The sweep only means something if every verdict actually occurs.
    assert!(certified >= 5, "only {certified} of 60 workloads certified");
    assert!(denied >= 3, "only {denied} of 60 workloads denied");
    assert!(partial >= 1, "no workload exercised the partial lattice");
}

#[test]
fn certified_partitioned_history_is_identical_across_backends() {
    let p = generate(PartitionedConfig {
        partitions: 2,
        txns_per_partition: 8,
        scanner_len: 8,
        arrival_spacing: 2,
    });
    let wl = &p.workload;
    let cert = certify_workload(wl)
        .cert
        .expect("the partitioned workload must certify");
    let mut fast = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(cert);
    let out_fast = detect_run(wl, &mut fast, 7);
    assert_eq!(out_fast.metrics.committed as usize, wl.txn_count());
    assert_eq!(out_fast.metrics.certified_skips, fast.certified_skips());
    assert_eq!(
        out_fast.metrics.certified_skips_per_universe,
        fast.certified_skips_per_universe()
    );
    for (shards, workers) in SHAPES {
        let mut base = shaped(wl, shards, workers);
        let out_base = detect_run(wl, &mut base, 7);
        assert_eq!(
            out_base.execution.steps(),
            out_fast.execution.steps(),
            "shape {shards}x{workers}"
        );
    }
}

/// The mixed family is the lattice's reason to exist: its Free universe
/// certifies while Atomic and Classmates are condemned, so the old
/// all-or-nothing certificate was `None` and `certified_skips` was
/// pinned at zero. Per-universe certification must now skip for every
/// certifiable universe — under both schedulers — without moving a
/// single byte of history relative to the six uncertified backends, and
/// every admission stays inside Theorem 2.
#[test]
fn mixed_partial_certificate_skips_and_stays_sound() {
    let wl = mixed::generate(MixedConfig::default()).workload;
    let certification = certify_workload(&wl);
    let cert = certification
        .cert
        .expect("the mixed family must partially certify");
    assert!(cert.any_certified() && !cert.fully_certified());
    let certified = cert.certified_universes();
    assert!(!certified.is_empty());

    // MlaDetect: skips per certifiable universe, zero elsewhere.
    let mut fast =
        MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(cert.clone());
    let out_fast = detect_run(&wl, &mut fast, 11);
    let per = fast.certified_skips_per_universe();
    for &u in &certified {
        assert!(per[u as usize] > 0, "universe {u} earned no skips");
    }
    for u in 0..cert.universe_count() as u32 {
        if !cert.is_certified(u) {
            assert_eq!(per[u as usize], 0, "condemned universe {u} skipped");
        }
    }
    assert!(
        oracle::is_correctable_outcome(&out_fast, &wl.nest, &wl.spec()),
        "every certified admission must stay inside Theorem 2"
    );
    for (shards, workers) in SHAPES {
        let mut base = shaped(&wl, shards, workers);
        let out_base = detect_run(&wl, &mut base, 11);
        assert_eq!(
            out_base.execution.steps(),
            out_fast.execution.steps(),
            "shape {shards}x{workers} history diverged from the partially certified run"
        );
        assert_eq!(out_base.metrics.aborts, out_fast.metrics.aborts);
    }

    // MlaPrevent: same partial fast path, same history as its own
    // uncertified reference.
    let mut prev_fast = MlaPrevent::new(wl.txn_count(), wl.spec(), VictimPolicy::FewestSteps)
        .with_static_cert(cert);
    let out_prev_fast = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(11),
        &mut prev_fast,
    );
    assert!(
        prev_fast.certified_skips() > 0,
        "MlaPrevent earned no certified skips on mixed"
    );
    assert!(oracle::is_correctable_outcome(
        &out_prev_fast,
        &wl.nest,
        &wl.spec()
    ));
    let mut prev_base = MlaPrevent::new(wl.txn_count(), wl.spec(), VictimPolicy::FewestSteps);
    let out_prev_base = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(11),
        &mut prev_base,
    );
    assert_eq!(
        out_prev_base.execution.steps(),
        out_prev_fast.execution.steps(),
        "MlaPrevent history diverged under the partial certificate"
    );
}

/// Exhaustive check of the omission argument behind the fast path: over
/// *every* DPOR representative of the bounded mixed nest (the tier-1
/// 336-trace shape of the differential harness), an engine that never
/// sees the certified universe's steps reaches exactly the same
/// verdicts on everything else as the full engine. The certificate
/// claims certified steps are dead weight in closure maintenance; here
/// that claim is tested against all representative interleavings, not a
/// sampled few.
#[test]
fn dpor_sweep_certified_omission_engine_agrees_on_every_representative() {
    let cfg = MixedConfig {
        universes: 2,
        txns_per_universe: 2,
        arrival_spacing: 2,
    };
    let wl = mixed::generate(cfg).workload;
    let cert = certify_workload(&wl)
        .cert
        .expect("the bounded mixed nest must partially certify");
    assert!(
        cert.any_certified() && !cert.fully_certified(),
        "the sweep needs both a certified and a condemned universe"
    );
    let input = BoundedNest {
        nest: wl.nest.clone(),
        spec: wl.spec(),
        scripts: wl
            .programs
            .iter()
            .map(|p| p.step_entities().expect("mixed programs are scripted"))
            .collect(),
    };

    let mut reps = 0u64;
    let mut certified_offers = 0u64;
    let stats = explore(&input, |schedule| {
        reps += 1;
        let mut full = EngineBackend::unsharded(wl.nest.clone(), wl.spec());
        let mut partial = EngineBackend::unsharded(wl.nest.clone(), wl.spec());
        for (offer, &granted) in schedule.offers.iter().zip(&schedule.verdicts) {
            let certified_step = cert
                .universe_of(offer.txn)
                .is_some_and(|u| cert.is_certified(u));
            match full.apply_step(*offer) {
                Ok(()) => {
                    assert!(granted, "full engine granted a denied offer");
                    full.commit_step();
                }
                Err(witness) => {
                    assert!(!granted, "full engine denied a granted offer");
                    assert!(!witness.txns.is_empty());
                    full.remove_txn(offer.txn);
                }
            }
            if certified_step {
                // The certificate's first claim: certified offers are
                // never denied, in any representative.
                assert!(
                    granted,
                    "representative {reps}: certified txn {:?} was denied",
                    offer.txn
                );
                assert!(
                    cert.covers(offer.txn, offer.entity),
                    "certified step strayed off its recorded footprint"
                );
                certified_offers += 1;
                // The second claim: the step can be omitted entirely.
                continue;
            }
            match partial.apply_step(*offer) {
                Ok(()) => {
                    assert!(
                        granted,
                        "representative {reps}: the omission engine granted what the \
                         full engine denied at {:?}",
                        offer.txn
                    );
                    partial.commit_step();
                }
                Err(_) => {
                    assert!(
                        !granted,
                        "representative {reps}: the omission engine denied what the \
                         full engine granted at {:?}",
                        offer.txn
                    );
                    partial.remove_txn(offer.txn);
                }
            }
        }
        full.flush_rebuild();
        partial.flush_rebuild();
        assert_eq!(
            full.execution().steps(),
            schedule.exec.steps(),
            "representative {reps}: full engine history diverged"
        );
        let condemned_only: Vec<_> = schedule
            .exec
            .steps()
            .iter()
            .filter(|s| {
                !cert
                    .universe_of(s.txn)
                    .is_some_and(|u| cert.is_certified(u))
            })
            .copied()
            .collect();
        assert_eq!(
            partial.execution().steps(),
            condemned_only.as_slice(),
            "representative {reps}: the omission engine's history is not the \
             condemned projection of the explored one"
        );
    });
    assert_eq!(reps, stats.explored);
    assert_eq!(reps, 336, "the tier-1 mixed shape changed size: {stats:?}");
    assert!(
        certified_offers > 0,
        "the sweep never exercised a certified offer"
    );
}
