//! Soundness of `mla-lint`'s §5 static safety certificates.
//!
//! A [`StaticCert`](multilevel_atomicity::core::StaticCert) claims that
//! *no* interleaving of the certified workload can fail Theorem 2. Two
//! consequences are tested here, over a sweep of randomly generated
//! partitioned-ish workloads (universe-local scripts touching a shared
//! entity at most once, random level-2 breakpoints — some certify, some
//! are denied; the sweep asserts both outcomes occur):
//!
//! 1. **Theorem oracle.** For every workload that certifies, random
//!    genuine executions (uniformly random live-transaction schedules,
//!    the same construction the experiment harness uses) must all be
//!    judged correctable by the offline Theorem 2 decision procedure.
//!    One counterexample falsifies the certificate.
//! 2. **Byte-identical histories.** The certified `MlaDetect` fast path
//!    must be observationally invisible: its simulated history equals
//!    the uncertified control's, and the uncertified control itself is
//!    run across the six backend shapes of the differential harness —
//!    serial unsharded, sharded ×1, sharded ×4, and thread-parallel
//!    4×2, 4×4, 8×3 — all of which must agree. (On a certified workload
//!    no decision is ever denied, so no victim policy fires and every
//!    shape walks the same grant sequence.)
//!
//! Denied workloads are exercised too: denial must come with a concrete
//! mixed-cycle witness diagnostic, never silently.

use std::sync::Arc;

use multilevel_atomicity::cc::{oracle, MlaDetect, VictimPolicy};
use multilevel_atomicity::core::theorem::is_correctable;
use multilevel_atomicity::lint::{certify_workload, Code};
use multilevel_atomicity::model::program::{ScriptOp, ScriptProgram};
use multilevel_atomicity::model::{EntityId, Execution, TxnId};
use multilevel_atomicity::sim::{run, SimConfig, SimOutcome};
use multilevel_atomicity::txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints};
use multilevel_atomicity::workload::partitioned::{generate, PartitionedConfig};
use multilevel_atomicity::workload::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random workload in the partitioned family: each transaction lives
/// in one universe, touches its shared entity at most once, and may
/// carry level-2 breakpoints. Enough structure that many instances
/// certify; enough freedom (repeated shared access, breakpoint-free
/// multi-access transactions) that many are denied.
fn random_workload(rng: &mut SmallRng) -> Workload {
    let k = 3;
    let universes = rng.gen_range(1..=3usize);
    let n = rng.gen_range(2..=6usize);
    let mut programs: Vec<Arc<dyn multilevel_atomicity::model::Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut arrivals: Vec<u64> = Vec::new();
    let mut entities: Vec<EntityId> = (0..universes as u32).map(EntityId).collect();
    for t in 0..n {
        let u = rng.gen_range(0..universes);
        let len = rng.gen_range(1..=4usize);
        // Usually at most one shared access; sometimes more, which can
        // open a mixed cycle and deny certification.
        let shared_budget = if rng.gen_bool(0.8) { 1 } else { 2 };
        let mut shared_used = 0;
        let mut ops = Vec::with_capacity(len);
        for i in 0..len {
            let ent = if shared_used < shared_budget && rng.gen_bool(0.5) {
                shared_used += 1;
                EntityId(u as u32)
            } else {
                EntityId(((1 + t * 4 + i) * universes + u) as u32)
            };
            entities.push(ent);
            ops.push(ScriptOp::Add(ent, 1));
        }
        let bp: Arc<dyn RuntimeBreakpoints> = if len > 1 && rng.gen_bool(0.6) {
            let marks: Vec<(usize, usize)> = (1..len)
                .filter(|_| rng.gen_bool(0.5))
                .map(|p| (p, 2))
                .collect();
            Arc::new(PhaseTable::new(k, marks))
        } else {
            Arc::new(NoBreakpoints { k })
        };
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(bp);
        paths.push(vec![u as u32]);
        arrivals.push(rng.gen_range(0..8u64) * 2);
    }
    entities.sort_unstable();
    entities.dedup();
    Workload {
        name: "random-partitioned-ish".to_string(),
        nest: multilevel_atomicity::core::nest::Nest::new(k, paths)
            .expect("one universe path per transaction"),
        programs,
        breakpoints,
        initial: entities.into_iter().map(|e| (e, 0)).collect(),
        arrivals,
    }
}

/// A genuine, value-correct execution under a uniformly random
/// interleaving (the experiment harness's construction).
fn random_execution(wl: &Workload, rng: &mut SmallRng) -> Execution {
    let sys = wl.system();
    let mut schedule: Vec<TxnId> = Vec::new();
    let mut finished = vec![false; wl.txn_count()];
    let mut exec = Execution::empty();
    while schedule.len() < 256 {
        let live: Vec<u32> = (0..wl.txn_count() as u32)
            .filter(|&t| !finished[t as usize])
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[rng.gen_range(0..live.len())];
        schedule.push(TxnId(t));
        match sys.run_schedule(&schedule) {
            Ok(e) => exec = e,
            Err(_) => {
                schedule.pop();
                finished[t as usize] = true;
            }
        }
    }
    exec
}

fn detect_run(wl: &Workload, control: &mut MlaDetect, seed: u64) -> SimOutcome {
    run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(seed),
        control,
    )
}

/// The six backend shapes of the differential harness, as `MlaDetect`
/// configurations: (shards, workers), with (0, 0) the unsharded engine.
const SHAPES: [(usize, usize); 6] = [(0, 0), (1, 0), (4, 0), (4, 2), (4, 4), (8, 3)];

fn shaped(wl: &Workload, shards: usize, workers: usize) -> MlaDetect {
    let mut c = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
    if shards > 0 {
        c = c.with_shards(shards);
    }
    if workers > 0 {
        c = c.with_parallelism(workers);
    }
    c
}

#[test]
fn certificates_are_sound_on_random_workloads() {
    let mut certified = 0usize;
    let mut denied = 0usize;
    for seed in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(0xCE27_0000 + seed);
        let wl = random_workload(&mut rng);
        let certification = certify_workload(&wl);
        let Some(cert) = certification.cert else {
            // Denial must carry the witness diagnostic, never be silent.
            assert!(
                certification
                    .diagnostics
                    .iter()
                    .any(|d| d.code == Code::CertDenied),
                "seed {seed}: denial without an MLA021 witness"
            );
            denied += 1;
            continue;
        };
        certified += 1;
        // 1. The theorem oracle agrees with the certificate on random
        //    genuine executions.
        for _ in 0..3 {
            let exec = random_execution(&wl, &mut rng);
            if exec.steps().is_empty() {
                continue;
            }
            assert!(
                is_correctable(&exec, &wl.nest, &wl.spec())
                    .expect("random execution matches nest and spec"),
                "seed {seed}: certified workload produced an uncorrectable execution"
            );
        }
        // 2. Certified fast path is history-invisible, across all six
        //    uncertified backend shapes.
        let mut fast = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(cert);
        let out_fast = detect_run(&wl, &mut fast, seed);
        assert!(
            fast.certified_skips > 0 && fast.certified_skips == fast.checks,
            "seed {seed}: certified run fell off the fast path"
        );
        assert!(oracle::is_correctable_outcome(
            &out_fast,
            &wl.nest,
            &wl.spec()
        ));
        for (shards, workers) in SHAPES {
            let mut base = shaped(&wl, shards, workers);
            let out_base = detect_run(&wl, &mut base, seed);
            assert_eq!(
                out_base.metrics.aborts, 0,
                "seed {seed}: certified workload aborted on shape {shards}x{workers}"
            );
            assert_eq!(
                out_base.execution.steps(),
                out_fast.execution.steps(),
                "seed {seed}: shape {shards}x{workers} history diverged from the certified run"
            );
        }
    }
    // The sweep only means something if both verdicts actually occur.
    assert!(certified >= 5, "only {certified} of 60 workloads certified");
    assert!(denied >= 5, "only {denied} of 60 workloads denied");
}

#[test]
fn certified_partitioned_history_is_identical_across_backends() {
    let p = generate(PartitionedConfig {
        partitions: 2,
        txns_per_partition: 8,
        scanner_len: 8,
        arrival_spacing: 2,
    });
    let wl = &p.workload;
    let cert = certify_workload(wl)
        .cert
        .expect("the partitioned workload must certify");
    let mut fast = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(cert);
    let out_fast = detect_run(wl, &mut fast, 7);
    assert_eq!(out_fast.metrics.committed as usize, wl.txn_count());
    assert_eq!(out_fast.metrics.certified_skips, fast.certified_skips);
    for (shards, workers) in SHAPES {
        let mut base = shaped(wl, shards, workers);
        let out_base = detect_run(wl, &mut base, 7);
        assert_eq!(
            out_base.execution.steps(),
            out_fast.execution.steps(),
            "shape {shards}x{workers}"
        );
    }
}
