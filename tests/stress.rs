//! Stress tests through the MLA controls with full oracle checking.
//!
//! The `bounded_*` tests are tier-1: shrunken versions of the opt-in
//! runs, sized to a couple of seconds in debug, so every `cargo test`
//! exercises the contended paths (aborts, cascades, window churn, the
//! sharded engine). The `stress_*` tests keep the original sizes and
//! stay opt-in (`cargo test --release -- --ignored`); the nightly CI
//! job runs them.

use multilevel_atomicity::cc::{oracle, MlaDetect, MlaPrevent, VictimPolicy};
use multilevel_atomicity::model::Value;
use multilevel_atomicity::sim::{run, SimConfig};
use multilevel_atomicity::workload::banking::{generate, BankingConfig};
use multilevel_atomicity::workload::cad::{generate as cad, CadConfig};

#[test]
fn bounded_stress_banking_all_mla_controls() {
    let b = generate(BankingConfig {
        families: 6,
        accounts_per_family: 5,
        transfers: 130,
        bank_audits: 2,
        credit_audits: 4,
        arrival_spacing: 6,
        ..BankingConfig::default()
    });
    let wl = &b.workload;
    let spec = wl.spec();

    // The Requester victim policy is witness-independent, so the
    // unsharded and sharded engines must produce the *same history*
    // even through aborts — the in-simulator face of the differential
    // harness's requester-abort rule.
    let mut detect = MlaDetect::new(spec.clone(), VictimPolicy::Requester);
    let flat = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(0x57),
        &mut detect,
    );
    assert!(!flat.metrics.timed_out);
    assert_eq!(flat.metrics.committed as usize, wl.txn_count());
    assert!(oracle::is_correctable_outcome(&flat, &wl.nest, &spec));
    let total: Value = b.accounts.iter().map(|&a| flat.store.value(a)).sum();
    assert_eq!(total, b.total_money());

    let mut sharded = MlaDetect::new(spec.clone(), VictimPolicy::Requester).with_shards(4);
    let out = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(0x57),
        &mut sharded,
    );
    assert!(!out.metrics.timed_out);
    assert_eq!(out.execution, flat.execution, "sharded history diverged");
    assert_eq!(out.metrics.committed, flat.metrics.committed);
    assert_eq!(out.metrics.aborts, flat.metrics.aborts);
    assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));

    let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
    let out = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(0x58),
        &mut prevent,
    );
    assert!(!out.metrics.timed_out);
    assert_eq!(out.metrics.committed as usize, wl.txn_count());
    assert_eq!(prevent.prevention_misses, 0);
    assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
}

#[test]
fn bounded_stress_cad_prevent() {
    for seed in 0..3u64 {
        let c = cad(CadConfig {
            specialties: 3,
            teams_per_specialty: 2,
            modifications: 40,
            snapshots: 3,
            elements_per_specialty: 8,
            shared_elements: 5,
            steps_per_mod: 6,
            arrival_spacing: 4,
            seed,
            ..CadConfig::default()
        });
        let wl = &c.workload;
        let spec = wl.spec();
        let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &SimConfig::seeded(seed),
            &mut prevent,
        );
        assert!(!out.metrics.timed_out, "seed {seed}");
        assert_eq!(
            out.metrics.committed as usize,
            wl.txn_count(),
            "seed {seed}"
        );
        assert_eq!(prevent.prevention_misses, 0, "seed {seed}");
        assert!(
            oracle::is_correctable_outcome(&out, &wl.nest, &spec),
            "seed {seed}"
        );
    }
}

#[test]
#[ignore = "stress: ~100+ transactions per control, run explicitly"]
fn stress_banking_detect_and_prevent() {
    let b = generate(BankingConfig {
        families: 8,
        accounts_per_family: 6,
        transfers: 150,
        bank_audits: 3,
        credit_audits: 6,
        arrival_spacing: 6,
        ..BankingConfig::default()
    });
    let wl = &b.workload;
    let spec = wl.spec();

    let mut detect = MlaDetect::new(spec.clone(), VictimPolicy::Requester);
    let out = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(0x57),
        &mut detect,
    );
    assert!(!out.metrics.timed_out);
    assert_eq!(out.metrics.committed as usize, wl.txn_count());
    assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
    let total: Value = b.accounts.iter().map(|&a| out.store.value(a)).sum();
    assert_eq!(total, b.total_money());

    let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
    let out = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(0x58),
        &mut prevent,
    );
    assert!(!out.metrics.timed_out);
    assert_eq!(out.metrics.committed as usize, wl.txn_count());
    assert_eq!(prevent.prevention_misses, 0);
    assert!(oracle::is_correctable_outcome(&out, &wl.nest, &spec));
}

#[test]
#[ignore = "stress: large CAD plan under heavy modification churn"]
fn stress_cad_prevent_many_seeds() {
    for seed in 0..6u64 {
        let c = cad(CadConfig {
            specialties: 4,
            teams_per_specialty: 3,
            modifications: 60,
            snapshots: 4,
            elements_per_specialty: 10,
            shared_elements: 6,
            steps_per_mod: 8,
            arrival_spacing: 4,
            seed,
            ..CadConfig::default()
        });
        let wl = &c.workload;
        let spec = wl.spec();
        let mut prevent = MlaPrevent::new(wl.txn_count(), spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &SimConfig::seeded(seed),
            &mut prevent,
        );
        assert!(!out.metrics.timed_out, "seed {seed}");
        assert_eq!(
            out.metrics.committed as usize,
            wl.txn_count(),
            "seed {seed}"
        );
        assert_eq!(prevent.prevention_misses, 0, "seed {seed}");
        assert!(
            oracle::is_correctable_outcome(&out, &wl.nest, &spec),
            "seed {seed}"
        );
    }
}
