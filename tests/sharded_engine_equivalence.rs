//! The differential harness for the sharded closure engine: six
//! backends — the unsharded [`ClosureEngine`], serial
//! [`ShardedClosureEngine`]s at 1 and 4 shards, and thread-parallel
//! engines at 4 shards × 2 workers, 4 × 4, and 8 × 3 (more shards than
//! workers, so workers multiplex shard groups) — are driven in lockstep
//! through random schedules and must be observationally
//! indistinguishable.
//!
//! Each case builds a random k-nest, breakpoint specification, and
//! entity scripts (entities span several shard residues, so every shard
//! count sees genuine splits *and* cross-shard transactions that force
//! group coalescing), then offers steps in a random interleaving. On
//! every offer the batch [`CoherentClosure`] of the current window plus
//! the candidate is the ground truth; all six backends must return the
//! same grant/deny verdict. Denials abort the *requester* on every
//! backend — a deterministic victim rule, because cycle-witness paths
//! (and hence witness-derived victim choices) are only guaranteed
//! identical up to compaction-rebuild timing, which legitimately differs
//! between a global engine and its shard groups.
//!
//! Between offers the harness randomly fires the two maintenance paths
//! the schedulers use: window eviction (all backends must evict the
//! same transactions — the sharded engine's touched-group projection
//! must match the global scan no matter how rarely it runs) and
//! `flush_rebuild` (rebuilds must be semantically invisible). At the
//! end, every backend's surviving execution must equal the accepted
//! window byte for byte, and the maintained relation is compared
//! pairwise across all backends and against the batch closure of that
//! window.

use std::sync::Arc;

use multilevel_atomicity::core::closure::CoherentClosure;
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::core::spec::ExecContext;
use multilevel_atomicity::core::EngineBackend;
use multilevel_atomicity::explore::{explore, BoundedNest, Schedule};
use multilevel_atomicity::model::{EntityId, Execution, Step, TxnId};
use multilevel_atomicity::txn::{PhaseTable, RuntimeBreakpoints, RuntimeSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One lockstep participant: how to build it, and its failure label.
#[derive(Clone, Copy, Debug)]
enum BackendSpec {
    /// The unsharded reference engine.
    Serial,
    /// The serial sharded engine at the given shard count.
    Sharded(usize),
    /// The thread-parallel engine: (shards, workers).
    Parallel(usize, usize),
}

impl BackendSpec {
    fn build(self, nest: Nest, spec: RuntimeSpec) -> EngineBackend<RuntimeSpec> {
        match self {
            BackendSpec::Serial => EngineBackend::unsharded(nest, spec),
            BackendSpec::Sharded(s) => EngineBackend::sharded(nest, spec, s),
            BackendSpec::Parallel(s, w) => EngineBackend::parallel(nest, spec, s, w),
        }
    }

    fn label(self) -> String {
        match self {
            BackendSpec::Serial => "serial".to_string(),
            BackendSpec::Sharded(s) => format!("sharded({s})"),
            BackendSpec::Parallel(s, w) => format!("parallel({s}x{w})"),
        }
    }
}

const BACKENDS: [BackendSpec; 6] = [
    BackendSpec::Serial,
    BackendSpec::Sharded(1),
    BackendSpec::Sharded(4),
    BackendSpec::Parallel(4, 2),
    BackendSpec::Parallel(4, 4),
    BackendSpec::Parallel(8, 3),
];

struct Setup {
    nest: Nest,
    spec: RuntimeSpec,
    scripts: Vec<Vec<EntityId>>,
}

/// A random nest shape, breakpoint specification, and script set. The
/// entity range (0..8) covers every residue class of the largest shard
/// count, and scripts hop residues freely, so coalescing is common.
fn random_setup(rng: &mut SmallRng) -> Setup {
    let k = rng.gen_range(2..=4usize);
    let n = rng.gen_range(2..=6usize);
    let paths: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            (0..k.saturating_sub(2))
                .map(|_| rng.gen_range(0..3u32))
                .collect()
        })
        .collect();
    let nest = Nest::new(k, paths).expect("generated paths have depth k-2");
    let mut spec = RuntimeSpec::new(k);
    let mut scripts = Vec::new();
    for t in 0..n {
        let len = rng.gen_range(1..=5usize);
        let script: Vec<EntityId> = (0..len).map(|_| EntityId(rng.gen_range(0..8u32))).collect();
        let mut marks: Vec<(usize, usize)> = Vec::new();
        for pos in 1..len {
            if k > 2 && rng.gen_bool(0.4) {
                marks.push((pos, rng.gen_range(2..k)));
            }
        }
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, marks));
        spec.insert(TxnId(t as u32), bp);
        scripts.push(script);
    }
    Setup {
        nest,
        spec,
        scripts,
    }
}

/// A [`RuntimeSpec`] assigning each transaction a [`PhaseTable`] with
/// the given `(position, level)` marks.
fn phase_spec(k: usize, marks: &[&[(usize, usize)]]) -> RuntimeSpec {
    let mut spec = RuntimeSpec::new(k);
    for (t, m) in marks.iter().enumerate() {
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, m.to_vec()));
        spec.insert(TxnId(t as u32), bp);
    }
    spec
}

/// Replays one explored trace representative through all six backends
/// in lockstep: every backend must reproduce the recorded verdict for
/// every offer (denials abort the requester, as during exploration),
/// and every surviving execution must equal the representative's byte
/// for byte.
fn lockstep_replay(nest: &Nest, spec: &RuntimeSpec, schedule: &Schedule) {
    let mut backends: Vec<EngineBackend<RuntimeSpec>> = BACKENDS
        .iter()
        .map(|&b| b.build(nest.clone(), spec.clone()))
        .collect();
    for (offer, &granted) in schedule.offers.iter().zip(&schedule.verdicts) {
        for (i, b) in backends.iter_mut().enumerate() {
            match b.apply_step(*offer) {
                Ok(()) => {
                    assert!(
                        granted,
                        "backend {} granted what exploration denied at {:?}",
                        BACKENDS[i].label(),
                        offer.key()
                    );
                    b.commit_step();
                }
                Err(witness) => {
                    assert!(
                        !granted,
                        "backend {} denied what exploration granted at {:?}",
                        BACKENDS[i].label(),
                        offer.key()
                    );
                    assert!(!witness.txns.is_empty());
                    b.remove_txn(offer.txn);
                }
            }
        }
    }
    for (i, b) in backends.iter_mut().enumerate() {
        b.flush_rebuild();
        assert_eq!(
            b.execution().steps(),
            schedule.exec.steps(),
            "backend {} history diverged from the explored representative",
            BACKENDS[i].label()
        );
    }
}

/// Exhaustive six-backend lockstep: every Mazurkiewicz-trace
/// representative of four fixed nests is replayed through all six
/// backends. The first three nests are the hand-counted fixtures from
/// `mla-explore` (their explored counts are re-pinned here); the fourth
/// spreads entities over several shard residues with mid-level
/// breakpoints so shard splits, group coalescing, and denials all occur
/// under exhaustive — not sampled — scheduling.
#[test]
fn exhaustive_lockstep_covers_every_trace_representative() {
    // Nest 1: disjoint pair under flat serializability — one trace.
    let input = BoundedNest {
        nest: Nest::flat(2),
        spec: phase_spec(2, &[&[], &[]]),
        scripts: vec![vec![EntityId(0); 2], vec![EntityId(1); 2]],
    };
    let stats = explore(&input, |s| lockstep_replay(&input.nest, &input.spec, s));
    assert_eq!(stats.explored, 1);

    // Nest 2: the same shape contending on one entity — six schedules,
    // four of them carrying a denial.
    let input = BoundedNest {
        nest: Nest::flat(2),
        spec: phase_spec(2, &[&[], &[]]),
        scripts: vec![vec![EntityId(5); 2], vec![EntityId(5); 2]],
    };
    let mut denials = 0usize;
    let stats = explore(&input, |s| {
        denials += usize::from(!s.all_granted());
        lockstep_replay(&input.nest, &input.spec, s);
    });
    assert_eq!(stats.explored, 6);
    assert_eq!(denials, 4);

    // Nest 3: free weaving at k = 3 (a level-2 breakpoint between the
    // two steps of every transaction), t0/t1 contended, t2 independent.
    let nest = Nest::new(3, vec![vec![0], vec![0], vec![0]]).unwrap();
    let input = BoundedNest {
        nest,
        spec: phase_spec(3, &[&[(1, 2)], &[(1, 2)], &[(1, 2)]]),
        scripts: vec![
            vec![EntityId(0); 2],
            vec![EntityId(0); 2],
            vec![EntityId(1); 2],
        ],
    };
    let stats = explore(&input, |s| lockstep_replay(&input.nest, &input.spec, s));
    assert_eq!(stats.explored, 6);

    // Nest 4: four transactions in two k=3 classes, entities spanning
    // residues of both shard counts (0, 1, 4, 5), breakpoints mixed per
    // transaction. In each class a breakpointed transaction conflicts
    // with an atomic one that revisits its entity, so some weaves close
    // a coherence cycle and are denied. The count is pinned from the
    // deterministic exploration rather than hand-computed.
    let nest = Nest::new(3, vec![vec![0], vec![0], vec![1], vec![1]]).unwrap();
    let input = BoundedNest {
        nest,
        spec: phase_spec(3, &[&[(1, 2)], &[], &[(1, 2)], &[]]),
        scripts: vec![
            vec![EntityId(0), EntityId(4)],
            vec![EntityId(4), EntityId(4)],
            vec![EntityId(1), EntityId(5)],
            vec![EntityId(5), EntityId(5)],
        ],
    };
    let mut verdict_mix = (0usize, 0usize);
    let stats = explore(&input, |s| {
        if s.all_granted() {
            verdict_mix.0 += 1;
        } else {
            verdict_mix.1 += 1;
        }
        lockstep_replay(&input.nest, &input.spec, s);
    });
    assert_eq!(stats.explored, 38);
    assert_eq!(verdict_mix, (4, 34), "(all-grant, with-denial) split");
    assert!(stats.sleep_skips > 0, "cross-class independence pruned");
    assert!(stats.cache_hits > 0, "memoized probe answers were reused");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_backends_are_indistinguishable(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let setup = random_setup(&mut rng);
        let n = setup.scripts.len();
        let mut backends: Vec<EngineBackend<RuntimeSpec>> = BACKENDS
            .iter()
            .map(|&b| b.build(setup.nest.clone(), setup.spec.clone()))
            .collect();
        let mut accepted: Vec<Step> = Vec::new();
        let mut next_seq = vec![0u32; n];
        let mut alive = vec![true; n];

        let finished = |next_seq: &[u32], t: usize| next_seq[t] as usize >= setup.scripts[t].len();

        loop {
            let runnable: Vec<usize> = (0..n)
                .filter(|&t| alive[t] && !finished(&next_seq, t))
                .collect();
            if runnable.is_empty() {
                break;
            }

            // Maintenance probes, at random frequency. Eviction treats
            // finished-and-alive transactions as committed (the
            // scheduler's rule): sources are the still-running ones.
            if rng.gen_bool(0.10) {
                let mut evictions: Vec<Vec<TxnId>> = Vec::new();
                for b in backends.iter_mut() {
                    let is_source =
                        |t: TxnId| alive[t.index()] && !finished(&next_seq, t.index());
                    evictions.push(b.evict_unreachable(is_source));
                }
                for e in &evictions[1..] {
                    prop_assert_eq!(
                        e, &evictions[0],
                        "eviction sets diverged across backends (seed {})", seed
                    );
                }
                accepted.retain(|s| !evictions[0].contains(&s.txn));
            }
            if rng.gen_bool(0.08) {
                for b in backends.iter_mut() {
                    b.flush_rebuild();
                }
            }

            let t = runnable[rng.gen_range(0..runnable.len())];
            // Spontaneous aborts exercise rebuild-on-shrink mid-run.
            if accepted.iter().any(|s| s.txn.0 == t as u32) && rng.gen_bool(0.06) {
                alive[t] = false;
                for b in backends.iter_mut() {
                    b.remove_txn(TxnId(t as u32));
                }
                accepted.retain(|s| s.txn.0 != t as u32);
                continue;
            }
            let candidate = Step {
                txn: TxnId(t as u32),
                seq: next_seq[t],
                entity: setup.scripts[t][next_seq[t] as usize],
                observed: 0,
                wrote: 0,
            };
            // Batch ground truth: closure of the current window + candidate.
            let mut steps = accepted.clone();
            steps.push(candidate);
            let exec = Execution::new(steps).expect("per-txn seqs stay contiguous");
            let ctx = ExecContext::new(&exec, &setup.nest, &setup.spec)
                .expect("execution matches nest and spec");
            let batch_ok = CoherentClosure::compute(&ctx).is_partial_order();

            let mut granted = 0usize;
            for (i, b) in backends.iter_mut().enumerate() {
                match b.apply_step(candidate) {
                    Ok(()) => {
                        prop_assert!(
                            batch_ok,
                            "backend {} granted what batch denies (seed {})",
                            BACKENDS[i].label(), seed
                        );
                        b.commit_step();
                        granted += 1;
                    }
                    Err(witness) => {
                        prop_assert!(
                            !batch_ok,
                            "backend {} denied what batch grants (seed {})",
                            BACKENDS[i].label(), seed
                        );
                        // Witness *paths* are only identical up to
                        // compaction timing, so assert presence, not
                        // content, and abort the requester deterministically.
                        prop_assert!(!witness.txns.is_empty());
                    }
                }
            }
            if granted > 0 {
                prop_assert_eq!(granted, backends.len());
                accepted.push(candidate);
                next_seq[t] += 1;
            } else {
                // Deterministic victim: abort the requester everywhere.
                alive[t] = false;
                for b in backends.iter_mut() {
                    b.remove_txn(TxnId(t as u32));
                }
                accepted.retain(|s| s.txn.0 != t as u32);
            }
        }

        // Final state: every backend holds exactly the accepted window,
        // and the maintained relations agree pairwise — with each other
        // and with the batch closure of that window.
        for b in backends.iter_mut() {
            b.flush_rebuild();
        }
        for (i, b) in backends.iter().enumerate() {
            let survived = b.execution();
            prop_assert_eq!(
                survived.steps(),
                accepted.as_slice(),
                "backend {} window diverged (seed {})",
                BACKENDS[i].label(),
                seed
            );
        }
        if !accepted.is_empty() {
            let survived = backends[0].execution();
            let ctx = ExecContext::new(&survived, &setup.nest, &setup.spec)
                .expect("surviving execution matches nest and spec");
            let closure = CoherentClosure::compute(&ctx);
            prop_assert!(closure.is_partial_order(), "granted history stayed acyclic");
            let key = |i: usize| -> (TxnId, u32) {
                (ctx.txn_id(ctx.txn_of(i)), ctx.seq_of(i) as u32)
            };
            for u in 0..ctx.n() {
                for v in 0..ctx.n() {
                    if u == v {
                        continue;
                    }
                    let want = closure.related(&ctx, u, v);
                    for (i, b) in backends.iter().enumerate() {
                        prop_assert_eq!(
                            want,
                            b.related_steps(key(u), key(v)),
                            "pair ({}, {}) disagrees on backend {} (seed {})",
                            u, v, BACKENDS[i].label(), seed
                        );
                    }
                }
            }
        }
    }
}
