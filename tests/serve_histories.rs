//! Differential audit of the live service: every history `mla-serve`
//! records — real threads, MVCC storage, admission gated by MlaDetect or
//! MlaPrevent — must pass the Theorem 2 oracle, exactly like the
//! simulator's histories do.
//!
//! The service runs are nondeterministic (OS scheduling), so these tests
//! assert *universally quantified* properties: correctability of the
//! recorded history, per-entity ticket monotonicity, conservation of the
//! transferred totals, and full-commit drains.

use std::collections::HashMap;
use std::time::Duration;

use multilevel_atomicity::serve::{
    audit_full, audit_windowed, contended_load, partitioned_load, run, SchedKind, ServeConfig,
    ServeLoad,
};

fn config(sched: SchedKind) -> ServeConfig {
    ServeConfig {
        sched,
        workers: 3,
        deadline: Duration::from_secs(120),
        ..Default::default()
    }
}

/// Drains `load` under `config` and runs the full battery of
/// history-level checks. Returns the committed count.
fn drain_and_audit(load: &ServeLoad, config: &ServeConfig) -> u64 {
    let report = run(load, config);
    assert!(report.clean, "drain must complete before the deadline");
    assert_eq!(report.snapshot_violations, 0, "snapshot probes must hold");
    assert_eq!(
        report.committed,
        load.txn_count() as u64,
        "every submitted transaction must commit"
    );

    // The theorem oracle: the recorded history is correctable.
    let audit = audit_full(&report.history, &load.workload.nest, &load.workload.spec());
    assert!(audit.passed(), "recorded history must be correctable");
    // The windowed variant agrees on a projection of the same history.
    let windowed = audit_windowed(
        &report.history,
        &load.workload.nest,
        &load.workload.spec(),
        64,
    );
    assert!(windowed.passed(), "windowed audit must concur");

    // Histories come out in global admission-ticket order, which must be
    // per-session (= per-transaction) program order: seq values of each
    // transaction appear contiguous ascending.
    let mut seqs: HashMap<u32, u32> = HashMap::new();
    for step in &report.history {
        let next = seqs.entry(step.txn.0).or_insert(0);
        assert_eq!(
            step.seq, *next,
            "txn {} steps out of program order",
            step.txn.0
        );
        *next += 1;
    }
    report.committed
}

#[test]
fn partitioned_histories_pass_the_oracle_under_both_schedulers() {
    let load = partitioned_load(8, 4);
    for sched in [SchedKind::Detect, SchedKind::Prevent] {
        assert_eq!(drain_and_audit(&load, &config(sched)), 32);
    }
}

#[test]
fn certified_partitioned_history_passes_the_oracle() {
    let load = partitioned_load(6, 8);
    let mut cfg = config(SchedKind::Prevent);
    cfg.certified = true;
    assert_eq!(drain_and_audit(&load, &cfg), 48);
}

#[test]
fn contended_histories_pass_the_oracle_and_conserve_money() {
    // Transfers race atomic audits over one shared account ring: the
    // shape that actually defers, waits, and cascades.
    let load = contended_load(6, 6, 4, 3);
    for sched in [SchedKind::Detect, SchedKind::Prevent] {
        let report = run(&load, &config(sched));
        assert!(report.clean);
        assert_eq!(report.committed, 36);
        let audit = audit_full(&report.history, &load.workload.nest, &load.workload.spec());
        assert!(audit.passed(), "contended history must be correctable");

        // Conservation: replaying the last write per entity sums to the
        // initial ring total.
        let mut last: HashMap<u32, i64> = HashMap::new();
        for step in &report.history {
            last.insert(step.entity.0, step.wrote);
        }
        let total: i64 = (0..4u32)
            .map(|a| last.get(&a).copied().unwrap_or(100))
            .sum();
        assert_eq!(total, load.initial_total, "ring total must be conserved");
    }
}

#[test]
fn sharded_admission_histories_still_pass_the_oracle() {
    // The sharded closure engine and partitioned wait queues behind the
    // same gate: history-level guarantees must be layout-independent.
    let load = contended_load(4, 6, 4, 0);
    let mut cfg = config(SchedKind::Prevent);
    cfg.shards = 4;
    cfg.wait_shards = 4;
    let report = run(&load, &cfg);
    assert!(report.clean);
    assert_eq!(report.committed, 24);
    let audit = audit_full(&report.history, &load.workload.nest, &load.workload.spec());
    assert!(audit.passed());
}
