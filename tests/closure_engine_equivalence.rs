//! Cross-layer equivalence: the incremental [`ClosureEngine`] must make
//! exactly the decisions the batch [`CoherentClosure`] makes, on
//! arbitrary executions.
//!
//! Each case builds a random k-nest (k in 2..=4, random pi-paths), a
//! random phase-breakpoint specification, and random entity scripts,
//! then drives a scheduler-shaped loop: offer steps in random
//! interleavings, grant what the engine grants, and on every offer
//! recompute the coherent closure of the same prefix-plus-candidate from
//! scratch. The grant/deny verdicts must agree step by step — that is
//! the closure's partial-order check in both forms. Random aborts
//! (cycle victims and spontaneous ones) exercise the engine's
//! rebuild-on-shrink path mid-run, and random in-schedule window
//! evictions and `flush_rebuild` calls exercise the scheduler's
//! maintenance paths between decisions; after each run the engine's
//! maintained relation is compared pairwise against the batch closure
//! of the surviving execution.

use std::sync::Arc;

use multilevel_atomicity::core::closure::CoherentClosure;
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::core::spec::ExecContext;
use multilevel_atomicity::core::ClosureEngine;
use multilevel_atomicity::model::{EntityId, Execution, Step, TxnId};
use multilevel_atomicity::txn::{PhaseTable, RuntimeBreakpoints, RuntimeSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Setup {
    nest: Nest,
    spec: RuntimeSpec,
    /// Entity script per transaction.
    scripts: Vec<Vec<EntityId>>,
}

/// A random nest shape, breakpoint specification, and script set.
fn random_setup(rng: &mut SmallRng) -> Setup {
    let k = rng.gen_range(2..=4usize);
    let n = rng.gen_range(2..=6usize);
    let paths: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            (0..k.saturating_sub(2))
                .map(|_| rng.gen_range(0..3u32))
                .collect()
        })
        .collect();
    let nest = Nest::new(k, paths).expect("generated paths have depth k-2");
    let mut spec = RuntimeSpec::new(k);
    let mut scripts = Vec::new();
    for t in 0..n {
        let len = rng.gen_range(1..=5usize);
        let script: Vec<EntityId> = (0..len).map(|_| EntityId(rng.gen_range(0..4u32))).collect();
        // Random phase boundaries at interior positions (levels 2..k are
        // the legal phase levels; k = 2 admits none).
        let mut marks: Vec<(usize, usize)> = Vec::new();
        for pos in 1..len {
            if k > 2 && rng.gen_bool(0.4) {
                marks.push((pos, rng.gen_range(2..k)));
            }
        }
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, marks));
        spec.insert(TxnId(t as u32), bp);
        scripts.push(script);
    }
    Setup {
        nest,
        spec,
        scripts,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_agrees_with_batch_closure(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let setup = random_setup(&mut rng);
        let n = setup.scripts.len();
        let mut engine = ClosureEngine::new(setup.nest.clone(), setup.spec.clone());
        let mut accepted: Vec<Step> = Vec::new();
        let mut next_seq = vec![0u32; n];
        let mut alive = vec![true; n];

        let finished = |next_seq: &[u32], t: usize| next_seq[t] as usize >= setup.scripts[t].len();

        loop {
            let runnable: Vec<usize> = (0..n)
                .filter(|&t| alive[t] && !finished(&next_seq, t))
                .collect();
            if runnable.is_empty() {
                break;
            }
            // In-schedule maintenance probes, at random frequency.
            // Eviction treats finished-and-alive transactions as
            // committed (the scheduler's rule): sources are the
            // still-running ones; evicting mid-run must not change any
            // later verdict relative to the shrunken window.
            if rng.gen_bool(0.10) {
                let evicted = engine
                    .evict_unreachable(|t| alive[t.index()] && !finished(&next_seq, t.index()));
                accepted.retain(|s| !evicted.contains(&s.txn));
            }
            // A rebuild between decisions must be semantically invisible.
            if rng.gen_bool(0.08) {
                engine.flush_rebuild();
            }
            let t = runnable[rng.gen_range(0..runnable.len())];
            // Occasionally abort a transaction with history outright,
            // exercising rebuild-on-shrink between decisions.
            if accepted.iter().any(|s| s.txn.0 == t as u32) && rng.gen_bool(0.06) {
                alive[t] = false;
                engine.remove_txn(TxnId(t as u32));
                accepted.retain(|s| s.txn.0 != t as u32);
                continue;
            }
            let candidate = Step {
                txn: TxnId(t as u32),
                seq: next_seq[t],
                entity: setup.scripts[t][next_seq[t] as usize],
                observed: 0,
                wrote: 0,
            };
            // Batch reference: closure of the same prefix + candidate.
            let mut steps = accepted.clone();
            steps.push(candidate);
            let exec = Execution::new(steps).expect("per-txn seqs stay contiguous");
            let ctx = ExecContext::new(&exec, &setup.nest, &setup.spec)
                .expect("execution matches nest and spec");
            let batch_ok = CoherentClosure::compute(&ctx).is_partial_order();
            match engine.apply_step(candidate) {
                Ok(()) => {
                    prop_assert!(batch_ok, "engine granted what batch denies (seed {seed})");
                    engine.commit_step();
                    accepted.push(candidate);
                    next_seq[t] += 1;
                }
                Err(witness) => {
                    prop_assert!(!batch_ok, "engine denied what batch grants (seed {seed})");
                    prop_assert!(!witness.txns.is_empty());
                    // Abort a random witness transaction (the requester
                    // counts as present even with no accepted steps yet).
                    let victims = &witness.txns;
                    let v = victims[rng.gen_range(0..victims.len())];
                    alive[v.index()] = false;
                    engine.remove_txn(v);
                    accepted.retain(|s| s.txn != v);
                    if v.index() != t {
                        // The requester's candidate was rolled back but
                        // the transaction itself survives to retry.
                    }
                }
            }
        }

        // Final-state agreement: the engine's surviving execution is the
        // accepted prefix, and its maintained relation matches the batch
        // closure of that execution pairwise. A rebuild scheduled by a
        // trailing abort is normally replayed at the next decision; flush
        // it so the maintained relation is current before probing.
        engine.flush_rebuild();
        let survived = engine.execution();
        prop_assert_eq!(survived.steps(), accepted.as_slice());
        if !accepted.is_empty() {
            let ctx = ExecContext::new(&survived, &setup.nest, &setup.spec)
                .expect("surviving execution matches nest and spec");
            let closure = CoherentClosure::compute(&ctx);
            prop_assert!(closure.is_partial_order(), "granted history stayed acyclic");
            let row_of = |i: usize| -> usize {
                let lt = engine
                    .local_of(ctx.txn_id(ctx.txn_of(i)))
                    .expect("live transaction has a column");
                engine.steps_of(lt)[ctx.seq_of(i)]
            };
            for u in 0..ctx.n() {
                for v in 0..ctx.n() {
                    if u == v {
                        continue;
                    }
                    prop_assert_eq!(
                        closure.related(&ctx, u, v),
                        engine.related(row_of(u), row_of(v)),
                        "pair ({}, {}) disagrees (seed {})",
                        u,
                        v,
                        seed
                    );
                }
            }
        }
    }
}
