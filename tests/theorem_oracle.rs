//! Cross-crate semantic tests: Theorem 2 against ground truth, on *real*
//! executions produced by running actual workload programs (values and
//! branching included), not just synthetic step patterns.

#![allow(clippy::needless_range_loop)] // dense-index pairwise comparisons

use std::ops::ControlFlow;

use multilevel_atomicity::core::closure::{
    coherent_closure_exact, exact_is_partial_order, CoherentClosure,
};
use multilevel_atomicity::core::serializability::is_serializable;
use multilevel_atomicity::core::spec::ExecContext;
use multilevel_atomicity::core::theorem::{decide, Correctability};
use multilevel_atomicity::core::{is_multilevel_atomic, MlaCriterion};
use multilevel_atomicity::model::appdb::is_correctable_by_enumeration;
use multilevel_atomicity::model::{Execution, TxnId};
use multilevel_atomicity::workload::banking::{generate as banking, BankingConfig};
use multilevel_atomicity::workload::synthetic::{generate as synthetic, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs a workload's system under a random interleaving schedule,
/// producing a genuine (value-correct) execution.
fn random_execution(
    wl: &multilevel_atomicity::workload::Workload,
    rng: &mut SmallRng,
    max_steps: usize,
) -> Execution {
    let sys = wl.system();
    // Drive transactions one random step at a time until all finish or
    // the cap is reached.
    let mut schedule = Vec::new();
    let mut states: Vec<bool> = vec![false; wl.txn_count()]; // finished?
    let mut exec = Execution::empty();
    while schedule.len() < max_steps {
        let live: Vec<u32> = (0..wl.txn_count() as u32)
            .filter(|&t| !states[t as usize])
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[rng.gen_range(0..live.len())];
        schedule.push(TxnId(t));
        match sys.run_schedule(&schedule) {
            Ok(e) => exec = e,
            Err(_) => {
                // That transaction just finished; mark and drop the pick.
                schedule.pop();
                states[t as usize] = true;
            }
        }
    }
    exec
}

#[test]
fn theorem_matches_enumeration_on_banking_runs() {
    let mut rng = SmallRng::seed_from_u64(101);
    let mut correctable = 0;
    let mut uncorrectable = 0;
    for round in 0..60 {
        let b = banking(BankingConfig {
            families: 2,
            accounts_per_family: 2,
            transfers: 2,
            bank_audits: 1,
            credit_audits: 0,
            seed: round,
            ..BankingConfig::default()
        });
        let exec = random_execution(&b.workload, &mut rng, 10);
        if exec.len() < 2 {
            continue;
        }
        let nest = &b.workload.nest;
        let spec = b.workload.spec();
        let theorem = match decide(&exec, nest, &spec).unwrap() {
            Correctability::Correctable { witness } => {
                assert!(exec.equivalent(&witness), "witness must be equivalent");
                assert!(
                    is_multilevel_atomic(&witness, nest, &spec).unwrap(),
                    "witness must be multilevel atomic"
                );
                true
            }
            Correctability::NotCorrectable { .. } => false,
        };
        let oracle = is_correctable_by_enumeration(&exec, &MlaCriterion { nest, spec: &spec });
        assert_eq!(theorem, oracle, "round {round}: mismatch on {exec}");
        if theorem {
            correctable += 1;
        } else {
            uncorrectable += 1;
        }
    }
    assert!(correctable > 5, "need correctable samples ({correctable})");
    assert!(
        uncorrectable > 0,
        "need at least one uncorrectable sample ({uncorrectable})"
    );
}

#[test]
fn closures_agree_on_synthetic_runs() {
    let mut rng = SmallRng::seed_from_u64(2002);
    for round in 0..40 {
        let s = synthetic(SyntheticConfig {
            txns: 4,
            k: 4,
            fanout: vec![2, 2],
            densities: vec![0.3, 0.7],
            len_min: 2,
            len_max: 4,
            entities: 5,
            seed: round,
            ..SyntheticConfig::default()
        });
        let exec = random_execution(&s.workload, &mut rng, 14);
        let nest = &s.workload.nest;
        let spec = s.workload.spec();
        let ctx = ExecContext::new(&exec, nest, &spec).unwrap();
        let fast = CoherentClosure::compute(&ctx);
        let slow = coherent_closure_exact(&ctx);
        assert_eq!(
            fast.is_partial_order(),
            exact_is_partial_order(&slow),
            "round {round}: acyclicity disagreement on {exec}"
        );
        for v in 0..ctx.n() {
            for u in 0..ctx.n() {
                if u != v {
                    assert_eq!(
                        fast.related(&ctx, u, v),
                        slow[v].contains(u),
                        "round {round}: pair ({u},{v}) disagreement"
                    );
                }
            }
        }
    }
}

#[test]
fn k2_correctability_equals_serializability_on_real_runs() {
    // §4.3: with k = 2 multilevel atomicity is seriality, so Theorem 2
    // must coincide with conflict-graph serializability.
    let mut rng = SmallRng::seed_from_u64(33);
    let mut agree_yes = 0;
    let mut agree_no = 0;
    for round in 0..60 {
        let s = synthetic(SyntheticConfig {
            txns: 3,
            k: 2,
            fanout: vec![],
            densities: vec![],
            len_min: 2,
            len_max: 3,
            entities: 3,
            seed: 500 + round,
            ..SyntheticConfig::default()
        });
        let exec = random_execution(&s.workload, &mut rng, 9);
        let spec = s.workload.spec();
        let thm =
            multilevel_atomicity::core::is_correctable(&exec, &s.workload.nest, &spec).unwrap();
        let sgt = is_serializable(&exec);
        assert_eq!(thm, sgt, "round {round}: k=2 mismatch on {exec}");
        if thm {
            agree_yes += 1;
        } else {
            agree_no += 1;
        }
    }
    assert!(agree_yes > 5 && agree_no > 5, "{agree_yes}/{agree_no}");
}

#[test]
fn acceptance_is_monotone_in_breakpoint_density() {
    // More breakpoints can only admit more executions: any execution
    // correctable at density d must remain correctable at density d' > d
    // (with nested hash draws the breakpoint sets are nested). We verify
    // statistically: acceptance rate is nondecreasing along the sweep.
    let mut rng = SmallRng::seed_from_u64(77);
    let densities = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut rates = Vec::new();
    for &d in &densities {
        let mut accepted = 0;
        let total = 40;
        for round in 0..total {
            let s = synthetic(SyntheticConfig {
                txns: 3,
                k: 3,
                fanout: vec![1], // all in one pi(2) class
                densities: vec![d],
                len_min: 2,
                len_max: 3,
                entities: 3,
                seed: 9000 + round,
                ..SyntheticConfig::default()
            });
            let exec = random_execution(&s.workload, &mut rng, 9);
            if multilevel_atomicity::core::is_correctable(
                &exec,
                &s.workload.nest,
                &s.workload.spec(),
            )
            .unwrap()
            {
                accepted += 1;
            }
        }
        rates.push(accepted);
    }
    // Different random executions per density, so only demand a clear
    // trend: the extremes must be ordered and dramatic.
    assert!(
        rates[4] > rates[0],
        "density 1.0 must accept more than density 0.0: {rates:?}"
    );
    assert_eq!(
        rates[4], 40,
        "density 1.0 in one class accepts everything: {rates:?}"
    );
}

#[test]
fn enumeration_oracle_streams_lazily() {
    // for_each_equivalent with early exit must not materialize the whole
    // (potentially huge) extension set.
    let s = synthetic(SyntheticConfig {
        txns: 6,
        k: 2,
        fanout: vec![],
        densities: vec![],
        len_min: 2,
        len_max: 2,
        entities: 50, // disjoint-ish: very many linear extensions
        seed: 4,
        ..SyntheticConfig::default()
    });
    let mut rng = SmallRng::seed_from_u64(5);
    let exec = random_execution(&s.workload, &mut rng, 12);
    let mut seen = 0usize;
    exec.for_each_equivalent::<()>(|_| {
        seen += 1;
        if seen >= 1000 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    assert!(seen <= 1000);
}
