//! Seeded-stress determinism for the thread-parallel closure backend:
//! the pool's scheduling freedom must never leak into observable
//! results. The same decision schedule is replayed many times through
//! fresh parallel backends; verdict sequences, maintained histories,
//! and closure decision counters must be identical run over run —
//! occupancy and barrier-wait times are wall-clock and deliberately
//! the only fields allowed to vary (see DESIGN.md's sequencer
//! invariant).
//!
//! Two layers are pinned: raw `decide_batch` replays over a schedule
//! with genuine denials (so the poison path is inside the loop), and
//! full simulator runs through the `MlaDetect` parallel knob on the
//! partitioned scanner workload.

use std::sync::Arc;

use multilevel_atomicity::cc::{MlaDetect, VictimPolicy};
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::core::{EngineBackend, EngineCounters};
use multilevel_atomicity::explore::{explore, BoundedNest};
use multilevel_atomicity::model::{EntityId, Step, TxnId};
use multilevel_atomicity::sim::{run, SimConfig};
use multilevel_atomicity::txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints, RuntimeSpec};
use multilevel_atomicity::workload::partitioned::{generate, PartitionedConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RUNS: usize = 16;

/// The observable signature of one batch replay: verdicts, history,
/// per-group counters, merge count.
type BatchSignature = (Vec<bool>, Vec<Step>, Vec<EngineCounters>, u64);

/// A synthetic conflicted setup: transactions share several entities
/// from a small pool in clashing orders, so a random interleaving
/// produces genuine denials — the partitioned workload cannot (its
/// cross-transaction conflicts all route through one shared entity per
/// universe, which is acyclic in any offer order). Even transactions
/// are atomic, odd ones carry a mid-transaction phase breakpoint, so
/// both grant rules are in play.
fn conflicted_setup(seed: u64) -> (Nest, RuntimeSpec, Vec<Step>) {
    let k = 3;
    let n = 8usize;
    let len = 4usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let nest = Nest::new(k, (0..n).map(|t| vec![t as u32 % 3]).collect::<Vec<_>>())
        .expect("paths have depth k-2");
    let mut spec = RuntimeSpec::new(k);
    let mut scripts = Vec::new();
    for t in 0..n {
        let script: Vec<EntityId> = (0..len).map(|_| EntityId(rng.gen_range(0..6u32))).collect();
        let bp: Arc<dyn RuntimeBreakpoints> = if t % 2 == 0 {
            Arc::new(NoBreakpoints { k })
        } else {
            Arc::new(PhaseTable::new(k, [(1, 2)]))
        };
        spec.insert(TxnId(t as u32), bp);
        scripts.push(script);
    }
    // A random interleaving of the scripts: one next-step offer per
    // draw, per-transaction seqs contiguous by construction.
    let mut next = vec![0usize; n];
    let mut schedule = Vec::new();
    while schedule.len() < n * len {
        let t = rng.gen_range(0..n);
        if next[t] < len {
            schedule.push(Step {
                txn: TxnId(t as u32),
                seq: next[t] as u32,
                entity: scripts[t][next[t]],
                observed: 0,
                wrote: 0,
            });
            next[t] += 1;
        }
    }
    (nest, spec, schedule)
}

/// The parallel shapes under test: the original 4×4, the
/// more-shards-than-workers 8×3 multiplexed shape, and the 1-worker
/// degenerate case (every shard group serialized onto one worker, so
/// the sequencer and barriers still run but never overlap).
const SHAPES: [(usize, usize); 3] = [(4, 4), (8, 3), (4, 1)];

#[test]
fn parallel_batch_verdicts_are_reproducible() {
    let (nest, spec, schedule) = conflicted_setup(0xD57);

    for (shards, workers) in SHAPES {
        let mut reference: Option<BatchSignature> = None;
        let mut denials = 0;
        for run_no in 0..RUNS {
            let mut backend = EngineBackend::parallel(nest.clone(), spec.clone(), shards, workers);
            let verdicts: Vec<bool> = backend
                .decide_batch(&schedule)
                .into_iter()
                .map(|v| v.is_ok())
                .collect();
            denials = verdicts.iter().filter(|ok| !**ok).count();
            let history = backend.execution().steps().to_vec();
            let counters = backend.shard_counters();
            let merges = backend.merge_count();
            let stats = backend.parallel_stats().expect("parallel backend");
            assert_eq!(stats.workers, workers);
            assert_eq!(stats.barrier_stalls, merges);
            match &reference {
                None => reference = Some((verdicts, history, counters, merges)),
                Some((v0, h0, c0, m0)) => {
                    assert_eq!(
                        &verdicts, v0,
                        "verdicts diverged on run {run_no} ({shards}x{workers})"
                    );
                    assert_eq!(
                        &history, h0,
                        "history diverged on run {run_no} ({shards}x{workers})"
                    );
                    assert_eq!(
                        &counters, c0,
                        "counters diverged on run {run_no} ({shards}x{workers})"
                    );
                    assert_eq!(
                        &merges, m0,
                        "merges diverged on run {run_no} ({shards}x{workers})"
                    );
                }
            }
        }
        // The schedule must actually exercise the poison path, and the
        // verdicts must match the serial reference implementation at
        // the same shard count.
        assert!(denials > 0, "the shuffled schedule must provoke denials");
        let (v0, h0, _, _) = reference.unwrap();
        let mut serial = EngineBackend::sharded(nest.clone(), spec.clone(), shards);
        let serial_verdicts: Vec<bool> = serial
            .decide_batch(&schedule)
            .into_iter()
            .map(|v| v.is_ok())
            .collect();
        assert_eq!(
            serial_verdicts, v0,
            "parallel verdicts diverged from serial ({shards}x{workers})"
        );
        assert_eq!(serial.execution().steps(), h0.as_slice());
    }
}

#[test]
fn parallel_simulation_is_reproducible() {
    let config = PartitionedConfig {
        partitions: 4,
        txns_per_partition: 8,
        scanner_len: 8,
        arrival_spacing: 2,
    };
    let generated = generate(config);
    let wl = &generated.workload;
    let sim_config = SimConfig::seeded(77);

    for (shards, workers) in [(4, 2), (8, 3), (4, 1)] {
        let mut reference = None;
        for run_no in 0..RUNS {
            let mut control = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps)
                .with_shards(shards)
                .with_parallelism(workers);
            let out = run(
                wl.nest.clone(),
                wl.instances(),
                wl.initial.iter().copied(),
                &wl.arrivals,
                &sim_config,
                &mut control,
            );
            let m = &out.metrics;
            let stats = m.parallel.as_ref().expect("parallel stats recorded");
            assert_eq!(stats.workers, workers);
            // Everything observable must repeat; occupancy/barrier-wait
            // nanos (wall-clock) are the only fields exempt.
            let signature = (
                out.execution.steps().to_vec(),
                m.committed,
                m.aborts,
                m.defers,
                m.steps_performed,
                m.makespan,
                m.decision_cost,
                m.shard_cost.clone(),
                stats.barrier_stalls,
            );
            match &reference {
                None => reference = Some(signature),
                Some(r) => assert_eq!(
                    &signature, r,
                    "simulation diverged on run {run_no} ({shards}x{workers})"
                ),
            }
        }
    }
}

/// The sequencer/barrier stressor: instead of *sampling* commit orders,
/// enumerate them. Every Mazurkiewicz-trace representative of an
/// all-grant bounded nest (two contended pairs in separate k=3 classes,
/// level-2 breakpoints throughout, entities across shard residues) is
/// fed as one `decide_batch` to every parallel shape — including the
/// 8×3 multiplexed and 1-worker degenerate ones — and to the serial
/// sharded and unsharded references. Verdicts and histories must agree
/// with exploration everywhere, so every worker-commit ordering the
/// sequencer can be asked to realize has been realized.
#[test]
fn batch_sequencer_agrees_on_every_commit_ordering() {
    let k = 3;
    let nest =
        Nest::new(k, vec![vec![0], vec![0], vec![1], vec![1]]).expect("paths have depth k-2");
    let mut spec = RuntimeSpec::new(k);
    for t in 0..4u32 {
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
        spec.insert(TxnId(t), bp);
    }
    let input = BoundedNest {
        nest: nest.clone(),
        spec: spec.clone(),
        scripts: vec![
            vec![EntityId(0), EntityId(4)],
            vec![EntityId(4), EntityId(0)],
            vec![EntityId(1), EntityId(5)],
            vec![EntityId(5), EntityId(1)],
        ],
    };

    let mut representatives = 0usize;
    let stats = explore(&input, |schedule| {
        assert!(
            schedule.all_granted(),
            "free weaving must grant every offer (the stressor relies on it: \
             exploration aborts deniers, decide_batch poisons them)"
        );
        representatives += 1;
        let mut reference: Option<Vec<Step>> = None;
        let shapes: [(usize, usize); 5] = [(0, 0), (4, 0), (4, 4), (8, 3), (4, 1)];
        for (shards, workers) in shapes {
            let mut backend = match (shards, workers) {
                (0, _) => EngineBackend::unsharded(nest.clone(), spec.clone()),
                (s, 0) => EngineBackend::sharded(nest.clone(), spec.clone(), s),
                (s, w) => EngineBackend::parallel(nest.clone(), spec.clone(), s, w),
            };
            let verdicts = backend.decide_batch(&schedule.offers);
            assert!(
                verdicts.iter().all(|v| v.is_ok()),
                "shape {shards}x{workers} denied an offer exploration granted"
            );
            let history = backend.execution().steps().to_vec();
            assert_eq!(
                history.as_slice(),
                schedule.exec.steps(),
                "shape {shards}x{workers} history diverged from exploration"
            );
            match &reference {
                None => reference = Some(history),
                Some(h0) => assert_eq!(&history, h0, "shape {shards}x{workers} diverged"),
            }
        }
    });
    assert_eq!(representatives as u64, stats.explored);
    // Each pair's two conflict pairs admit three consistent
    // orientations (both forward, both reversed, or the fully
    // interleaved middle class), independently per class: 3² traces.
    assert_eq!(stats.explored, 9);
}
