//! Seeded-stress determinism for the thread-parallel closure backend:
//! the pool's scheduling freedom must never leak into observable
//! results. The same decision schedule is replayed many times through
//! fresh parallel backends; verdict sequences, maintained histories,
//! and closure decision counters must be identical run over run —
//! occupancy and barrier-wait times are wall-clock and deliberately
//! the only fields allowed to vary (see DESIGN.md's sequencer
//! invariant).
//!
//! Two layers are pinned: raw `decide_batch` replays over a schedule
//! with genuine denials (so the poison path is inside the loop), and
//! full simulator runs through the `MlaDetect` parallel knob on the
//! partitioned scanner workload.

use std::sync::Arc;

use multilevel_atomicity::cc::{MlaDetect, VictimPolicy};
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::core::{EngineBackend, EngineCounters};
use multilevel_atomicity::model::{EntityId, Step, TxnId};
use multilevel_atomicity::sim::{run, SimConfig};
use multilevel_atomicity::txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints, RuntimeSpec};
use multilevel_atomicity::workload::partitioned::{generate, PartitionedConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RUNS: usize = 16;

/// The observable signature of one batch replay: verdicts, history,
/// per-group counters, merge count.
type BatchSignature = (Vec<bool>, Vec<Step>, Vec<EngineCounters>, u64);

/// A synthetic conflicted setup: transactions share several entities
/// from a small pool in clashing orders, so a random interleaving
/// produces genuine denials — the partitioned workload cannot (its
/// cross-transaction conflicts all route through one shared entity per
/// universe, which is acyclic in any offer order). Even transactions
/// are atomic, odd ones carry a mid-transaction phase breakpoint, so
/// both grant rules are in play.
fn conflicted_setup(seed: u64) -> (Nest, RuntimeSpec, Vec<Step>) {
    let k = 3;
    let n = 8usize;
    let len = 4usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let nest = Nest::new(k, (0..n).map(|t| vec![t as u32 % 3]).collect::<Vec<_>>())
        .expect("paths have depth k-2");
    let mut spec = RuntimeSpec::new(k);
    let mut scripts = Vec::new();
    for t in 0..n {
        let script: Vec<EntityId> = (0..len).map(|_| EntityId(rng.gen_range(0..6u32))).collect();
        let bp: Arc<dyn RuntimeBreakpoints> = if t % 2 == 0 {
            Arc::new(NoBreakpoints { k })
        } else {
            Arc::new(PhaseTable::new(k, [(1, 2)]))
        };
        spec.insert(TxnId(t as u32), bp);
        scripts.push(script);
    }
    // A random interleaving of the scripts: one next-step offer per
    // draw, per-transaction seqs contiguous by construction.
    let mut next = vec![0usize; n];
    let mut schedule = Vec::new();
    while schedule.len() < n * len {
        let t = rng.gen_range(0..n);
        if next[t] < len {
            schedule.push(Step {
                txn: TxnId(t as u32),
                seq: next[t] as u32,
                entity: scripts[t][next[t]],
                observed: 0,
                wrote: 0,
            });
            next[t] += 1;
        }
    }
    (nest, spec, schedule)
}

#[test]
fn parallel_batch_verdicts_are_reproducible() {
    let (nest, spec, schedule) = conflicted_setup(0xD57);

    let mut reference: Option<BatchSignature> = None;
    let mut denials = 0;
    for run_no in 0..RUNS {
        let mut backend = EngineBackend::parallel(nest.clone(), spec.clone(), 4, 4);
        let verdicts: Vec<bool> = backend
            .decide_batch(&schedule)
            .into_iter()
            .map(|v| v.is_ok())
            .collect();
        denials = verdicts.iter().filter(|ok| !**ok).count();
        let history = backend.execution().steps().to_vec();
        let counters = backend.shard_counters();
        let merges = backend.merge_count();
        let stats = backend.parallel_stats().expect("parallel backend");
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.barrier_stalls, merges);
        match &reference {
            None => reference = Some((verdicts, history, counters, merges)),
            Some((v0, h0, c0, m0)) => {
                assert_eq!(&verdicts, v0, "verdicts diverged on run {run_no}");
                assert_eq!(&history, h0, "history diverged on run {run_no}");
                assert_eq!(&counters, c0, "counters diverged on run {run_no}");
                assert_eq!(&merges, m0, "merges diverged on run {run_no}");
            }
        }
    }
    // The schedule must actually exercise the poison path, and the
    // verdicts must match the serial reference implementation.
    assert!(denials > 0, "the shuffled schedule must provoke denials");
    let (v0, h0, _, _) = reference.unwrap();
    let mut serial = EngineBackend::sharded(nest, spec, 4);
    let serial_verdicts: Vec<bool> = serial
        .decide_batch(&schedule)
        .into_iter()
        .map(|v| v.is_ok())
        .collect();
    assert_eq!(
        serial_verdicts, v0,
        "parallel verdicts diverged from serial"
    );
    assert_eq!(serial.execution().steps(), h0.as_slice());
}

#[test]
fn parallel_simulation_is_reproducible() {
    let config = PartitionedConfig {
        partitions: 4,
        txns_per_partition: 8,
        scanner_len: 8,
        arrival_spacing: 2,
    };
    let generated = generate(config);
    let wl = &generated.workload;
    let sim_config = SimConfig::seeded(77);

    let mut reference = None;
    for run_no in 0..RUNS {
        let mut control = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps)
            .with_shards(4)
            .with_parallelism(2);
        let out = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &sim_config,
            &mut control,
        );
        let m = &out.metrics;
        let stats = m.parallel.as_ref().expect("parallel stats recorded");
        assert_eq!(stats.workers, 2);
        // Everything observable must repeat; occupancy/barrier-wait
        // nanos (wall-clock) are the only fields exempt.
        let signature = (
            out.execution.steps().to_vec(),
            m.committed,
            m.aborts,
            m.defers,
            m.steps_performed,
            m.makespan,
            m.decision_cost,
            m.shard_cost.clone(),
            stats.barrier_stalls,
        );
        match &reference {
            None => reference = Some(signature),
            Some(r) => assert_eq!(&signature, r, "simulation diverged on run {run_no}"),
        }
    }
}
