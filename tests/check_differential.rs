//! Differential cross-check of the black-box `mla-check` history
//! checker against everything else that claims to understand
//! multilevel atomicity:
//!
//! 1. **Schedulers.** Every history `MlaDetect` and `MlaPrevent` admit
//!    — across the six backend shapes of the differential harness and
//!    across `mla-serve` live runs — must pass `mla-check` after a trip
//!    through the text format, and the returned witness must actually
//!    be an equivalent multilevel-atomic execution.
//! 2. **The Theorem 2 oracle.** On generated random histories (both
//!    verdicts occur, nothing is biased) `mla-check`'s clustered
//!    saturation must agree with the monolithic `decide` on every
//!    history, and on every mutant (adjacent step swap, breakpoint
//!    drop, read-from rewrite). Every rejection must carry a concrete
//!    cycle witness whose steps resolve in the recorded execution and
//!    span at least two transactions.
//! 3. **Weak mode.** The constrained-linearization fallback may only
//!    strengthen: on a value-consistent history the recorded order
//!    itself realizes, so `Unrealizable` on a strong-pass history is a
//!    soundness bug.
//!
//! The tier-1 sweep sizes put well over 500 generated histories through
//! the oracle comparison; the `#[ignore]`d loop runs the unbounded
//! version nightly.

use multilevel_atomicity::cc::{MlaDetect, MlaPrevent, VictimPolicy};
use multilevel_atomicity::check::checker::Verdict;
use multilevel_atomicity::check::{
    check, check_weak, format_history, generate, mutate, parse, GenConfig, History, WeakVerdict,
    MUTATIONS,
};
use multilevel_atomicity::core::atomicity::is_multilevel_atomic;
use multilevel_atomicity::core::theorem::decide;
use multilevel_atomicity::explore::{explore, BoundedNest};
use multilevel_atomicity::model::program::{ScriptOp, ScriptProgram};
use multilevel_atomicity::model::{EntityId, Execution, TxnId};
use multilevel_atomicity::serve::{
    contended_load, partitioned_load, run as serve_run, ServeConfig,
};
use multilevel_atomicity::sim::{run, SimConfig, SimOutcome};
use multilevel_atomicity::txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints};
use multilevel_atomicity::workload::mixed::{self, IsolationDegree, MixedConfig};
use multilevel_atomicity::workload::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random workload in the partitioned family (the construction the
/// certificate-soundness suite uses): universe-local scripts, a shared
/// entity per universe, random level-2 breakpoints.
fn random_workload(rng: &mut SmallRng) -> Workload {
    let k = 3;
    let universes = rng.gen_range(1..=3usize);
    let n = rng.gen_range(2..=6usize);
    let mut programs: Vec<Arc<dyn multilevel_atomicity::model::Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut arrivals: Vec<u64> = Vec::new();
    let mut entities: Vec<EntityId> = (0..universes as u32).map(EntityId).collect();
    for t in 0..n {
        let u = rng.gen_range(0..universes);
        let len = rng.gen_range(1..=4usize);
        let mut ops = Vec::with_capacity(len);
        for i in 0..len {
            let ent = if rng.gen_bool(0.5) {
                EntityId(u as u32)
            } else {
                EntityId(((1 + t * 4 + i) * universes + u) as u32)
            };
            entities.push(ent);
            ops.push(ScriptOp::Add(ent, 1));
        }
        let bp: Arc<dyn RuntimeBreakpoints> = if len > 1 && rng.gen_bool(0.6) {
            let marks: Vec<(usize, usize)> = (1..len)
                .filter(|_| rng.gen_bool(0.5))
                .map(|p| (p, 2))
                .collect();
            Arc::new(PhaseTable::new(k, marks))
        } else {
            Arc::new(NoBreakpoints { k })
        };
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(bp);
        paths.push(vec![u as u32]);
        arrivals.push(rng.gen_range(0..8u64) * 2);
    }
    entities.sort_unstable();
    entities.dedup();
    Workload {
        name: "random-partitioned-ish".to_string(),
        nest: multilevel_atomicity::core::nest::Nest::new(k, paths)
            .expect("one universe path per transaction"),
        programs,
        breakpoints,
        initial: entities.into_iter().map(|e| (e, 0)).collect(),
        arrivals,
    }
}

/// The six backend shapes: (shards, workers), (0, 0) = unsharded.
const SHAPES: [(usize, usize); 6] = [(0, 0), (1, 0), (4, 0), (4, 2), (4, 4), (8, 3)];

fn sim_run(
    wl: &Workload,
    control: &mut dyn multilevel_atomicity::sim::Control,
    seed: u64,
) -> SimOutcome {
    run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(seed),
        control,
    )
}

/// Captures, round-trips through the text format, and checks one
/// scheduler-admitted history; the witness must be equivalent and
/// multilevel atomic.
fn assert_admitted(wl: &Workload, out: &SimOutcome, label: &str) {
    assert_execution_admitted(wl, &out.execution, label);
}

/// The same end-to-end pipeline on a bare execution (DPOR
/// representatives don't come wrapped in a [`SimOutcome`]).
fn assert_execution_admitted(wl: &Workload, exec: &Execution, label: &str) {
    let h = History::from_execution(exec, &wl.nest, &wl.spec())
        .expect("admitted history matches nest and spec");
    let h = parse(&format_history(&h)).expect("format round-trip");
    match check(&h) {
        Verdict::Pass { witness, .. } => {
            assert!(
                witness.equivalent(h.exec()),
                "{label}: witness not equivalent to the admitted history"
            );
            assert!(
                is_multilevel_atomic(&witness, &wl.nest, &wl.spec())
                    .expect("witness matches nest and spec"),
                "{label}: witness is not multilevel atomic"
            );
        }
        Verdict::Fail { violation } => {
            panic!("{label}: admitted history rejected by mla-check: {violation}")
        }
    }
}

#[test]
fn detect_admitted_histories_pass_across_all_backends() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1FF_0000 + seed);
        let wl = random_workload(&mut rng);
        for (shards, workers) in SHAPES {
            let mut c = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
            if shards > 0 {
                c = c.with_shards(shards);
            }
            if workers > 0 {
                c = c.with_parallelism(workers);
            }
            let out = sim_run(&wl, &mut c, seed);
            assert_admitted(&wl, &out, &format!("detect {shards}x{workers} seed {seed}"));
        }
    }
}

#[test]
fn prevent_admitted_histories_pass() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1FF_1000 + seed);
        let wl = random_workload(&mut rng);
        for shards in [0usize, 4] {
            let mut c = MlaPrevent::new(wl.txn_count(), wl.spec(), VictimPolicy::FewestSteps);
            if shards > 0 {
                c = c.with_shards(shards);
            }
            let out = sim_run(&wl, &mut c, seed);
            assert_admitted(&wl, &out, &format!("prevent x{shards} seed {seed}"));
        }
    }
}

#[test]
fn serve_histories_pass() {
    for (load, label) in [
        (partitioned_load(4, 6), "partitioned"),
        (contended_load(4, 6, 4, 0), "contended"),
    ] {
        let report = serve_run(&load, &ServeConfig::default());
        assert!(report.clean, "{label}: serve drain incomplete");
        let exec = multilevel_atomicity::model::Execution::new(report.history.clone())
            .expect("service histories are seq-contiguous");
        let h = History::from_execution(&exec, &load.workload.nest, &load.workload.spec())
            .expect("serve history matches nest and spec");
        let h = parse(&format_history(&h)).expect("format round-trip");
        assert!(
            check(&h).passed(),
            "{label}: serve history rejected by mla-check"
        );
    }
}

/// One oracle-vs-checker comparison; returns whether the history
/// passed. Rejections must locate a multi-transaction cycle in the
/// recorded steps.
fn assert_agreement(h: &History, label: &str) -> bool {
    let oracle = decide(h.exec(), h.nest(), h).expect("history is self-consistent");
    match (oracle.is_correctable(), check(h)) {
        (true, Verdict::Pass { witness, .. }) => {
            assert!(
                witness.equivalent(h.exec()),
                "{label}: witness not equivalent"
            );
            assert!(
                is_multilevel_atomic(&witness, h.nest(), h).expect("witness is self-consistent"),
                "{label}: witness not multilevel atomic"
            );
            true
        }
        (false, Verdict::Fail { violation }) => {
            assert!(
                violation.cycle.len() >= 2,
                "{label}: cycle witness too short"
            );
            let mut txns: Vec<TxnId> = violation.cycle.iter().map(|s| s.txn).collect();
            txns.sort_unstable();
            txns.dedup();
            assert!(
                txns.len() >= 2,
                "{label}: closure cycle confined to one transaction"
            );
            for s in &violation.cycle {
                let rec = h.exec().steps()[s.global];
                assert_eq!(
                    (rec.txn, rec.seq),
                    (s.txn, s.seq),
                    "{label}: dangling cycle ref"
                );
            }
            false
        }
        (correctable, verdict) => panic!(
            "{label}: oracle says correctable={correctable}, mla-check says {}",
            verdict.render()
        ),
    }
}

fn generated_sweep(cases: usize, seed_base: u64, with_mutants: bool) -> (usize, usize) {
    let (mut passed, mut failed) = (0usize, 0usize);
    for i in 0..cases {
        let mut rng = SmallRng::seed_from_u64(seed_base + i as u64);
        let cfg = GenConfig {
            txns: rng.gen_range(1..=6usize),
            entities: rng.gen_range(1..=4usize),
            k: rng.gen_range(2..=4usize),
            break_pct: rng.gen_range(0..=80u32),
            ..GenConfig::default()
        };
        let h = generate(&cfg, &mut rng);
        if assert_agreement(&h, &format!("gen {i}")) {
            passed += 1;
        } else {
            failed += 1;
        }
        if with_mutants {
            for m in MUTATIONS {
                if let Some(mutant) = mutate(&h, m, &mut rng) {
                    if assert_agreement(&mutant, &format!("gen {i} {m:?}")) {
                        passed += 1;
                    } else {
                        failed += 1;
                    }
                }
            }
        }
    }
    (passed, failed)
}

#[test]
fn generated_histories_agree_with_the_theorem_oracle() {
    let (passed, failed) = generated_sweep(300, 0x0A11_0000, false);
    assert!(
        passed >= 40,
        "only {passed} correctable draws — sweep is biased"
    );
    assert!(
        failed >= 40,
        "only {failed} violating draws — sweep is biased"
    );
}

#[test]
fn oracle_rejected_mutants_fail_with_cycle_witnesses() {
    // assert_agreement panics on any disagreement and insists every
    // rejection carries a resolvable multi-transaction cycle, so the
    // counts just pin that mutation actually flips verdicts at scale.
    let (passed, failed) = generated_sweep(200, 0x0A11_9000, true);
    assert!(
        passed + failed >= 500,
        "sweep too small: {}",
        passed + failed
    );
    assert!(failed >= 100, "only {failed} rejections across mutants");
}

#[test]
fn weak_mode_never_contradicts_a_strong_pass() {
    let mut realized = 0usize;
    for i in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(0x3EA4_0000 + i);
        let cfg = GenConfig {
            txns: rng.gen_range(1..=4usize),
            dup_pct: rng.gen_range(0..=60u32),
            ..GenConfig::default()
        };
        let h = generate(&cfg, &mut rng);
        if !check(&h).passed() {
            continue;
        }
        match check_weak(&h, 100_000) {
            WeakVerdict::Realizable { order } => {
                realized += 1;
                let back = History::from_execution(&order, h.nest(), &h)
                    .expect("realization matches nest and spec");
                assert!(
                    check(&back).passed(),
                    "gen {i}: realization not correctable"
                );
            }
            WeakVerdict::Unrealizable => {
                panic!("gen {i}: weak mode contradicts a strong pass")
            }
            WeakVerdict::BudgetExhausted => {}
        }
    }
    assert!(
        realized >= 10,
        "weak mode realized only {realized} histories"
    );
}

/// Every universe in one nest at a *different* k-level — the mixed
/// isolation family — driven through the simulator across all six
/// backend shapes; every admitted history must survive the full
/// pipeline (text round-trip, `mla-check`, Theorem 2 witness).
#[test]
fn mixed_isolation_histories_pass_across_all_backends() {
    let configs = [
        MixedConfig::default(),
        MixedConfig {
            universes: 4,
            txns_per_universe: 3,
            arrival_spacing: 1,
        },
        MixedConfig {
            universes: 2,
            txns_per_universe: 5,
            arrival_spacing: 3,
        },
    ];
    for cfg in configs {
        let generated = mixed::generate(cfg);
        assert!(
            generated.degrees.contains(&IsolationDegree::Free)
                && generated.degrees.contains(&IsolationDegree::Atomic),
            "the family must actually mix degrees"
        );
        let wl = &generated.workload;
        for seed in [3u64, 11] {
            for (shards, workers) in SHAPES {
                let mut c = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
                if shards > 0 {
                    c = c.with_shards(shards);
                }
                if workers > 0 {
                    c = c.with_parallelism(workers);
                }
                let out = sim_run(wl, &mut c, seed);
                assert_admitted(
                    wl,
                    &out,
                    &format!("{} {shards}x{workers} seed {seed}", wl.name),
                );
            }
        }
    }
}

/// Exhaustive mixed-isolation coverage shared by the tier-1 and
/// nightly tests: DPOR over a small mixed instance, every trace
/// representative's surviving execution through the full `mla-check` +
/// Theorem 2 pipeline, and the denials attributed per universe — a
/// free universe (level-2 breakpoints everywhere) must never deny,
/// while every atomic or subgroup-split classmates universe must deny
/// somewhere in the tree (the degree has to bite).
fn mixed_dpor(cfg: MixedConfig, expect_reps: u64) {
    let generated = mixed::generate(cfg.clone());
    let wl = &generated.workload;
    let input = BoundedNest {
        nest: wl.nest.clone(),
        spec: wl.spec(),
        scripts: wl
            .programs
            .iter()
            .map(|p| p.step_entities().expect("mixed programs are scripted"))
            .collect(),
    };

    let mut denials_by_universe = vec![0usize; cfg.universes];
    let mut representatives = 0usize;
    let stats = explore(&input, |schedule| {
        representatives += 1;
        for (offer, granted) in schedule.offers.iter().zip(&schedule.verdicts) {
            if !granted {
                denials_by_universe[offer.txn.0 as usize / cfg.txns_per_universe] += 1;
            }
        }
        assert_execution_admitted(
            wl,
            &schedule.exec,
            &format!("{} representative {representatives}", wl.name),
        );
    });
    assert_eq!(representatives as u64, stats.explored);
    assert_eq!(stats.explored, expect_reps, "{}: {stats:?}", wl.name);
    for (u, d) in generated.degrees.iter().enumerate() {
        if *d == IsolationDegree::Free {
            assert_eq!(
                denials_by_universe[u], 0,
                "free universe {u} denied a weave"
            );
        } else {
            assert!(
                denials_by_universe[u] > 0,
                "universe {u} ({d:?}) never denied — the degree is not biting"
            );
        }
    }
}

/// Tier-1 bound: one free and one atomic universe of two transactions
/// each (the classmates degree rides in the backend sweep above and in
/// the nightly instance — adding its universe here multiplies the
/// denial-rich tree past the tier-1 budget). 336 representatives: the
/// free pair's 6 shared-step weaves times the atomic pair's 56
/// grant/deny branches.
#[test]
fn mixed_isolation_representatives_pass_end_to_end() {
    let cfg = MixedConfig {
        universes: 2,
        txns_per_universe: 2,
        arrival_spacing: 2,
    };
    mixed_dpor(cfg, 336);
}

/// The nightly lift: all three degrees in one nest. The two
/// denial-rich universes multiply the tree to 265,128 representatives
/// — several minutes of exploration, every one checked end-to-end.
#[test]
#[ignore = "nightly: unbounded mixed-isolation exploration"]
fn unbounded_mixed_isolation_exploration() {
    let cfg = MixedConfig {
        universes: 3,
        txns_per_universe: 2,
        arrival_spacing: 2,
    };
    mixed_dpor(cfg, 265_128);
}

/// The unbounded loop the nightly job runs: same assertions, much more
/// volume, fresh seeds each invocation position.
#[test]
#[ignore]
fn unbounded_random_differential() {
    let (passed, failed) = generated_sweep(1500, 0x2162_0000, true);
    assert!(passed > 0 && failed > 0);
    for seed in 100..130u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1FF_2000 + seed);
        let wl = random_workload(&mut rng);
        for (shards, workers) in SHAPES {
            let mut c = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
            if shards > 0 {
                c = c.with_shards(shards);
            }
            if workers > 0 {
                c = c.with_parallelism(workers);
            }
            let out = sim_run(&wl, &mut c, seed);
            assert_admitted(
                &wl,
                &out,
                &format!("nightly detect {shards}x{workers} {seed}"),
            );
        }
    }
}
