//! Rollback cascades and the commit-point hazard (§6): the paper warns
//! that multilevel atomicity admits chains "t1, t2, t3, ..." where
//! rolling back t(i+1) forces rolling back t(i) — and that determining a
//! safe commit point is therefore hard. These tests build such chains
//! deliberately and check the machinery handles them soundly.

use std::sync::Arc;

use multilevel_atomicity::cc::{oracle, MlaDetect, VictimPolicy};
use multilevel_atomicity::core::nest::Nest;
use multilevel_atomicity::model::program::{ScriptOp::*, ScriptProgram};
use multilevel_atomicity::model::{EntityId, TxnId};
use multilevel_atomicity::sim::control::{Control, Decision};
use multilevel_atomicity::sim::{run, SimConfig, World};
use multilevel_atomicity::txn::{EveryStep, NoBreakpoints, RuntimeSpec, TxnInstance};

fn e(x: u32) -> EntityId {
    EntityId(x)
}

/// A control that grants everything but, once a configured step count is
/// reached, aborts transaction 0 — whose published values everyone
/// downstream has read. Exercises deep cascades deterministically.
struct CascadeTrigger {
    fire_at: u64,
    fired: bool,
}

impl Control for CascadeTrigger {
    fn name(&self) -> &'static str {
        "cascade-trigger"
    }

    fn decide(&mut self, _txn: TxnId, world: &World) -> Decision {
        if !self.fired && world.metrics.steps_performed >= self.fire_at {
            self.fired = true;
            return Decision::Abort(vec![TxnId(0)]);
        }
        Decision::Grant
    }
}

#[test]
fn chain_cascade_rolls_back_everyone_downstream() {
    // t0 writes e0; t1 reads e0, writes e1; t2 reads e1, writes e2; ...
    // Aborting t0 after the chain has formed must cascade through all.
    let n = 6u32;
    let instances: Vec<TxnInstance> = (0..n)
        .map(|i| {
            let ops = if i == 0 {
                vec![Add(e(0), 1), Add(e(100), 1)]
            } else {
                vec![Add(e(i - 1), 1), Add(e(i), 1)]
            };
            TxnInstance::new(
                TxnId(i),
                Arc::new(ScriptProgram::new(ops)),
                Arc::new(EveryStep { k: 3, level: 2 }),
            )
        })
        .collect();
    // Staggered arrivals so the chain forms in order.
    let arrivals: Vec<u64> = (0..n as u64).map(|i| i * 30).collect();
    let out = run(
        Nest::new(3, vec![vec![0]; n as usize]).unwrap(),
        instances,
        [],
        &arrivals,
        &SimConfig {
            latency_jitter: 0,
            ..SimConfig::seeded(50)
        },
        &mut CascadeTrigger {
            fire_at: 9, // most of the chain has run
            fired: false,
        },
    );
    assert_eq!(out.metrics.committed, n as u64, "all eventually commit");
    assert!(out.metrics.aborts >= 2, "the cascade must reach dependents");
    assert!(
        out.metrics.max_cascade() >= 2,
        "at least one multi-transaction cascade: {:?}",
        out.metrics.cascade_sizes
    );
    // The §6 hazard made visible: some already-committed transaction was
    // rolled back by the cascade.
    assert!(
        out.metrics.commit_rollbacks >= 1,
        "expected a commit rollback, got {:?}",
        out.metrics
    );
    // Despite the violence, the final history is sound.
    assert_eq!(out.store.value(e(100)), 1);
    for i in 1..n {
        assert_eq!(
            out.store.value(e(i - 1)),
            2,
            "entity e{} chain value",
            i - 1
        );
    }
}

#[test]
fn cascade_metrics_track_wasted_work() {
    let instances: Vec<TxnInstance> = (0..3u32)
        .map(|i| {
            TxnInstance::new(
                TxnId(i),
                Arc::new(ScriptProgram::new(vec![Add(e(0), 1), Add(e(1), 1)])),
                Arc::new(NoBreakpoints { k: 2 }),
            )
        })
        .collect();
    let out = run(
        Nest::flat(3),
        instances,
        [],
        &[0, 5, 10],
        &SimConfig::seeded(51),
        &mut CascadeTrigger {
            fire_at: 4,
            fired: false,
        },
    );
    assert_eq!(out.metrics.committed, 3);
    assert!(out.metrics.steps_undone > 0);
    assert!(out.metrics.wasted_work() > 0.0);
    assert_eq!(
        out.metrics.steps_performed - out.metrics.steps_undone,
        out.execution.len() as u64,
        "performed minus undone equals surviving history"
    );
}

#[test]
fn mla_detect_under_churn_remains_sound() {
    // High-contention synthetic chains under MLA-detect with frequent
    // aborts: the final history must still pass Theorem 2 and conserve
    // the chain arithmetic.
    let n = 10u32;
    let instances: Vec<TxnInstance> = (0..n)
        .map(|i| {
            TxnInstance::new(
                TxnId(i),
                Arc::new(ScriptProgram::new(vec![
                    Add(e(i % 3), 1),
                    Add(e((i + 1) % 3), 1),
                    Add(e((i + 2) % 3), 1),
                ])),
                Arc::new(NoBreakpoints { k: 2 }), // pure serializability mode
            )
        })
        .collect();
    let nest = Nest::flat(n as usize);
    let spec = RuntimeSpec::new(2);
    let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
    let out = run(
        nest.clone(),
        instances,
        [],
        &vec![0; n as usize],
        &SimConfig::seeded(52),
        &mut control,
    );
    assert_eq!(out.metrics.committed, n as u64);
    assert!(!out.metrics.timed_out);
    assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
    assert!(
        oracle::is_serializable_outcome(&out),
        "k=2 MLA-detect must behave as a serializability certifier"
    );
    let total: i64 = (0..3).map(|i| out.store.value(e(i))).sum();
    assert_eq!(total, n as i64 * 3);
}
