//! # multilevel-atomicity
//!
//! A Rust reproduction of Nancy Lynch's *Multilevel Atomicity — a New
//! Correctness Criterion for Database Concurrency Control* (1982):
//! the theory (k-nests, breakpoints, coherent closure, the
//! characterization theorem and its constructive witness), the
//! migrating-transaction simulation world it presumes, the concurrency
//! controls §6 sketches, the paper's two running applications, and an
//! experiment harness answering the paper's open questions.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — SCC/condensation, topological order, incremental cycle
//!   detection, bitsets.
//! * [`model`] — §3's process/variable model: steps, executions, the
//!   dependency order `<=_e`, equivalence, transaction programs,
//!   application databases.
//! * [`core`] — §4–§5, §7: nests, breakpoints, coherence, the coherent
//!   closure, Theorem 2, Lemma 1, nested action trees, and the classical
//!   serializability baseline.
//! * [`storage`] — the journaling entity store with cascading undo.
//! * [`txn`] — runtime transactions with online (prefix-compatible)
//!   breakpoints.
//! * [`sim`] — the discrete-event migrating-transaction simulator.
//! * [`cc`] — concurrency controls: serial, strict 2PL, timestamp
//!   ordering, SGT, MLA cycle detection, MLA cycle prevention.
//! * [`workload`] — banking, CAD, and synthetic workload generators.
//! * [`lint`] — static breakpoint-spec analysis: well-formedness, spec
//!   smells, and §5 safety certification with stable `MLA0xx` codes.
//! * [`serve`] — the live concurrent transaction service: worker threads
//!   on MVCC storage, the MLA schedulers gating step admission.
//! * [`check`] — the black-box history checker: text history format,
//!   coherent-closure saturation per communication cluster, and the
//!   constrained-linearization fallback for value-only dependency info.
//! * [`explore`] — exhaustive schedule exploration for bounded nests:
//!   sleep-set DPOR using the closure-commutativity probe as the
//!   independence relation, brute-force trace census, and planted
//!   interleaving-dependent mutants for harness-sensitivity tests.
//!
//! ## Quickstart
//!
//! ```
//! use multilevel_atomicity::core::nest::Nest;
//! use multilevel_atomicity::core::spec::AtomicSpec;
//! use multilevel_atomicity::core::theorem::{decide, Correctability};
//! use multilevel_atomicity::model::{EntityId, Execution, Step, TxnId};
//!
//! let step = |t: u32, s: u32, x: u32| Step {
//!     txn: TxnId(t), seq: s, entity: EntityId(x), observed: 0, wrote: 0,
//! };
//! // Two transactions, interleaved, conflicting in aligned order.
//! let e = Execution::new(vec![
//!     step(0, 0, 7), step(1, 0, 8), step(0, 1, 8), step(1, 1, 9),
//! ]).unwrap();
//! let verdict = decide(&e, &Nest::flat(2), &AtomicSpec { k: 2 }).unwrap();
//! assert!(matches!(verdict, Correctability::Correctable { .. }));
//! ```

#![forbid(unsafe_code)]

pub use mla_cc as cc;
pub use mla_check as check;
pub use mla_core as core;
pub use mla_explore as explore;
pub use mla_graph as graph;
pub use mla_lint as lint;
pub use mla_model as model;
pub use mla_serve as serve;
pub use mla_sim as sim;
pub use mla_storage as storage;
pub use mla_txn as txn;
pub use mla_workload as workload;
