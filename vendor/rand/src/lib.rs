//! Offline API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` 0.8 it actually uses: a seedable
//! small RNG plus `gen_range` / `gen_bool` / `gen::<f64>()`. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is all the simulator and tests require.
//! Stream values differ from upstream `rand`, so seeds are not
//! bit-compatible with the real crate (nothing in this workspace
//! depends on upstream streams).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the full output of the RNG.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly (half-open and inclusive).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full
/// 64-bit range) via rejection sampling on the high bits.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Core RNG interface: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the same family upstream `SmallRng` uses on
    /// 64-bit targets. Seeded via SplitMix64 per the reference
    /// implementation's recommendation.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
