//! Offline API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the `proptest!` macro,
//! `prop_assert*` / `prop_assume!`, range/tuple/`Just`/`any` strategies
//! with `prop_map` / `prop_flat_map`, and `collection::{vec, hash_set}`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (override the count with `PROPTEST_CASES`), and there
//! is **no shrinking** — a failure reports the case number, the seed,
//! and the `Debug` rendering of every generated argument instead of a
//! minimized counterexample.

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies. A plain seeded [`SmallRng`].
pub type TestRng = SmallRng;

/// Error raised by a test-case body via `prop_assert*` / `prop_assume!`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The generated inputs do not satisfy a `prop_assume!` precondition.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Subset of upstream's run configuration: only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives the per-test case loop. Seeds are derived from the test name
/// so every test gets an independent, reproducible stream.
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            cases,
            base_seed: h,
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn seed_for(&self, case: u32) -> u64 {
        self.base_seed
            .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn rng_for(&self, case: u32) -> TestRng {
        SmallRng::seed_from_u64(self.seed_for(case))
    }
}

/// A generator of values. Upstream's `Strategy` carries a shrinking
/// `ValueTree`; this subset only generates.
pub trait Strategy: Sized {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform values over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            let mut out = HashSet::with_capacity(target);
            // Duplicates shrink the set below `target` only once the
            // element domain is close to exhausted.
            let mut attempts = 0usize;
            while out.len() < target && attempts < 10 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` with roughly `size` elements drawn from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: `{} == {}` (left: {:?}, right: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} (left: {:?}, right: {:?})",
                file!(),
                line!(),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: `{} != {}` (both: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-definition macro. Each `#[test] fn name(args in strategies)`
/// becomes a plain `#[test]` that loops over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new($cfg, concat!(module_path!(), "::", stringify!($name)));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name),
                            case,
                            runner.seed_for(case),
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn flat_map_respects_dependency((n, i) in pair()) {
            prop_assert!(i < n);
        }

        #[test]
        fn vec_sizes_in_range(v in collection::vec(any::<u8>(), 3..=7)) {
            prop_assert!(v.len() >= 3 && v.len() <= 7);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn hash_set_capped(s in collection::hash_set(0usize..4, 0..3)) {
            prop_assert!(s.len() <= 2);
        }
    }
}
