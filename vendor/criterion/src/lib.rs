//! Offline API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: `benchmark_group`,
//! `sample_size`, `bench_with_input` / `bench_function`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros. Each sample
//! auto-calibrates an iteration count (~`TARGET_SAMPLE_TIME` of work),
//! and the report prints the median, min, and max per-iteration time —
//! no statistics beyond that, no HTML output, no saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the measured routine. `iter` times `iters` consecutive calls
/// per sample and records the mean per-call duration of each sample.
pub struct Bencher {
    samples: Vec<f64>, // ns per iteration, one entry per sample
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes around TARGET_SAMPLE_TIME.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                ((TARGET_SAMPLE_TIME.as_nanos() / elapsed.as_nanos()) + 1).min(16) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(ns);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.id, &mut bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.id, &mut bencher.samples);
        self
    }

    fn report(&mut self, id: &str, samples: &mut [f64]) {
        let line = if samples.is_empty() {
            format!("{}/{:<40} (no samples)", self.name, id)
        } else {
            samples.sort_by(|a, b| a.total_cmp(b));
            let median = samples[samples.len() / 2];
            let min = samples[0];
            let max = samples[samples.len() - 1];
            format!(
                "{}/{:<40} time: [{} {} {}]",
                self.name,
                id,
                format_ns(min),
                format_ns(median),
                format_ns(max)
            )
        };
        println!("{line}");
        self.criterion.lines.push(line);
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn final_summary(&self) {
        if !self.lines.is_empty() {
            println!("\n{} benchmark(s) complete", self.lines.len());
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.lines.len(), 1);
        assert!(c.lines[0].contains("smoke/sum/100"));
    }
}
