//! Failure injection: a control that makes *random* (but seeded)
//! decisions — grants, defers, and aborts of arbitrary live transactions
//! — to fuzz the simulator's cascade/rollback machinery. Whatever the
//! control does, the simulator must preserve its invariants:
//!
//! * the run terminates (all commit, or the event budget trips);
//! * the surviving journal replays as a *valid* execution of the system;
//! * conservation arithmetic holds on the final store;
//! * `performed - undone = |surviving history|`;
//! * cascade metrics are internally consistent.

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::{ScriptOp::*, ScriptProgram, System};
use mla_model::{EntityId, Program, TxnId};
use mla_sim::control::{Control, Decision};
use mla_sim::{run, SimConfig, TxnStatus, World};
use mla_txn::{NoBreakpoints, TxnInstance};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct ChaosControl {
    rng: SmallRng,
    abort_budget: u32,
}

impl Control for ChaosControl {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        let roll: f64 = self.rng.gen();
        if roll < 0.12 && self.abort_budget > 0 {
            // Abort a random non-committed transaction (possibly the
            // requester, possibly one that is mid-flight elsewhere).
            let live: Vec<TxnId> = world
                .txns_with_status(TxnStatus::Running)
                .filter(|t| world.instance(*t).seq() > 0 || *t == txn)
                .collect();
            if let Some(&victim) = live.get(
                self.rng
                    .gen_range(0..live.len().max(1))
                    .min(live.len().saturating_sub(1)),
            ) {
                self.abort_budget -= 1;
                return Decision::Abort(vec![victim]);
            }
            Decision::Grant
        } else if roll < 0.30 {
            Decision::Defer
        } else {
            Decision::Grant
        }
    }
}

fn chain_programs(n: u32, entities: u32) -> Vec<Arc<dyn Program + Send + Sync>> {
    (0..n)
        .map(|i| {
            Arc::new(ScriptProgram::new(vec![
                Add(EntityId(i % entities), 1),
                Add(EntityId((i + 1) % entities), 2),
                Add(EntityId((i + 2) % entities), 3),
            ])) as Arc<dyn Program + Send + Sync>
        })
        .collect()
}

#[test]
fn chaos_runs_preserve_all_invariants() {
    for seed in 0..25u64 {
        let n = 8u32;
        let entities = 4u32;
        let programs = chain_programs(n, entities);
        let instances: Vec<TxnInstance> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                TxnInstance::new(TxnId(i as u32), p.clone(), Arc::new(NoBreakpoints { k: 2 }))
            })
            .collect();
        let arrivals: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
        let out = run(
            Nest::flat(n as usize),
            instances,
            [],
            &arrivals,
            &SimConfig::seeded(seed),
            &mut ChaosControl {
                rng: SmallRng::seed_from_u64(seed ^ 0xC4A0),
                abort_budget: 12,
            },
        );
        assert!(!out.metrics.timed_out, "seed {seed}: chaos run timed out");
        assert_eq!(out.metrics.committed, n as u64, "seed {seed}");

        // The surviving journal replays as a valid execution.
        let sys = System::new(
            chain_programs(n, entities)
                .into_iter()
                .map(|p| Box::new(ArcAdapter(p)) as Box<dyn Program + Send + Sync>)
                .collect(),
            [],
        );
        sys.validate(&out.execution)
            .unwrap_or_else(|e| panic!("seed {seed}: invalid surviving history: {e}"));
        assert!(sys.is_complete(&out.execution), "seed {seed}");

        // Conservation: each committed transaction contributed +6 total.
        let total: i64 = (0..entities).map(|e| out.store.value(EntityId(e))).sum();
        assert_eq!(total, n as i64 * 6, "seed {seed}");

        // Accounting: performed - undone = surviving steps.
        assert_eq!(
            out.metrics.steps_performed - out.metrics.steps_undone,
            out.execution.len() as u64,
            "seed {seed}"
        );
        assert_eq!(
            out.metrics.steps_undone,
            out.store.undone_count(),
            "seed {seed}"
        );
        // Cascade events sum to at least the abort count... each abort
        // event recorded one cascade whose size counts every rolled-back
        // transaction.
        assert_eq!(
            out.metrics.cascade_sizes.iter().sum::<usize>() as u64,
            out.metrics.aborts,
            "seed {seed}: cascade sizes must sum to total aborts"
        );
    }
}

/// Adapter because `System` wants `Box` while the test shares `Arc`s.
struct ArcAdapter(Arc<dyn Program + Send + Sync>);

impl Program for ArcAdapter {
    fn start(&self) -> mla_model::LocalState {
        self.0.start()
    }

    fn next_entity(&self, state: &mla_model::LocalState) -> Option<EntityId> {
        self.0.next_entity(state)
    }

    fn apply(
        &self,
        state: &mla_model::LocalState,
        observed: mla_model::Value,
    ) -> (mla_model::LocalState, mla_model::Value) {
        self.0.apply(state, observed)
    }
}

#[test]
fn chaos_with_heavy_abort_budget_still_terminates() {
    let n = 6u32;
    let programs = chain_programs(n, 3);
    let instances: Vec<TxnInstance> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            TxnInstance::new(TxnId(i as u32), p.clone(), Arc::new(NoBreakpoints { k: 2 }))
        })
        .collect();
    let out = run(
        Nest::flat(n as usize),
        instances,
        [],
        &vec![0; n as usize],
        &SimConfig::seeded(7),
        &mut ChaosControl {
            rng: SmallRng::seed_from_u64(999),
            abort_budget: 40,
        },
    );
    assert!(!out.metrics.timed_out);
    assert_eq!(out.metrics.committed, n as u64);
    assert!(out.metrics.aborts > 0, "the chaos must actually have fired");
}
