//! Discrete-event simulator for the migrating-transaction model (§6).
//!
//! The paper evaluates concurrency controls in the model of \[RSL\]:
//! entities reside at processors in a network; a transaction *migrates* —
//! a message `(p, t, s)` travels to the processor owning the entity `t`
//! accesses from state `s`, the processor performs the step, and a new
//! message carries the successor state onwards. "The total order of the
//! execution is determined by real clock time."
//!
//! This crate reproduces that world as a deterministic, seeded
//! discrete-event simulation:
//!
//! * processors with FIFO service (one step at a time, configurable
//!   service time);
//! * configurable message latency with seeded jitter;
//! * a [`Control`] trait — the concurrency control plugged into every
//!   processor, deciding per arriving step: [`Decision::Grant`],
//!   [`Decision::Defer`] (retry after a backoff), or
//!   [`Decision::Abort`] (victims are rolled back with full cascade and
//!   restarted);
//! * cascading rollback via the store journal, **including through
//!   already-committed transactions** — the paper explicitly notes
//!   multilevel atomicity admits unbounded rollback chains and makes
//!   commit-point determination hard; the simulator measures exactly
//!   that ([`Metrics::commit_rollbacks`], [`Metrics::cascade_sizes`]);
//! * full metrics (throughput, latency, aborts, defers, undone work) and
//!   the final [`mla_model::Execution`] for post-hoc Theorem 2 checking.
//!
//! See `mla-cc` for the controls themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod metrics;
pub mod sim;
pub mod world;

pub use config::SimConfig;
pub use control::{Control, Decision};
pub use metrics::Metrics;
pub use sim::{run, SimOutcome};
pub use world::{TxnStatus, World};
