//! The concurrency-control interface plugged into every processor.

use mla_core::{EngineCounters, ParallelStats};
use mla_model::TxnId;
use mla_storage::StepRecord;

use crate::world::World;

/// What a control tells the processor to do with an arriving step
/// request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Perform the step now.
    Grant,
    /// Hold the request; the simulator retries after
    /// [`crate::SimConfig::retry_delay`].
    Defer,
    /// Roll back the named transactions (the simulator expands the set
    /// with every transaction reached by the undo cascade), restart them
    /// after a backoff, and retry the requesting step afterwards (unless
    /// the requester itself was a victim).
    Abort(Vec<TxnId>),
}

/// A §6 concurrency control: decides step admission, observes performed
/// steps, commits, and rollbacks. One control instance serves the whole
/// simulated network (the paper's controls are described globally; a
/// distributed implementation would replicate the same state — modelling
/// that replication's cost is outside this reproduction's scope and
/// noted in DESIGN.md).
pub trait Control {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// A step request of `txn` (for `world.instance(txn).next_entity()`)
    /// has reached its entity's processor. Decide its fate.
    fn decide(&mut self, txn: TxnId, world: &World) -> Decision;

    /// `record` was just performed.
    fn performed(&mut self, record: &StepRecord, world: &World) {
        let _ = (record, world);
    }

    /// `txn` performed its last step and is now (tentatively) committed.
    fn committed(&mut self, txn: TxnId, world: &World) {
        let _ = (txn, world);
    }

    /// `txn` was rolled back (as victim or cascade member) and will
    /// restart. Its journal records are already undone.
    fn aborted(&mut self, txn: TxnId, world: &World) {
        let _ = (txn, world);
    }

    /// The control's closure decision-cost counters, if it maintains an
    /// incremental closure engine. The simulator merges the result into
    /// [`crate::Metrics::decision_cost`] at the end of the run; classical
    /// controls keep the default `None`.
    fn decision_cost(&self) -> Option<EngineCounters> {
        None
    }

    /// Per-shard decision-cost counters, one entry per closure-engine
    /// shard, for controls running a sharded backend. The simulator
    /// records the vector in [`crate::Metrics::shard_cost`] and reports
    /// their *sum* as [`crate::Metrics::decision_cost`] — a single
    /// shard's counters must never masquerade as the run total.
    /// Unsharded and classical controls keep the default empty vector.
    fn shard_decision_cost(&self) -> Vec<EngineCounters> {
        Vec::new()
    }

    /// Worker-pool occupancy and barrier statistics, for controls
    /// running a thread-parallel closure backend. The simulator records
    /// the value in [`crate::Metrics::parallel`] at the end of the run;
    /// serial and classical controls keep the default `None`.
    fn parallel_stats(&self) -> Option<ParallelStats> {
        None
    }

    /// Decisions granted on a static-certificate fast path without
    /// consulting a closure engine (controls holding an `mla-lint`
    /// `StaticCert`). The simulator records the count in
    /// [`crate::Metrics::certified_skips`] at the end of the run;
    /// uncertified and classical controls keep the default 0.
    fn certified_skips(&self) -> u64 {
        0
    }

    /// Fast-path grants split per universe (top-level nest class), for
    /// controls holding a per-universe certificate lattice. Recorded in
    /// [`crate::Metrics::certified_skips_per_universe`]; empty for
    /// controls without a certificate.
    fn certified_skips_per_universe(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Universes re-armed after an off-footprint void once the foreign
    /// transactions blamed drained (`MlaPrevent`'s re-arm protocol).
    /// Recorded in [`crate::Metrics::cert_re_arms`].
    fn cert_re_arms(&self) -> u64 {
        0
    }
}

/// The trivial control: grants everything. Produces arbitrary
/// interleavings — the "unconstrained" extreme of §1. Useful as a
/// baseline and for exercising the simulator itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreeForAll;

impl Control for FreeForAll {
    fn name(&self) -> &'static str {
        "free-for-all"
    }

    fn decide(&mut self, _txn: TxnId, _world: &World) -> Decision {
        Decision::Grant
    }
}
