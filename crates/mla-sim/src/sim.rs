//! The event loop: migrating transactions over processors, with
//! cascading rollback.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use mla_core::nest::Nest;
use mla_model::{EntityId, Execution, TxnId, Value};
use mla_storage::{StepRecord, Store};
use mla_txn::TxnInstance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::control::{Control, Decision};
use crate::metrics::Metrics;
use crate::world::{TxnStatus, World};

/// The result of a simulation run.
pub struct SimOutcome {
    /// Collected metrics.
    pub metrics: Metrics,
    /// The final (surviving) execution, for post-hoc Theorem 2 checking.
    pub execution: Execution,
    /// Final entity values.
    pub store: Store,
    /// Per-transaction attempt counts at the end of the run.
    pub attempts: Vec<u32>,
}

/// An event: transaction `txn`'s `attempt`-th incarnation requests its
/// next step at `time`. Ordered by time, then insertion sequence.
type Event = Reverse<(u64, u64, u32, u32)>;

/// Runs the simulation to completion (all transactions committed) or
/// until the event budget is exhausted.
///
/// * `nest` — the k-nest over `instances` (dense `TxnId`s).
/// * `instances` — one runtime transaction per id.
/// * `initial_values` — entity initial values (absent = 0).
/// * `arrivals` — injection time per transaction (index = id).
/// * `control` — the concurrency control under test.
pub fn run(
    nest: Nest,
    instances: Vec<TxnInstance>,
    initial_values: impl IntoIterator<Item = (EntityId, Value)>,
    arrivals: &[u64],
    config: &SimConfig,
    control: &mut dyn Control,
) -> SimOutcome {
    assert_eq!(
        instances.len(),
        arrivals.len(),
        "one arrival time per transaction"
    );
    assert!(
        nest.txn_count() >= instances.len(),
        "nest must cover every transaction"
    );
    let n = instances.len();
    let mut world = World {
        store: Store::new(initial_values),
        instances,
        status: vec![TxnStatus::Running; n],
        nest,
        clock: 0,
        metrics: Metrics::default(),
    };
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut queue: BinaryHeap<Event> = BinaryHeap::new();
    let mut event_seq: u64 = 0;
    let mut busy_until = vec![0u64; config.processors.max(1)];
    let mut committed_at: Vec<Option<u64>> = vec![None; n];

    let push = |queue: &mut BinaryHeap<Event>, seq: &mut u64, time: u64, txn: u32, attempt: u32| {
        queue.push(Reverse((time, *seq, txn, attempt)));
        *seq += 1;
    };

    for (i, &at) in arrivals.iter().enumerate() {
        // Empty transactions commit instantly at injection.
        if world.instances[i].is_finished() {
            world.status[i] = TxnStatus::Committed;
            committed_at[i] = Some(at);
            world.metrics.committed += 1;
        } else {
            push(&mut queue, &mut event_seq, at, i as u32, 1);
        }
    }

    let mut events_processed: u64 = 0;
    while let Some(Reverse((time, _, txn_raw, attempt))) = queue.pop() {
        if world.metrics.committed as usize == n {
            break;
        }
        events_processed += 1;
        if events_processed > config.max_events {
            world.metrics.timed_out = true;
            break;
        }
        let txn = TxnId(txn_raw);
        let ti = txn.index();
        // Stale events: the transaction was rolled back (attempt bumped)
        // or committed since this event was scheduled.
        if world.instances[ti].attempts() != attempt
            || world.status[ti] == TxnStatus::Committed
            || world.instances[ti].is_finished()
        {
            continue;
        }
        world.status[ti] = TxnStatus::Running;
        let entity = world.instances[ti]
            .next_entity()
            .expect("running transaction has a next entity");
        let proc = entity.index() % busy_until.len();
        if busy_until[proc] > time {
            // Processor busy: the message waits in its queue.
            push(
                &mut queue,
                &mut event_seq,
                busy_until[proc],
                txn_raw,
                attempt,
            );
            continue;
        }
        world.clock = time;

        match control.decide(txn, &world) {
            Decision::Grant => {
                // Only granted steps (and rollback work) occupy the
                // processor: a deferred request is a scheduler-queue
                // check, not service — charging it service time lets
                // waiting polls starve the actual work at scale.
                busy_until[proc] = time + config.step_service;
                let observed = world.current_value(entity);
                let step = world.instances[ti].perform(observed);
                let record = world.store.perform(txn, step.seq, entity, |_| step.wrote);
                debug_assert_eq!(record.observed, observed);
                world.metrics.steps_performed += 1;
                control.performed(&record, &world);
                if world.instances[ti].is_finished() {
                    world.status[ti] = TxnStatus::Committed;
                    committed_at[ti] = Some(time + config.step_service);
                    world.metrics.committed += 1;
                    control.committed(txn, &world);
                } else {
                    let next_entity = world.instances[ti]
                        .next_entity()
                        .expect("unfinished transaction continues");
                    let next_proc = next_entity.index() % busy_until.len();
                    let latency = if next_proc == proc {
                        config.latency_local
                    } else {
                        config.latency_base
                            + if config.latency_jitter > 0 {
                                rng.gen_range(0..=config.latency_jitter)
                            } else {
                                0
                            }
                    };
                    push(
                        &mut queue,
                        &mut event_seq,
                        time + config.step_service + latency,
                        txn_raw,
                        attempt,
                    );
                }
            }
            Decision::Defer => {
                world.metrics.defers += 1;
                push(
                    &mut queue,
                    &mut event_seq,
                    time + config.step_service + config.retry_delay,
                    txn_raw,
                    attempt,
                );
            }
            Decision::Abort(victims) => {
                busy_until[proc] = time + config.step_service;
                let requested: BTreeSet<TxnId> = victims.into_iter().collect();
                assert!(
                    !requested.is_empty(),
                    "control must name at least one victim"
                );
                let expanded = expand_cascade(&world.store, requested.clone());
                let undo = collect_undo(&world.store, &expanded);
                world.metrics.steps_undone += undo.len() as u64;
                world
                    .store
                    .undo(&undo)
                    .expect("cascade-expanded undo set is always consistent");
                world.metrics.cascade_sizes.push(expanded.len());
                for &v in &expanded {
                    let vi = v.index();
                    world.metrics.aborts += 1;
                    if !requested.contains(&v) {
                        world.metrics.cascade_aborts += 1;
                    }
                    if world.status[vi] == TxnStatus::Committed {
                        world.metrics.commit_rollbacks += 1;
                        world.metrics.committed -= 1;
                        committed_at[vi] = None;
                    }
                    world.status[vi] = TxnStatus::Restarting;
                    world.instances[vi].reset();
                    control.aborted(v, &world);
                    let attempts = world.instances[vi].attempts();
                    let backoff = config.restart_base
                        * (1u64 << (attempts.saturating_sub(1)).min(5) as u64)
                        + if config.restart_base > 0 {
                            rng.gen_range(0..=config.restart_base)
                        } else {
                            0
                        };
                    push(
                        &mut queue,
                        &mut event_seq,
                        time + config.step_service + backoff,
                        v.0,
                        attempts,
                    );
                }
                if !expanded.contains(&txn) {
                    // Requester retries once the victims are out of the way.
                    push(
                        &mut queue,
                        &mut event_seq,
                        time + config.step_service + config.retry_delay,
                        txn_raw,
                        attempt,
                    );
                }
            }
        }
    }

    world.metrics.makespan = world.clock;
    world.metrics.shard_cost = control.shard_decision_cost();
    world.metrics.parallel = control.parallel_stats();
    world.metrics.certified_skips = control.certified_skips();
    world.metrics.certified_skips_per_universe = control.certified_skips_per_universe();
    world.metrics.cert_re_arms = control.cert_re_arms();
    // A sharded control's run total is the sum over its shards; taking
    // any single engine's counters here would under-report the run.
    world.metrics.decision_cost = if world.metrics.shard_cost.is_empty() {
        control.decision_cost().unwrap_or_default()
    } else {
        world.metrics.summed_shard_cost()
    };
    world.metrics.commit_latencies = committed_at
        .iter()
        .zip(arrivals)
        .filter_map(|(c, &a)| c.map(|c| c.saturating_sub(a)))
        .collect();
    SimOutcome {
        execution: world.store.execution(),
        attempts: world.instances.iter().map(|i| i.attempts()).collect(),
        metrics: world.metrics,
        store: world.store,
    }
}

/// Expands a victim set with every transaction the undo cascade reaches:
/// undoing a *value-changing* record invalidates every later live record
/// on the same entity (writers built on the dirty value; readers observed
/// it), whose transactions must then be fully rolled back too. A victim's
/// pure reads are removed without cascading — they never influenced what
/// anyone else saw.
fn expand_cascade(store: &Store, mut victims: BTreeSet<TxnId>) -> BTreeSet<TxnId> {
    loop {
        // Earliest value-changing victim record per entity.
        let mut entity_min: HashMap<EntityId, u64> = HashMap::new();
        for r in store.journal() {
            if victims.contains(&r.txn) && r.wrote != r.observed {
                entity_min
                    .entry(r.entity)
                    .and_modify(|m| *m = (*m).min(r.id))
                    .or_insert(r.id);
            }
        }
        let mut changed = false;
        for r in store.journal() {
            if let Some(&min_id) = entity_min.get(&r.entity) {
                if r.id > min_id && victims.insert(r.txn) {
                    changed = true;
                }
            }
        }
        if !changed {
            return victims;
        }
    }
}

/// All live records of the victims, in reverse performance order — the
/// order [`Store::undo`] requires.
fn collect_undo(store: &Store, victims: &BTreeSet<TxnId>) -> Vec<StepRecord> {
    let mut records: Vec<StepRecord> = store
        .journal()
        .iter()
        .copied()
        .filter(|r| victims.contains(&r.txn))
        .collect();
    records.sort_unstable_by_key(|r| Reverse(r.id));
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::FreeForAll;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_txn::NoBreakpoints;
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    fn transfer(from: u32, to: u32, amount: Value) -> Arc<ScriptProgram> {
        Arc::new(ScriptProgram::new(vec![
            Add(e(from), -amount),
            Add(e(to), amount),
        ]))
    }

    fn instances(programs: Vec<Arc<ScriptProgram>>, k: usize) -> Vec<TxnInstance> {
        programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| TxnInstance::new(TxnId(i as u32), p, Arc::new(NoBreakpoints { k })))
            .collect()
    }

    #[test]
    fn free_for_all_completes_and_conserves_money() {
        let programs = vec![transfer(0, 1, 10), transfer(1, 2, 5), transfer(2, 0, 3)];
        let nest = Nest::flat(3);
        let out = run(
            nest,
            instances(programs, 2),
            [(e(0), 100), (e(1), 100), (e(2), 100)],
            &[0, 0, 0],
            &SimConfig::seeded(1),
            &mut FreeForAll,
        );
        assert_eq!(out.metrics.committed, 3);
        assert!(!out.metrics.timed_out);
        assert_eq!(out.metrics.steps_performed, 6);
        assert_eq!(out.metrics.aborts, 0);
        let total: Value = (0..3).map(|i| out.store.value(e(i))).sum();
        assert_eq!(total, 300, "transfers conserve money");
        assert_eq!(out.execution.len(), 6);
        assert_eq!(out.metrics.commit_latencies.len(), 3);
        assert!(out.metrics.makespan > 0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mk = || {
            let programs = vec![transfer(0, 1, 10), transfer(1, 0, 5), transfer(0, 1, 2)];
            run(
                Nest::flat(3),
                instances(programs, 2),
                [(e(0), 50), (e(1), 50)],
                &[0, 3, 6],
                &SimConfig::seeded(99),
                &mut FreeForAll,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.execution, b.execution);
        assert_eq!(a.metrics.makespan, b.metrics.makespan);
    }

    #[test]
    fn different_seeds_can_differ() {
        // Not guaranteed for every pair, but these seeds produce different
        // jitter and hence different interleavings for racing transfers.
        let mk = |seed| {
            let programs = vec![transfer(0, 1, 1), transfer(1, 0, 1), transfer(0, 1, 1)];
            run(
                Nest::flat(3),
                instances(programs, 2),
                [(e(0), 9), (e(1), 9)],
                &[0, 0, 0],
                &SimConfig::seeded(seed),
                &mut FreeForAll,
            )
            .metrics
            .makespan
        };
        let spans: std::collections::HashSet<u64> = (0..8).map(mk).collect();
        assert!(spans.len() > 1, "jitter should vary makespans");
    }

    /// A control that aborts the *other* transaction the first time it is
    /// asked about t1's second step, to exercise the cascade machinery.
    struct AbortOnce {
        fired: bool,
    }

    impl Control for AbortOnce {
        fn name(&self) -> &'static str {
            "abort-once"
        }

        fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
            if !self.fired && txn == TxnId(1) && world.instance(txn).seq() == 1 {
                self.fired = true;
                return Decision::Abort(vec![TxnId(0)]);
            }
            Decision::Grant
        }
    }

    #[test]
    fn abort_rolls_back_and_restarts() {
        // Both transactions hit entity 0 first, so aborting t0 after t1
        // also touched e0 cascades into t1.
        let programs = vec![transfer(0, 1, 10), transfer(0, 2, 5)];
        let out = run(
            Nest::flat(2),
            instances(programs, 2),
            [(e(0), 100)],
            &[0, 2],
            &SimConfig::seeded(7),
            &mut AbortOnce { fired: false },
        );
        assert_eq!(out.metrics.committed, 2, "both eventually commit");
        assert!(out.metrics.aborts >= 1);
        assert!(out.metrics.steps_undone >= 1);
        assert!(!out.metrics.timed_out);
        // Money conserved despite rollback.
        let total = out.store.value(e(0)) + out.store.value(e(1)) + out.store.value(e(2));
        assert_eq!(total, 100);
        // The final execution replays cleanly.
        assert!(out.execution.len() >= 4);
        assert!(out.attempts.iter().any(|&a| a > 1));
    }

    #[test]
    fn cascade_expansion_reaches_dependents() {
        let mut store = Store::new([]);
        store.perform(TxnId(0), 0, e(0), |_| 1);
        store.perform(TxnId(1), 0, e(0), |_| 2);
        store.perform(TxnId(1), 1, e(1), |_| 3);
        store.perform(TxnId(2), 0, e(1), |_| 4);
        let victims = expand_cascade(&store, [TxnId(0)].into_iter().collect());
        assert_eq!(
            victims.iter().copied().collect::<Vec<_>>(),
            vec![TxnId(0), TxnId(1), TxnId(2)],
            "t0's entity feeds t1 which feeds t2"
        );
        let undo = collect_undo(&store, &victims);
        assert_eq!(undo.len(), 4);
        assert!(undo.windows(2).all(|w| w[0].id > w[1].id));
        store.undo(&undo).expect("cascade order is undoable");
    }

    #[test]
    fn cascade_stops_at_independent_txns() {
        let mut store = Store::new([]);
        store.perform(TxnId(0), 0, e(0), |_| 1);
        store.perform(TxnId(1), 0, e(5), |_| 2); // untouched by t0
        let victims = expand_cascade(&store, [TxnId(0)].into_iter().collect());
        assert_eq!(victims.len(), 1);
    }

    #[test]
    fn empty_transaction_commits_immediately() {
        let programs = vec![Arc::new(ScriptProgram::new(vec![]))];
        let out = run(
            Nest::flat(1),
            instances(programs, 2),
            [],
            &[5],
            &SimConfig::seeded(3),
            &mut FreeForAll,
        );
        assert_eq!(out.metrics.committed, 1);
        assert_eq!(out.metrics.steps_performed, 0);
    }

    #[test]
    fn staggered_arrivals_respected() {
        let programs = vec![transfer(0, 1, 1), transfer(2, 3, 1)];
        let out = run(
            Nest::flat(2),
            instances(programs, 2),
            [(e(0), 10), (e(2), 10)],
            &[0, 1000],
            &SimConfig::seeded(11),
            &mut FreeForAll,
        );
        // Second transaction cannot commit before its injection.
        assert!(out.metrics.makespan >= 1000);
        assert_eq!(out.metrics.committed, 2);
    }

    #[test]
    fn processor_serialization_orders_same_entity_steps() {
        // Many transactions hammering one entity: the journal must be a
        // valid value chain (each observed equals predecessor's wrote).
        let programs: Vec<Arc<ScriptProgram>> = (0..10)
            .map(|_| Arc::new(ScriptProgram::new(vec![Add(e(0), 1)])))
            .collect();
        let out = run(
            Nest::flat(10),
            instances(programs, 2),
            [],
            &[0; 10],
            &SimConfig::seeded(5),
            &mut FreeForAll,
        );
        assert_eq!(out.store.value(e(0)), 10);
        let mut prev = 0;
        for s in out.execution.steps() {
            assert_eq!(s.observed, prev);
            prev = s.wrote;
        }
    }
}
