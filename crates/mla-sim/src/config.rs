//! Simulation parameters.

/// Configuration of the simulated network and scheduling environment.
/// All times are in abstract ticks.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of processors; entity `x` lives on processor `x mod p`.
    pub processors: usize,
    /// Message latency between distinct processors.
    pub latency_base: u64,
    /// Extra uniform latency in `0..=jitter` (seeded).
    pub latency_jitter: u64,
    /// Latency when source and destination processor coincide.
    pub latency_local: u64,
    /// Processor service time per step (also consumed by a deferred
    /// request — polling a lock costs real work).
    pub step_service: u64,
    /// Delay before a deferred request retries.
    pub retry_delay: u64,
    /// Base restart delay after an abort; doubles per attempt (capped)
    /// plus seeded jitter, to break livelock symmetry.
    pub restart_base: u64,
    /// Hard event budget; exceeding it flags the run as timed out.
    pub max_events: u64,
    /// RNG seed (latency jitter, backoff jitter).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            processors: 4,
            latency_base: 10,
            latency_jitter: 4,
            latency_local: 1,
            step_service: 1,
            retry_delay: 8,
            restart_base: 25,
            max_events: 5_000_000,
            seed: 0xD1CE,
        }
    }
}

impl SimConfig {
    /// A config with the given seed, other parameters default.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.processors > 0);
        assert!(c.max_events > 1000);
        assert!(c.latency_base >= c.latency_local);
    }

    #[test]
    fn seeded_overrides_only_seed() {
        let c = SimConfig::seeded(42);
        assert_eq!(c.seed, 42);
        assert_eq!(c.processors, SimConfig::default().processors);
    }
}
