//! The shared simulation state visible to concurrency controls.

use mla_core::nest::Nest;
use mla_model::{EntityId, Step, TxnId, Value};
use mla_storage::{StepSource, Store};
use mla_txn::TxnInstance;

use crate::metrics::Metrics;

/// Lifecycle state of a transaction in the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    /// Injected and migrating/performing.
    Running,
    /// All steps performed; tentatively committed. May still be undone by
    /// a cascading rollback (the §6 commit hazard) until the run ends.
    Committed,
    /// Rolled back, waiting for its restart event.
    Restarting,
}

/// Everything a [`crate::Control`] may inspect when making decisions:
/// the store (values + live journal), the transaction instances (program
/// position, breakpoint state), the nest, the clock, and the metrics so
/// far.
pub struct World {
    /// The entity store and journal.
    pub store: Store,
    /// One instance per transaction, indexed by `TxnId`.
    pub instances: Vec<TxnInstance>,
    /// Per-transaction lifecycle status.
    pub status: Vec<TxnStatus>,
    /// The k-nest relating the transactions.
    pub nest: Nest,
    /// Current simulated time.
    pub clock: u64,
    /// Metrics accumulated so far.
    pub metrics: Metrics,
}

impl World {
    /// `level(a, b)` from the nest.
    pub fn level(&self, a: TxnId, b: TxnId) -> usize {
        self.nest.level(a, b)
    }

    /// The current value of `e`, read through the storage trait — the
    /// same [`StepSource`] surface `mla-serve`'s MVCC store presents, so
    /// controls written against the world read storage identically in
    /// both hosts.
    pub fn current_value(&self, e: EntityId) -> Value {
        StepSource::current_value(&self.store, e)
    }

    /// The live history in performance order, through the storage trait.
    pub fn live_steps(&self) -> Vec<Step> {
        StepSource::live_steps(&self.store)
    }

    /// The instance of `t`.
    pub fn instance(&self, t: TxnId) -> &TxnInstance {
        &self.instances[t.index()]
    }

    /// Transactions currently in the given status.
    pub fn txns_with_status(&self, s: TxnStatus) -> impl Iterator<Item = TxnId> + '_ {
        self.status
            .iter()
            .enumerate()
            .filter(move |(_, &st)| st == s)
            .map(|(i, _)| TxnId(i as u32))
    }

    /// Number of transactions in the simulation.
    pub fn txn_count(&self) -> usize {
        self.instances.len()
    }
}
