//! Run metrics: the quantities the E-series experiments report.

use mla_core::{EngineCounters, ParallelStats};

/// Counters and samples collected over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Transactions committed (and still committed at the end).
    pub committed: u64,
    /// Abort events (each transaction rollback counts once, including
    /// cascade members and re-aborts of restarted transactions).
    pub aborts: u64,
    /// Transactions aborted as cascade members rather than direct
    /// victims.
    pub cascade_aborts: u64,
    /// Rollbacks that hit an already-committed transaction — the §6
    /// commit-point hazard made measurable.
    pub commit_rollbacks: u64,
    /// Size (total transactions undone) of each cascading rollback event.
    pub cascade_sizes: Vec<usize>,
    /// Steps performed (including ones later undone).
    pub steps_performed: u64,
    /// Steps undone by rollbacks.
    pub steps_undone: u64,
    /// Requests deferred (lock waits / breakpoint waits).
    pub defers: u64,
    /// Commit latency samples: ticks from injection to (final) commit.
    pub commit_latencies: Vec<u64>,
    /// Simulated time at which the run ended.
    pub makespan: u64,
    /// Whether the run exhausted its event budget before finishing.
    pub timed_out: bool,
    /// Closure decision-cost counters reported by the control at the end
    /// of the run (all zeros for controls that do not maintain an
    /// incremental closure engine). For sharded controls this is always
    /// the **sum** over [`shard_cost`](Self::shard_cost), never a single
    /// shard's counters.
    pub decision_cost: EngineCounters,
    /// Per-shard decision-cost counters for controls running a sharded
    /// closure backend (empty otherwise). Each entry includes the work
    /// of any engines that shard group absorbed by coalescing, so the
    /// entries always sum to the whole run's closure work.
    pub shard_cost: Vec<EngineCounters>,
    /// Worker-pool occupancy and barrier statistics for controls running
    /// a thread-parallel closure backend (`None` otherwise). Wall-clock
    /// quantities — deliberately excluded from determinism comparisons,
    /// unlike every other field.
    pub parallel: Option<ParallelStats>,
    /// Decisions granted on a static-certificate fast path, skipping
    /// closure maintenance entirely (0 for controls without an
    /// `mla-lint` `StaticCert`).
    pub certified_skips: u64,
    /// The same fast-path grants split per universe (top-level nest
    /// class), indexed by the certificate lattice's universe ids; empty
    /// without a per-universe certificate.
    pub certified_skips_per_universe: Vec<u64>,
    /// Universes re-armed after an off-footprint void, once every
    /// blamed foreign transaction drained from the live window.
    pub cert_re_arms: u64,
}

impl Metrics {
    /// Committed transactions per 1000 ticks.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.committed as f64 * 1000.0 / self.makespan as f64
    }

    /// Mean commit latency in ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.commit_latencies.is_empty() {
            return 0.0;
        }
        self.commit_latencies.iter().sum::<u64>() as f64 / self.commit_latencies.len() as f64
    }

    /// The `p`-th percentile commit latency (0.0 ..= 1.0).
    pub fn latency_percentile(&self, p: f64) -> u64 {
        if self.commit_latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.commit_latencies.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Aborts per committed transaction.
    pub fn abort_ratio(&self) -> f64 {
        if self.committed == 0 {
            return self.aborts as f64;
        }
        self.aborts as f64 / self.committed as f64
    }

    /// Largest cascade observed.
    pub fn max_cascade(&self) -> usize {
        self.cascade_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of performed steps that were wasted (undone).
    pub fn wasted_work(&self) -> f64 {
        if self.steps_performed == 0 {
            return 0.0;
        }
        self.steps_undone as f64 / self.steps_performed as f64
    }

    /// Mean closure rows processed per decision — the per-decision work
    /// measure the incremental engine is judged by (0 when the control
    /// reported no engine counters).
    pub fn rows_per_decision(&self) -> f64 {
        if self.decision_cost.steps_applied == 0 {
            return 0.0;
        }
        self.decision_cost.rows_touched as f64 / self.decision_cost.steps_applied as f64
    }

    /// The sum of the per-shard counters — what
    /// [`decision_cost`](Self::decision_cost) is set to when the control
    /// reports a sharded backend.
    pub fn summed_shard_cost(&self) -> EngineCounters {
        self.shard_cost.iter().copied().sum()
    }

    /// Per-worker occupancy of the parallel backend's pool (empty for
    /// serial runs).
    pub fn worker_occupancy(&self) -> Vec<f64> {
        self.parallel
            .as_ref()
            .map(|s| s.occupancy())
            .unwrap_or_default()
    }

    /// Coalescing barriers the parallel backend took (0 for serial
    /// runs).
    pub fn barrier_stalls(&self) -> u64 {
        self.parallel
            .as_ref()
            .map(|s| s.barrier_stalls)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_latency() {
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            commit_latencies: vec![10, 20, 30, 40],
            ..Metrics::default()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
        assert!((m.mean_latency() - 25.0).abs() < 1e-9);
        assert_eq!(m.latency_percentile(0.0), 10);
        assert_eq!(m.latency_percentile(1.0), 40);
        assert_eq!(m.latency_percentile(0.5), 30);
    }

    #[test]
    fn degenerate_cases() {
        let m = Metrics::default();
        assert_eq!(m.throughput_per_kilotick(), 0.0);
        assert_eq!(m.mean_latency(), 0.0);
        assert_eq!(m.latency_percentile(0.5), 0);
        assert_eq!(m.max_cascade(), 0);
        assert_eq!(m.wasted_work(), 0.0);
    }

    #[test]
    fn shard_cost_aggregates_by_field_wise_sum() {
        // Pin the aggregation rule: the reported decision cost for a
        // sharded run is the field-wise sum over every shard's counters,
        // not any single shard's.
        let a = EngineCounters {
            steps_applied: 1,
            edges_inserted: 2,
            rows_touched: 3,
            rebuilds: 4,
            rollbacks: 5,
        };
        let b = EngineCounters {
            steps_applied: 10,
            edges_inserted: 20,
            rows_touched: 30,
            rebuilds: 40,
            rollbacks: 50,
        };
        let c = EngineCounters {
            steps_applied: 100,
            edges_inserted: 200,
            rows_touched: 300,
            rebuilds: 400,
            rollbacks: 500,
        };
        let m = Metrics {
            shard_cost: vec![a, b, c],
            ..Metrics::default()
        };
        let total = m.summed_shard_cost();
        assert_eq!(
            total,
            EngineCounters {
                steps_applied: 111,
                edges_inserted: 222,
                rows_touched: 333,
                rebuilds: 444,
                rollbacks: 555,
            }
        );
        assert_ne!(total, a, "a single shard must not stand in for the run");
        let empty = Metrics::default();
        assert_eq!(empty.summed_shard_cost(), EngineCounters::default());
    }

    #[test]
    fn ratios() {
        let m = Metrics {
            committed: 4,
            aborts: 2,
            steps_performed: 100,
            steps_undone: 25,
            cascade_sizes: vec![1, 3, 2],
            ..Metrics::default()
        };
        assert!((m.abort_ratio() - 0.5).abs() < 1e-9);
        assert!((m.wasted_work() - 0.25).abs() < 1e-9);
        assert_eq!(m.max_cascade(), 3);
    }
}
