//! Fully synthetic workloads: the sweep axes of E1–E3, E5, and E8.
//!
//! Everything is a parameter: nest depth and per-level fanout,
//! transaction count and length, entity-pool size and Zipf skew, and —
//! the crossover axis of E8 — per-level breakpoint *densities*. Density
//! 0 everywhere degenerates to serializability; density 1 at level 2
//! degenerates to unconstrained interleaving within the root class.

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::{ScriptOp, ScriptProgram};
use mla_model::{EntityId, Program, Step};
use mla_txn::RuntimeBreakpoints;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::util::{hash01, Zipf};
use crate::Workload;

/// Parameters of the synthetic workload.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of transactions.
    pub txns: usize,
    /// Nest depth (>= 2).
    pub k: usize,
    /// Class fanout at each mid level (length `k - 2`): how many classes
    /// each level-`i` class splits into at level `i + 1`.
    pub fanout: Vec<usize>,
    /// Steps per transaction: uniform in `len_min ..= len_max`.
    pub len_min: usize,
    /// See `len_min`.
    pub len_max: usize,
    /// Entity pool size.
    pub entities: usize,
    /// Zipf skew of entity selection (0 = uniform).
    pub zipf_theta: f64,
    /// Breakpoint density per mid level (length `k - 2`): probability
    /// that a given position carries a breakpoint of that level.
    /// Densities are cumulative-monotone: the effective density at level
    /// `i` is the max over levels `2 ..= i` (deeper levels break at least
    /// as often, as refinement requires).
    pub densities: Vec<f64>,
    /// Ticks between injections.
    pub arrival_spacing: u64,
    /// Generation seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            txns: 16,
            k: 3,
            fanout: vec![2],
            len_min: 3,
            len_max: 6,
            entities: 16,
            zipf_theta: 0.5,
            densities: vec![0.5],
            arrival_spacing: 3,
            seed: 0x5EED,
        }
    }
}

/// Density-controlled breakpoints: position `p` of transaction `salt`
/// carries a breakpoint of minimum level `l` iff `hash(salt, p)` falls
/// under level `l`'s effective density but not under any shallower
/// level's. One hash draw per position keeps the levels nested.
#[derive(Clone, Debug)]
pub struct DensityBreakpoints {
    /// Nest depth.
    pub k: usize,
    /// Effective (monotone nondecreasing) densities for levels `2..k`.
    pub densities: Vec<f64>,
    /// Per-transaction hash salt.
    pub salt: u64,
}

impl DensityBreakpoints {
    /// Builds the structure, making densities monotone nondecreasing.
    pub fn new(k: usize, raw: &[f64], salt: u64) -> Self {
        assert_eq!(raw.len(), k.saturating_sub(2), "one density per mid level");
        let mut densities = Vec::with_capacity(raw.len());
        let mut running: f64 = 0.0;
        for &d in raw {
            running = running.max(d.clamp(0.0, 1.0));
            densities.push(running);
        }
        DensityBreakpoints { k, densities, salt }
    }
}

impl RuntimeBreakpoints for DensityBreakpoints {
    fn k(&self) -> usize {
        self.k
    }

    fn min_level_after(&self, prefix: &[Step]) -> Option<usize> {
        if prefix.is_empty() {
            return None;
        }
        let h = hash01(self.salt, prefix.len() as u64);
        self.densities
            .iter()
            .position(|&d| h < d)
            .map(|idx| idx + 2)
    }
}

/// The generated synthetic workload.
pub struct Synthetic {
    /// The runnable workload.
    pub workload: Workload,
    /// The generating configuration.
    pub config: SyntheticConfig,
}

/// Generates a synthetic workload.
pub fn generate(config: SyntheticConfig) -> Synthetic {
    assert!(config.k >= 2, "k >= 2");
    assert_eq!(config.fanout.len(), config.k - 2, "fanout per mid level");
    assert_eq!(
        config.densities.len(),
        config.k - 2,
        "density per mid level"
    );
    assert!(config.len_min >= 1 && config.len_min <= config.len_max);
    assert!(config.entities > 0);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.entities, config.zipf_theta);

    let mut programs: Vec<Arc<dyn Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();

    for i in 0..config.txns {
        let len = rng.gen_range(config.len_min..=config.len_max);
        let ops: Vec<ScriptOp> = (0..len)
            .map(|_| ScriptOp::Add(EntityId(zipf.sample(&mut rng) as u32), 1))
            .collect();
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(Arc::new(DensityBreakpoints::new(
            config.k,
            &config.densities,
            config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )));
        paths.push(
            config
                .fanout
                .iter()
                .map(|&f| rng.gen_range(0..f.max(1)) as u32)
                .collect(),
        );
    }

    let nest = Nest::new(config.k, paths).expect("paths sized to k-2");
    let arrivals: Vec<u64> = (0..config.txns as u64)
        .map(|i| i * config.arrival_spacing)
        .collect();

    Synthetic {
        workload: Workload {
            name: format!(
                "synthetic(n={},k={},d={:?})",
                config.txns, config.k, config.densities
            ),
            nest,
            programs,
            breakpoints,
            initial: Vec::new(),
            arrivals,
        },
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::TxnId;

    fn dummy_steps(n: usize) -> Vec<Step> {
        (0..n)
            .map(|i| Step {
                txn: TxnId(0),
                seq: i as u32,
                entity: EntityId(0),
                observed: 0,
                wrote: 0,
            })
            .collect()
    }

    #[test]
    fn density_zero_means_atomic() {
        let bp = DensityBreakpoints::new(4, &[0.0, 0.0], 9);
        let steps = dummy_steps(10);
        for p in 1..10 {
            assert_eq!(bp.min_level_after(&steps[..p]), None);
        }
    }

    #[test]
    fn density_one_breaks_everywhere() {
        let bp = DensityBreakpoints::new(4, &[1.0, 1.0], 9);
        let steps = dummy_steps(10);
        for p in 1..10 {
            assert_eq!(bp.min_level_after(&steps[..p]), Some(2));
        }
    }

    #[test]
    fn densities_made_monotone() {
        // Raw densities decrease; effective must not.
        let bp = DensityBreakpoints::new(5, &[0.8, 0.2, 0.5], 1);
        assert_eq!(bp.densities, vec![0.8, 0.8, 0.8]);
    }

    #[test]
    fn mid_density_hits_roughly_the_right_rate() {
        let bp = DensityBreakpoints::new(3, &[0.3], 777);
        let steps = dummy_steps(10_000);
        let mut hits = 0;
        for p in 1..10_000 {
            if bp.min_level_after(&steps[..p]).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / 9999.0;
        assert!(
            (0.25..0.35).contains(&rate),
            "density 0.3 should land near 0.3, got {rate}"
        );
    }

    #[test]
    fn breakpoints_are_prefix_deterministic() {
        let bp = DensityBreakpoints::new(3, &[0.5], 42);
        let steps = dummy_steps(6);
        let a = bp.min_level_after(&steps[..3]);
        let b = bp.min_level_after(&steps[..3]);
        assert_eq!(a, b);
    }

    #[test]
    fn generation_shape_and_determinism() {
        let cfg = SyntheticConfig {
            txns: 10,
            k: 4,
            fanout: vec![3, 2],
            densities: vec![0.2, 0.7],
            ..SyntheticConfig::default()
        };
        let a = generate(cfg.clone());
        let b = generate(cfg);
        assert_eq!(a.workload.nest, b.workload.nest);
        assert_eq!(a.workload.txn_count(), 10);
        assert_eq!(a.workload.nest.k(), 4);
        // Lengths within bounds.
        let sys = a.workload.system();
        let exec = sys
            .run_serial(&(0..10u32).map(TxnId).collect::<Vec<_>>())
            .unwrap();
        for t in 0..10u32 {
            let len = exec.txn_steps(TxnId(t)).len();
            assert!((a.config.len_min..=a.config.len_max).contains(&len));
        }
    }

    #[test]
    fn k2_needs_no_mid_config() {
        let s = generate(SyntheticConfig {
            k: 2,
            fanout: vec![],
            densities: vec![],
            ..SyntheticConfig::default()
        });
        assert_eq!(s.workload.nest.k(), 2);
        let spec = s.workload.spec();
        let _ = spec;
    }
}
