//! Workload generators for the experiments: the paper's two running
//! applications and a fully synthetic nest.
//!
//! * [`banking`] — §2 Application 1: families of accounts, conditional
//!   transfer transactions (withdraw from several accounts until the
//!   target amount is gathered — the paper's branching example), bank
//!   audits (atomic with respect to everything), and per-family credit
//!   audits, under the paper's 4-nest.
//! * [`cad`] — §2 Application 2: Utopian Planning's plan database with
//!   specialties, teams, modification transactions, and public-relations
//!   snapshots, under the §4.2 5-nest.
//! * [`synthetic`] — parameterized nests (depth, fanout), transaction
//!   length, Zipf-skewed entity selection, and per-level breakpoint
//!   densities: the sweep axes of experiments E1–E3, E5, E8.
//! * [`partitioned`] — independent entity universes with long-lived
//!   scanners pinning each universe's live window: the A5 stress case
//!   for the entity-sharded closure engine.
//! * [`mixed`] — one 4-nest whose universes each carry a *different*
//!   k-level of interleaving freedom (atomic / subgroup-only / whole
//!   universe): the MLA analogue of mixed isolation levels.
//!
//! Every generator produces a [`Workload`]: nest + programs + runtime
//! breakpoints + initial values + arrival times, from which fresh
//! simulator instances, an offline [`System`], and a [`RuntimeSpec`] can
//! all be derived. Generation is fully determined by the config's seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banking;
pub mod banking_escrow;
pub mod cad;
pub mod mixed;
pub mod partitioned;
pub mod synthetic;
pub mod util;

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::System;
use mla_model::{EntityId, LocalState, Program, TxnId, Value};
use mla_txn::{RuntimeBreakpoints, RuntimeSpec, TxnInstance, TxnProfile};

/// A complete generated workload.
pub struct Workload {
    /// Human-readable label.
    pub name: String,
    /// The k-nest over the transactions.
    pub nest: Nest,
    /// One program per transaction.
    pub programs: Vec<Arc<dyn Program + Send + Sync>>,
    /// One runtime breakpoint structure per transaction.
    pub breakpoints: Vec<Arc<dyn RuntimeBreakpoints>>,
    /// Entity initial values.
    pub initial: Vec<(EntityId, Value)>,
    /// Injection time per transaction.
    pub arrivals: Vec<u64>,
}

impl Workload {
    /// Number of transactions.
    pub fn txn_count(&self) -> usize {
        self.programs.len()
    }

    /// Fresh simulator instances (consumable; call again for a rerun).
    pub fn instances(&self) -> Vec<TxnInstance> {
        self.programs
            .iter()
            .zip(&self.breakpoints)
            .enumerate()
            .map(|(i, (p, b))| TxnInstance::new(TxnId(i as u32), p.clone(), b.clone()))
            .collect()
    }

    /// Declared transaction profiles — what a service front-end consumes
    /// (each mints fresh instances per attempt). Footprints come from the
    /// programs' static step lists where available, falling back to a
    /// per-run probe of the branching programs' entity universe via
    /// [`Program::may_footprint`]; programs describing neither get an
    /// empty declared footprint, which simply declares nothing (no latch
    /// span, never certificate-covered).
    pub fn profiles(&self) -> Vec<TxnProfile> {
        self.programs
            .iter()
            .zip(&self.breakpoints)
            .enumerate()
            .map(|(i, (p, b))| {
                let t = TxnId(i as u32);
                let footprint = p
                    .step_entities()
                    .or_else(|| p.may_footprint())
                    .unwrap_or_default();
                TxnProfile::new(
                    t,
                    p.clone(),
                    b.clone(),
                    footprint,
                    self.nest.path(t).to_vec(),
                )
            })
            .collect()
    }

    /// The offline breakpoint specification matching the instances.
    pub fn spec(&self) -> RuntimeSpec {
        let mut spec = RuntimeSpec::new(self.nest.k());
        for (i, b) in self.breakpoints.iter().enumerate() {
            spec.insert(TxnId(i as u32), b.clone());
        }
        spec
    }

    /// The offline [`System`] (for schedule-driven generation and
    /// validation).
    pub fn system(&self) -> System {
        System::new(
            self.programs
                .iter()
                .map(|p| Box::new(ArcProgram(p.clone())) as Box<dyn Program + Send + Sync>)
                .collect(),
            self.initial.iter().copied(),
        )
    }
}

/// Adapter: share an `Arc`'d program where a `Box` is required.
struct ArcProgram(Arc<dyn Program + Send + Sync>);

impl Program for ArcProgram {
    fn start(&self) -> LocalState {
        self.0.start()
    }

    fn next_entity(&self, state: &LocalState) -> Option<EntityId> {
        self.0.next_entity(state)
    }

    fn apply(&self, state: &LocalState, observed: Value) -> (LocalState, Value) {
        self.0.apply(state, observed)
    }

    fn step_entities(&self) -> Option<Vec<EntityId>> {
        self.0.step_entities()
    }

    fn may_footprint(&self) -> Option<Vec<EntityId>> {
        self.0.may_footprint()
    }
}
