//! The partitioned "scanner" workload: experiment A5's stress case for
//! the sharded closure engine.
//!
//! `partitions` independent universes of entities, with entity ids
//! chosen so that universe `p` is exactly the residue class `p mod
//! partitions` — a shard-count that divides `partitions` therefore never
//! coalesces shard groups, while a larger one splits universes and
//! exercises the coalescing path.
//!
//! Each universe runs:
//!
//! * one long-lived **scanner**: an atomic (no-breakpoint) transaction
//!   whose first step touches the universe's shared entity and whose
//!   remaining steps walk private entities, sized to outlive the whole
//!   universe's traffic. Because the scanner is atomic, every
//!   transaction ordered after its shared-entity step keeps a
//!   closure pair *into the scanner's ever-growing segment*, so the
//!   scanner pins its universe's whole history in the live window — the
//!   §6 commit-point hazard made into a cost stressor;
//! * `txns_per_partition` **short transactions**, each touching the
//!   shared entity then a private one, with a mid-transaction phase
//!   breakpoint.
//!
//! The conflict structure is a forward chain per universe (scanner
//! first, then the short transactions in shared-entity order), so every
//! run is cycle-free: all controls grant every step and histories are
//! identical whatever the backend — which is what lets A5 assert
//! byte-identical histories across shard counts while the *cost* of
//! deciding scales with the window each backend actually scans.

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::{ScriptOp, ScriptProgram};
use mla_model::{EntityId, Step, TxnId};
use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints};

use crate::Workload;

/// Parameters of the partitioned scanner workload.
#[derive(Clone, Debug)]
pub struct PartitionedConfig {
    /// Independent entity universes (and π(2) classes).
    pub partitions: usize,
    /// Short transactions per universe.
    pub txns_per_partition: usize,
    /// Steps of each universe's scanner (size it to outlive the short
    /// transactions: roughly `txns_per_partition` at the default
    /// spacing).
    pub scanner_len: usize,
    /// Ticks between short-transaction injections.
    pub arrival_spacing: u64,
}

impl Default for PartitionedConfig {
    fn default() -> Self {
        PartitionedConfig {
            partitions: 4,
            txns_per_partition: 60,
            scanner_len: 60,
            arrival_spacing: 2,
        }
    }
}

/// The generated partitioned workload.
pub struct Partitioned {
    /// The runnable workload.
    pub workload: Workload,
    /// The generating configuration.
    pub config: PartitionedConfig,
}

/// Generates the workload. Construction is deterministic (no seed):
/// transaction ids place the scanners first (`TxnId(p)` for universe
/// `p`), then the short transactions round-robin across universes in
/// arrival order.
pub fn generate(config: PartitionedConfig) -> Partitioned {
    let k = 3;
    let p_count = config.partitions;
    let t_count = config.txns_per_partition;
    assert!(p_count >= 1, "at least one partition");
    assert!(config.scanner_len >= 1, "scanners need at least one step");
    // Universe p owns the residue class p mod p_count: its shared entity
    // is p itself; private entities take the higher multiples.
    let shared = |p: usize| EntityId(p as u32);
    let short_private = |p: usize, round: usize| EntityId(((1 + round) * p_count + p) as u32);
    let scanner_private = |p: usize, i: usize| EntityId(((1 + t_count + i) * p_count + p) as u32);

    let mut programs: Vec<Arc<dyn mla_model::Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut arrivals: Vec<u64> = Vec::new();

    // Scanners: TxnId(0..p_count), injected at time 0.
    for p in 0..p_count {
        let mut ops = vec![ScriptOp::Add(shared(p), 1)];
        for i in 1..config.scanner_len {
            ops.push(ScriptOp::Add(scanner_private(p, i), 1));
        }
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(Arc::new(NoBreakpoints { k }));
        paths.push(vec![p as u32]);
        arrivals.push(0);
    }
    // Short transactions, round-robin across universes.
    for round in 0..t_count {
        for p in 0..p_count {
            programs.push(Arc::new(ScriptProgram::new(vec![
                ScriptOp::Add(shared(p), 1),
                ScriptOp::Add(short_private(p, round), 1),
            ])));
            breakpoints.push(Arc::new(PhaseTable::new(k, [(1, 2)])));
            paths.push(vec![p as u32]);
            arrivals.push((1 + round * p_count + p) as u64 * config.arrival_spacing);
        }
    }

    let nest = Nest::new(k, paths).expect("one non-empty path per transaction");
    let initial = (0..p_count).map(|p| (shared(p), 0)).collect();
    let name = format!(
        "partitioned(p={p_count},t={t_count},l={})",
        config.scanner_len
    );
    Partitioned {
        workload: Workload {
            name,
            nest,
            programs,
            breakpoints,
            initial,
            arrivals,
        },
        config,
    }
}

/// The workload's canonical decision stream: one step per transaction
/// per pass, transactions in id order, until every script is exhausted —
/// the offer order a round-robin scheduler would produce. Each
/// universe's shared entity sees its scanner first and then the short
/// transactions in ascending id order within the very first pass, so
/// the conflict structure is the same forward chain the simulator
/// produces and **every offer is grantable**. This is the replay input
/// for experiment A6: backends decide the identical stream and their
/// wall-clock is compared directly, without simulator overhead between
/// decisions.
pub fn decision_stream(config: &PartitionedConfig) -> Vec<Step> {
    let p_count = config.partitions;
    let t_count = config.txns_per_partition;
    let shared = |p: usize| EntityId(p as u32);
    let short_private = |p: usize, round: usize| EntityId(((1 + round) * p_count + p) as u32);
    let scanner_private = |p: usize, i: usize| EntityId(((1 + t_count + i) * p_count + p) as u32);

    // Entity scripts, indexed by transaction id (scanners first — the
    // same numbering as `generate`).
    let mut scripts: Vec<Vec<EntityId>> = Vec::new();
    for p in 0..p_count {
        let mut script = vec![shared(p)];
        for i in 1..config.scanner_len {
            script.push(scanner_private(p, i));
        }
        scripts.push(script);
    }
    for round in 0..t_count {
        for p in 0..p_count {
            scripts.push(vec![shared(p), short_private(p, round)]);
        }
    }

    let mut next = vec![0usize; scripts.len()];
    let mut out = Vec::new();
    loop {
        let mut progressed = false;
        for (t, script) in scripts.iter().enumerate() {
            if next[t] < script.len() {
                out.push(Step {
                    txn: TxnId(t as u32),
                    seq: next[t] as u32,
                    entity: script[next[t]],
                    observed: 0,
                    wrote: 0,
                });
                next[t] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::Program;

    fn entities_of(p: &(dyn Program + Send + Sync)) -> Vec<EntityId> {
        let mut out = Vec::new();
        let mut state = p.start();
        while let Some(e) = p.next_entity(&state) {
            out.push(e);
            state = p.apply(&state, 0).0;
        }
        out
    }

    #[test]
    fn entity_residues_match_partitions() {
        let cfg = PartitionedConfig {
            partitions: 4,
            txns_per_partition: 3,
            scanner_len: 5,
            arrival_spacing: 2,
        };
        let generated = generate(cfg);
        let wl = &generated.workload;
        assert_eq!(wl.txn_count(), 4 + 4 * 3);
        // Every entity a universe-p transaction touches is ≡ p (mod 4),
        // and each transaction opens on its universe's shared entity.
        for (i, prog) in wl.programs.iter().enumerate() {
            let p = if i < 4 { i } else { (i - 4) % 4 };
            let touched = entities_of(prog.as_ref());
            assert_eq!(touched[0], EntityId(p as u32), "txn {i}");
            for e in &touched {
                assert_eq!(e.0 as usize % 4, p, "txn {i}");
            }
        }
    }

    #[test]
    fn decision_stream_matches_scripts_and_is_grantable() {
        let cfg = PartitionedConfig {
            partitions: 4,
            txns_per_partition: 3,
            scanner_len: 5,
            arrival_spacing: 2,
        };
        let generated = generate(cfg.clone());
        let wl = &generated.workload;
        let stream = decision_stream(&cfg);
        // One step per script position, seqs contiguous per transaction.
        let total: usize = wl
            .programs
            .iter()
            .map(|p| entities_of(p.as_ref()).len())
            .sum();
        assert_eq!(stream.len(), total);
        for (t, prog) in wl.programs.iter().enumerate() {
            let script = entities_of(prog.as_ref());
            let steps: Vec<&Step> = stream.iter().filter(|s| s.txn.0 as usize == t).collect();
            assert_eq!(steps.len(), script.len());
            for (i, s) in steps.iter().enumerate() {
                assert_eq!(s.seq as usize, i);
                assert_eq!(s.entity, script[i]);
            }
        }
        // Every offer grants: replay through the batch oracle backend.
        let mut backend = mla_core::EngineBackend::unsharded(wl.nest.clone(), wl.spec());
        for verdict in backend.decide_batch(&stream) {
            assert!(verdict.is_ok(), "the stream must be conflict-chain shaped");
        }
        assert_eq!(backend.execution().steps(), stream.as_slice());
    }

    #[test]
    fn scanners_arrive_first_and_privates_are_unique() {
        let generated = generate(PartitionedConfig::default());
        let wl = &generated.workload;
        for p in 0..4 {
            assert_eq!(wl.arrivals[p], 0);
        }
        assert!(*wl.arrivals.iter().max().unwrap() > 0);
        // No two transactions share a private entity (everything after
        // a program's opening shared-entity step).
        let mut privates = std::collections::HashSet::new();
        for prog in &wl.programs {
            for e in entities_of(prog.as_ref()).into_iter().skip(1) {
                assert!(privates.insert(e), "private entity reused");
            }
        }
    }
}
