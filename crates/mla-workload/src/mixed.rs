//! The mixed-isolation workload: one nest whose universes each carry a
//! *different* k-level of interleaving freedom.
//!
//! This is the MLA analogue of running transactions at mixed isolation
//! levels in one database. The nest is a 4-nest — universe, then
//! subgroup — and every transaction of universe `u` follows path
//! `[u, t mod 2]`. What varies per universe is the breakpoint degree:
//!
//! * [`IsolationDegree::Atomic`] — no breakpoints: the universe's
//!   transactions are serializable against everything;
//! * [`IsolationDegree::Classmates`] — level-3 breakpoints between
//!   steps: only subgroup-mates (level-3 related) may weave inside;
//! * [`IsolationDegree::Free`] — level-2 breakpoints: any
//!   same-universe transaction may weave inside.
//!
//! Universes are entity-disjoint (universe `u` owns residue class
//! `u mod universes`, the partitioned-workload convention, so shard
//! splits line up), and every transaction opens and closes on its
//! universe's shared entity with a private step in between — enough
//! conflict structure that the degrees actually bite: free universes
//! admit weaves the atomic ones deny.

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::{ScriptOp, ScriptProgram};
use mla_model::EntityId;
use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints};

use crate::Workload;

/// How much interleaving a universe's transactions admit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsolationDegree {
    /// No breakpoints: atomic with respect to everything.
    Atomic,
    /// Level-3 breakpoints: subgroup-mates may weave inside.
    Classmates,
    /// Level-2 breakpoints: the whole universe may weave inside.
    Free,
}

impl IsolationDegree {
    /// The degree cycle universes are assigned from.
    pub const ALL: [IsolationDegree; 3] = [
        IsolationDegree::Free,
        IsolationDegree::Atomic,
        IsolationDegree::Classmates,
    ];

    fn breakpoints(self, k: usize, len: usize) -> Arc<dyn RuntimeBreakpoints> {
        match self {
            IsolationDegree::Atomic => Arc::new(NoBreakpoints { k }),
            IsolationDegree::Classmates => Arc::new(PhaseTable::new(k, (1..len).map(|p| (p, 3)))),
            IsolationDegree::Free => Arc::new(PhaseTable::new(k, (1..len).map(|p| (p, 2)))),
        }
    }
}

/// Parameters of the mixed-isolation workload.
#[derive(Clone, Debug)]
pub struct MixedConfig {
    /// Entity-disjoint universes; universe `u` gets degree
    /// `IsolationDegree::ALL[u % 3]`.
    pub universes: usize,
    /// Transactions per universe, split into two subgroups.
    pub txns_per_universe: usize,
    /// Ticks between transaction injections.
    pub arrival_spacing: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            universes: 3,
            txns_per_universe: 4,
            arrival_spacing: 2,
        }
    }
}

/// The generated mixed-isolation workload.
pub struct Mixed {
    /// The runnable workload.
    pub workload: Workload,
    /// The generating configuration.
    pub config: MixedConfig,
    /// The degree each universe was assigned.
    pub degrees: Vec<IsolationDegree>,
}

/// Generates the workload. Construction is deterministic: transactions
/// are laid out universe-major (`TxnId(u * txns_per_universe + j)`),
/// each running shared → private → shared within its universe's entity
/// residue class.
pub fn generate(config: MixedConfig) -> Mixed {
    let k = 4;
    let u_count = config.universes;
    let t_count = config.txns_per_universe;
    assert!(u_count >= 1, "at least one universe");
    assert!(t_count >= 1, "at least one transaction per universe");

    let shared = |u: usize| EntityId(u as u32);
    let private = |u: usize, j: usize| EntityId(((1 + j) * u_count + u) as u32);

    let degrees: Vec<IsolationDegree> = (0..u_count)
        .map(|u| IsolationDegree::ALL[u % IsolationDegree::ALL.len()])
        .collect();

    let mut programs: Vec<Arc<dyn mla_model::Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut arrivals: Vec<u64> = Vec::new();

    for (u, degree) in degrees.iter().enumerate() {
        for j in 0..t_count {
            let ops = vec![
                ScriptOp::Add(shared(u), 1),
                ScriptOp::Add(private(u, j), 1),
                ScriptOp::Add(shared(u), 1),
            ];
            programs.push(Arc::new(ScriptProgram::new(ops.clone())));
            breakpoints.push(degree.breakpoints(k, ops.len()));
            paths.push(vec![u as u32, (j % 2) as u32]);
            arrivals.push((u * t_count + j) as u64 * config.arrival_spacing);
        }
    }

    let nest = Nest::new(k, paths).expect("paths have depth k-2");
    let initial = (0..u_count).map(|u| (shared(u), 0)).collect();
    let name = format!("mixed(u={u_count},t={t_count})");
    Mixed {
        workload: Workload {
            name,
            nest,
            programs,
            breakpoints,
            initial,
            arrivals,
        },
        config,
        degrees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::TxnId;

    #[test]
    fn degrees_cycle_and_entities_stay_in_residue_class() {
        let cfg = MixedConfig {
            universes: 4,
            txns_per_universe: 3,
            arrival_spacing: 2,
        };
        let mixed = generate(cfg);
        assert_eq!(
            mixed.degrees,
            vec![
                IsolationDegree::Free,
                IsolationDegree::Atomic,
                IsolationDegree::Classmates,
                IsolationDegree::Free,
            ]
        );
        let wl = &mixed.workload;
        assert_eq!(wl.txn_count(), 12);
        assert_eq!(wl.nest.k(), 4);
        for (i, prog) in wl.programs.iter().enumerate() {
            let u = i / 3;
            let entities = prog.step_entities().expect("scripted program");
            assert_eq!(entities.len(), 3);
            assert_eq!(entities[0], EntityId(u as u32));
            assert_eq!(entities[2], EntityId(u as u32));
            for e in &entities {
                assert_eq!(e.0 as usize % 4, u, "txn {i} strayed from its universe");
            }
            assert_eq!(
                wl.nest.path(TxnId(i as u32)),
                &[u as u32, (i % 3 % 2) as u32]
            );
        }
    }

    #[test]
    fn same_subgroup_transactions_relate_at_level_three() {
        let mixed = generate(MixedConfig::default());
        let nest = &mixed.workload.nest;
        // txns 0 and 2 share universe 0 subgroup 0; 0 and 1 differ in
        // subgroup; 0 and 4 differ in universe.
        assert_eq!(nest.level(TxnId(0), TxnId(2)), 3);
        assert_eq!(nest.level(TxnId(0), TxnId(1)), 2);
        assert_eq!(nest.level(TxnId(0), TxnId(4)), 1);
    }
}
