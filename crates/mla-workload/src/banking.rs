//! The Big Bucks Bank (§2, Application 1; §4.2–4.3 examples).
//!
//! * Accounts are grouped into **families** sharing control.
//! * **Transfer** transactions are the paper's conditional programs: a
//!   customer tries to gather a target amount from several of the
//!   family's accounts in sequence, stopping early once the amount is
//!   reached, then deposits the gathered money across target accounts.
//!   The number of withdrawal steps therefore depends on the balances
//!   *observed at run time*.
//! * **Bank audits** read every account and must be atomic with respect
//!   to everything ("the audit would miss counting the money in
//!   transit", §1).
//! * **Credit audits** read one family's accounts and relate to customer
//!   transactions at level 2 — they may interleave with transfers at the
//!   withdraw/deposit phase boundary.
//!
//! The 4-nest (§4.2): `π(2)` groups customers and creditors together and
//! isolates each bank audit; `π(3)` groups customer transactions of a
//! common family (and isolates each credit audit); transfers carry a
//! level-2 breakpoint exactly between the withdrawal and deposit phases
//! and level-3 breakpoints everywhere.

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::{ScriptOp, ScriptProgram};
use mla_model::{EntityId, LocalState, Program, Step, TxnId, Value};
use mla_txn::{NoBreakpoints, RuntimeBreakpoints};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::util::Zipf;
use crate::Workload;

/// Parameters of the banking workload.
#[derive(Clone, Debug)]
pub struct BankingConfig {
    /// Number of families.
    pub families: usize,
    /// Accounts per family.
    pub accounts_per_family: usize,
    /// Number of transfer transactions.
    pub transfers: usize,
    /// Fraction of transfers staying within the originating family.
    pub intra_family_ratio: f64,
    /// Number of whole-bank audit transactions.
    pub bank_audits: usize,
    /// Number of per-family credit audit transactions.
    pub credit_audits: usize,
    /// Amount each transfer tries to move.
    pub amount: Value,
    /// Initial balance per account.
    pub initial_balance: Value,
    /// Zipf skew for account selection within a family (0 = uniform).
    pub zipf_theta: f64,
    /// Minimum withdrawal sources per transfer.
    pub sources_min: usize,
    /// Maximum withdrawal sources per transfer (clamped to the family
    /// size).
    pub sources_max: usize,
    /// Ticks between transaction injections.
    pub arrival_spacing: u64,
    /// Generation seed.
    pub seed: u64,
}

impl Default for BankingConfig {
    fn default() -> Self {
        BankingConfig {
            families: 4,
            accounts_per_family: 4,
            transfers: 16,
            intra_family_ratio: 0.5,
            bank_audits: 1,
            credit_audits: 2,
            amount: 100,
            initial_balance: 120,
            zipf_theta: 0.6,
            sources_min: 1,
            sources_max: 3,
            arrival_spacing: 5,
            seed: 0xBA2C,
        }
    }
}

/// The generated banking workload plus its bookkeeping.
pub struct Banking {
    /// The runnable workload.
    pub workload: Workload,
    /// All account entities.
    pub accounts: Vec<EntityId>,
    /// Transfer transaction ids.
    pub transfers: Vec<TxnId>,
    /// Bank audit transaction ids.
    pub bank_audits: Vec<TxnId>,
    /// Credit audit transaction ids (paired with their family).
    pub credit_audits: Vec<(TxnId, usize)>,
    /// The generating configuration.
    pub config: BankingConfig,
}

impl Banking {
    /// The accounts of family `f`.
    pub fn family_accounts(&self, f: usize) -> Vec<EntityId> {
        let a = self.config.accounts_per_family;
        (0..a).map(|j| EntityId((f * a + j) as u32)).collect()
    }

    /// Total money initially in the bank.
    pub fn total_money(&self) -> Value {
        self.accounts.len() as Value * self.config.initial_balance
    }
}

/// The conditional transfer program of §4.3: withdraw from `sources` in
/// order until `amount` is gathered (taking whatever partial balances
/// allow), then deposit the gathered total across `targets` (half to each
/// non-final target, remainder to the last).
///
/// Registers: `r0` = amount still needed, `r1` = gathered-but-undeposited.
/// `pc < sources.len()` indexes the withdrawal phase; afterwards
/// `pc - sources.len()` indexes the deposit phase. Gathering zero (all
/// sources empty) skips the deposit phase entirely.
#[derive(Clone, Debug)]
pub struct TransferProgram {
    /// Accounts withdrawn from, in order.
    pub sources: Vec<EntityId>,
    /// Accounts deposited to, in order.
    pub targets: Vec<EntityId>,
    /// The amount the transfer tries to move.
    pub amount: Value,
}

impl Program for TransferProgram {
    fn start(&self) -> LocalState {
        LocalState {
            pc: 0,
            regs: vec![self.amount, 0],
        }
    }

    fn next_entity(&self, state: &LocalState) -> Option<EntityId> {
        let pc = state.pc as usize;
        if pc < self.sources.len() {
            return Some(self.sources[pc]);
        }
        let d = pc - self.sources.len();
        if d < self.targets.len() && state.regs[1] > 0 {
            return Some(self.targets[d]);
        }
        None
    }

    fn apply(&self, state: &LocalState, observed: Value) -> (LocalState, Value) {
        let mut next = state.clone();
        let pc = state.pc as usize;
        if pc < self.sources.len() {
            let needed = state.regs[0];
            let take = observed.max(0).min(needed);
            next.regs[0] -= take;
            next.regs[1] += take;
            next.pc = if next.regs[0] == 0 {
                self.sources.len() as u32 // early exit: amount gathered
            } else {
                state.pc + 1
            };
            (next, observed - take)
        } else {
            let d = pc - self.sources.len();
            let remaining = state.regs[1];
            let dep = if d + 1 == self.targets.len() {
                remaining
            } else {
                remaining / 2
            };
            next.regs[1] -= dep;
            next.pc = state.pc + 1;
            (next, observed + dep)
        }
    }

    fn may_footprint(&self) -> Option<Vec<EntityId>> {
        // The step *sequence* is value-dependent (early exit, skipped
        // deposits), but the entity universe is fixed: some prefix of the
        // sources then some prefix of the targets, each at most once
        // (generation keeps sources and targets disjoint and distinct).
        let mut all: Vec<EntityId> = self
            .sources
            .iter()
            .chain(self.targets.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        (all.len() == self.sources.len() + self.targets.len()).then_some(all)
    }
}

/// Runtime breakpoints for a transfer: a level-2 breakpoint exactly at
/// the (run-dependent!) boundary between the withdrawal and deposit
/// phases, level-3 breakpoints everywhere else. Prefix-determined: the
/// boundary is recomputed from the observed/written values in the prefix,
/// so the §6 compatibility condition holds even though different runs
/// place the boundary at different positions.
#[derive(Clone, Debug)]
pub struct TransferBreakpoints {
    /// The transfer's source accounts (to recognize withdrawal steps).
    pub sources: Vec<EntityId>,
    /// The transfer's target amount.
    pub amount: Value,
}

impl RuntimeBreakpoints for TransferBreakpoints {
    fn k(&self) -> usize {
        4
    }

    fn min_level_after(&self, prefix: &[Step]) -> Option<usize> {
        let last = prefix.last()?;
        let withdrawals = prefix
            .iter()
            .filter(|s| self.sources.contains(&s.entity))
            .count();
        let gathered: Value = prefix
            .iter()
            .filter(|s| self.sources.contains(&s.entity))
            .map(|s| s.observed - s.wrote)
            .sum();
        let boundary = self.sources.contains(&last.entity)
            && withdrawals == prefix.len() // still purely in phase one
            && (gathered >= self.amount || withdrawals == self.sources.len());
        if boundary {
            Some(2)
        } else {
            Some(3)
        }
    }

    fn uniform_guarantee(&self) -> Option<usize> {
        // Every run answers Some(2) or Some(3) after every step: level 3
        // (and deeper) breaks everywhere, whatever the values did to the
        // phase boundary's position.
        Some(3)
    }
}

/// Generates the banking workload.
pub fn generate(config: BankingConfig) -> Banking {
    assert!(config.families > 0 && config.accounts_per_family > 0);
    assert!(
        config.credit_audits == 0 || config.families > 0,
        "credit audits need families"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.accounts_per_family, config.zipf_theta);
    let account = |f: usize, j: usize| EntityId((f * config.accounts_per_family + j) as u32);
    let accounts: Vec<EntityId> = (0..config.families)
        .flat_map(|f| (0..config.accounts_per_family).map(move |j| (f, j)))
        .map(|(f, j)| account(f, j))
        .collect();

    let mut programs: Vec<Arc<dyn Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut transfers = Vec::new();
    let mut bank_audits = Vec::new();
    let mut credit_audits = Vec::new();

    // Level-3 class keys: families 0..F for customers; F + f for the
    // credit audit of family f; a fresh key per bank audit.
    let f_count = config.families as u32;

    for _ in 0..config.transfers {
        let origin = rng.gen_range(0..config.families);
        let intra = rng.gen_bool(config.intra_family_ratio.clamp(0.0, 1.0));
        let dest_family = if intra || config.families == 1 {
            origin
        } else {
            // A different family, uniformly.
            let mut g = rng.gen_range(0..config.families - 1);
            if g >= origin {
                g += 1;
            }
            g
        };
        let n_sources = rng
            .gen_range(config.sources_min.max(1)..=config.sources_max.max(config.sources_min))
            .min(config.accounts_per_family);
        let mut sources = Vec::new();
        while sources.len() < n_sources {
            let j = zipf.sample(&mut rng);
            let e = account(origin, j);
            if !sources.contains(&e) {
                sources.push(e);
            }
        }
        // 1-2 distinct targets from the destination family, disjoint from
        // the sources.
        let n_targets = rng.gen_range(1..=2usize).min(
            config
                .accounts_per_family
                .saturating_sub(if dest_family == origin { n_sources } else { 0 })
                .max(1),
        );
        let mut targets = Vec::new();
        let mut guard = 0;
        while targets.len() < n_targets && guard < 1000 {
            guard += 1;
            let j = zipf.sample(&mut rng);
            let e = account(dest_family, j);
            if !targets.contains(&e) && !sources.contains(&e) {
                targets.push(e);
            }
        }
        if targets.is_empty() {
            // Degenerate tiny configuration: fall back to any non-source
            // account in the bank.
            let e = accounts
                .iter()
                .copied()
                .find(|e| !sources.contains(e))
                .unwrap_or(accounts[0]);
            targets.push(e);
        }
        let t = TxnId(programs.len() as u32);
        programs.push(Arc::new(TransferProgram {
            sources: sources.clone(),
            targets,
            amount: config.amount,
        }));
        breakpoints.push(Arc::new(TransferBreakpoints {
            sources,
            amount: config.amount,
        }));
        paths.push(vec![0, origin as u32]);
        transfers.push(t);
    }

    for i in 0..config.credit_audits {
        let f = i % config.families;
        let ops: Vec<ScriptOp> = (0..config.accounts_per_family)
            .map(|j| ScriptOp::Accumulate(account(f, j)))
            .collect();
        let t = TxnId(programs.len() as u32);
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(Arc::new(NoBreakpoints { k: 4 }));
        paths.push(vec![0, f_count + f as u32]);
        credit_audits.push((t, f));
    }

    for i in 0..config.bank_audits {
        let ops: Vec<ScriptOp> = accounts.iter().map(|&a| ScriptOp::Accumulate(a)).collect();
        let t = TxnId(programs.len() as u32);
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(Arc::new(NoBreakpoints { k: 4 }));
        paths.push(vec![1, 2 * f_count + i as u32]);
        bank_audits.push(t);
    }

    let nest = Nest::new(4, paths).expect("banking paths have length 2");
    let arrivals: Vec<u64> = (0..programs.len() as u64)
        .map(|i| i * config.arrival_spacing)
        .collect();
    let initial: Vec<(EntityId, Value)> = accounts
        .iter()
        .map(|&a| (a, config.initial_balance))
        .collect();

    Banking {
        workload: Workload {
            name: format!(
                "banking(f={},a={},t={})",
                config.families, config.accounts_per_family, config.transfers
            ),
            nest,
            programs,
            breakpoints,
            initial,
            arrivals,
        },
        accounts,
        transfers,
        bank_audits,
        credit_audits,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::TxnId;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    #[test]
    fn transfer_early_exit_on_rich_first_account() {
        let p = TransferProgram {
            sources: vec![e(0), e(1), e(2)],
            targets: vec![e(3), e(4)],
            amount: 100,
        };
        let mut state = p.start();
        // First account has plenty.
        assert_eq!(p.next_entity(&state), Some(e(0)));
        let (s1, wrote) = p.apply(&state, 500);
        assert_eq!(wrote, 400);
        state = s1;
        // Early exit: straight to deposits.
        assert_eq!(p.next_entity(&state), Some(e(3)));
        let (s2, wrote) = p.apply(&state, 10);
        assert_eq!(wrote, 60, "half of 100 deposited first");
        state = s2;
        assert_eq!(p.next_entity(&state), Some(e(4)));
        let (s3, wrote) = p.apply(&state, 0);
        assert_eq!(wrote, 50, "remainder deposited last");
        assert_eq!(p.next_entity(&s3), None);
    }

    #[test]
    fn transfer_partial_gathering() {
        let p = TransferProgram {
            sources: vec![e(0), e(1)],
            targets: vec![e(2)],
            amount: 100,
        };
        let mut state = p.start();
        let (s1, w) = p.apply(&state, 30);
        assert_eq!(w, 0, "drains the poor account");
        state = s1;
        assert_eq!(p.next_entity(&state), Some(e(1)));
        let (s2, w) = p.apply(&state, 40);
        assert_eq!(w, 0);
        state = s2;
        // Gathered 70 < 100, sources exhausted: deposit what we have.
        let (s3, w) = p.apply(&state, 5);
        assert_eq!(w, 75);
        assert_eq!(p.next_entity(&s3), None);
    }

    #[test]
    fn transfer_gathers_nothing_skips_deposits() {
        let p = TransferProgram {
            sources: vec![e(0)],
            targets: vec![e(1)],
            amount: 50,
        };
        let state = p.start();
        let (s1, w) = p.apply(&state, 0);
        assert_eq!(w, 0);
        assert_eq!(p.next_entity(&s1), None, "nothing gathered, no deposits");
    }

    #[test]
    fn breakpoint_at_run_dependent_phase_boundary() {
        let bp = TransferBreakpoints {
            sources: vec![e(0), e(1), e(2)],
            amount: 100,
        };
        let mk = |entity: u32, observed: Value, wrote: Value| Step {
            txn: TxnId(0),
            seq: 0,
            entity: e(entity),
            observed,
            wrote,
        };
        // Run A: rich first account -> boundary after one step.
        let run_a = [mk(0, 500, 400)];
        assert_eq!(bp.min_level_after(&run_a), Some(2));
        // Run B: poor first account -> still withdrawing.
        let run_b = [mk(0, 30, 0)];
        assert_eq!(bp.min_level_after(&run_b), Some(3));
        // Run B continues, second account completes the amount.
        let run_b2 = [mk(0, 30, 0), mk(1, 90, 20)];
        assert_eq!(bp.min_level_after(&run_b2), Some(2));
        // After a deposit step, only level-3 breakpoints.
        let run_b3 = [mk(0, 30, 0), mk(1, 90, 20), mk(5, 0, 50)];
        assert_eq!(bp.min_level_after(&run_b3), Some(3));
        // All sources exhausted without reaching the amount: boundary too.
        let run_c = [mk(0, 1, 0), mk(1, 2, 0), mk(2, 3, 0)];
        assert_eq!(bp.min_level_after(&run_c), Some(2));
    }

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        let a = generate(BankingConfig::default());
        let b = generate(BankingConfig::default());
        assert_eq!(a.workload.txn_count(), b.workload.txn_count());
        assert_eq!(a.workload.arrivals, b.workload.arrivals);
        assert_eq!(a.workload.nest, b.workload.nest);
        let cfg = &a.config;
        assert_eq!(
            a.workload.txn_count(),
            cfg.transfers + cfg.bank_audits + cfg.credit_audits
        );
        assert_eq!(a.accounts.len(), cfg.families * cfg.accounts_per_family);
    }

    #[test]
    fn nest_levels_match_paper_structure() {
        let b = generate(BankingConfig {
            families: 3,
            transfers: 6,
            bank_audits: 1,
            credit_audits: 1,
            ..BankingConfig::default()
        });
        let nest = &b.workload.nest;
        let audit = b.bank_audits[0];
        for &t in &b.transfers {
            assert_eq!(nest.level(t, audit), 1, "audit isolated at level 2");
        }
        let (credit, f) = b.credit_audits[0];
        for &t in &b.transfers {
            let lvl = nest.level(t, credit);
            assert_eq!(lvl, 2, "credit audits relate to customers at level 2");
            let _ = f;
        }
    }

    #[test]
    fn serial_run_conserves_money_and_audit_sees_total() {
        let b = generate(BankingConfig {
            transfers: 8,
            bank_audits: 1,
            credit_audits: 0,
            ..BankingConfig::default()
        });
        let sys = b.workload.system();
        let order: Vec<TxnId> = (0..b.workload.txn_count() as u32).map(TxnId).collect();
        let exec = sys.run_serial(&order).expect("serial run completes");
        sys.validate(&exec).expect("serial run is valid");
        // Final balances sum to the initial total.
        let mut values: std::collections::HashMap<EntityId, Value> =
            b.workload.initial.iter().copied().collect();
        for s in exec.steps() {
            values.insert(s.entity, s.wrote);
        }
        let total: Value = b.accounts.iter().map(|a| values[a]).sum();
        assert_eq!(total, b.total_money());
        // The audit's accumulated reads equal the total at its point.
        let audit = b.bank_audits[0];
        let audit_sum: Value = exec
            .steps()
            .iter()
            .filter(|s| s.txn == audit)
            .map(|s| s.observed)
            .sum();
        assert_eq!(audit_sum, b.total_money());
    }

    #[test]
    fn tiny_configs_generate() {
        let b = generate(BankingConfig {
            families: 1,
            accounts_per_family: 2,
            transfers: 3,
            bank_audits: 1,
            credit_audits: 1,
            ..BankingConfig::default()
        });
        assert_eq!(b.workload.txn_count(), 5);
        // Instances can be constructed.
        assert_eq!(b.workload.instances().len(), 5);
        let _ = b.workload.spec();
    }
}
