//! Generation utilities: Zipf sampling and deterministic position
//! hashing.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` via a precomputed CDF. θ = 0 is uniform;
/// larger θ concentrates probability on small indices (hot entities).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or θ is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws an index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A deterministic hash of `(salt, x)` mapped to `[0, 1)`. Used to place
/// density-controlled breakpoints reproducibly (independent of any RNG
/// stream consumed elsewhere).
pub fn hash01(salt: u64, x: u64) -> f64 {
    // SplitMix64 finalizer.
    let mut z = salt
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(x.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_uniform_at_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(
            (max as f64) / (min as f64) < 1.3,
            "theta=0 should be near-uniform: {counts:?}"
        );
    }

    #[test]
    fn zipf_skews_with_theta() {
        let z = Zipf::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        assert!(
            head as f64 / total as f64 > 0.6,
            "theta=1.2 should send most mass to the head ({head}/{total})"
        );
    }

    #[test]
    fn zipf_stays_in_range() {
        let z = Zipf::new(3, 0.9);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn hash01_deterministic_and_spread() {
        assert_eq!(hash01(7, 9), hash01(7, 9));
        assert_ne!(hash01(7, 9), hash01(7, 10));
        assert_ne!(hash01(7, 9), hash01(8, 9));
        let mut below = 0;
        for x in 0..10_000 {
            let h = hash01(42, x);
            assert!((0.0..1.0).contains(&h));
            if h < 0.5 {
                below += 1;
            }
        }
        assert!((4000..6000).contains(&below), "roughly balanced: {below}");
    }
}
