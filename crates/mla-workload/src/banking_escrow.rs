//! The non-blocking audit (§1's citation of \[FGL\]), expressed *through*
//! multilevel atomicity.
//!
//! The paper notes that \[FGL\]'s audit "does not stop transactions in
//! progress". The trick translates directly into this framework: make
//! the in-transit money *visible* by passing it through an **escrow**
//! entity, and give the transfer a breakpoint exactly at the moment the
//! books balance:
//!
//! ```text
//! w1 .. wk            withdraw (money invisible, "in pocket")
//! E += g              bank the pocket into escrow     <- books balance!
//! | level-2 breakpoint here |
//! E -= g              take it back out
//! d1 .. dm            deposit
//! ```
//!
//! An audit that reads all accounts *plus the escrow* and nests with
//! transfers at level 2 — instead of level 1 as the blocking audit does —
//! may then interleave at exactly those balanced points, observing the
//! true total without ever delaying a transfer for long or being
//! delayed by one. No new machinery is needed: the k-nest and the
//! breakpoint specification already say everything.

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::{ScriptOp, ScriptProgram};
use mla_model::{EntityId, LocalState, Program, Step, TxnId, Value};
use mla_txn::RuntimeBreakpoints;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::banking::{Banking, BankingConfig};
use crate::util::Zipf;
use crate::Workload;

/// The escrow transfer: withdrawals, escrow-credit, escrow-debit,
/// deposits. Registers: `r0` = still needed, `r1` = pocket (gathered,
/// not yet banked or deposited). Gathering nothing skips the rest.
#[derive(Clone, Debug)]
pub struct EscrowTransferProgram {
    /// Accounts withdrawn from, in order.
    pub sources: Vec<EntityId>,
    /// Accounts deposited to, in order.
    pub targets: Vec<EntityId>,
    /// The escrow entity the pocket passes through.
    pub escrow: EntityId,
    /// The amount the transfer tries to move.
    pub amount: Value,
}

impl EscrowTransferProgram {
    /// Phase of a state: number of withdrawal steps is `pc` while
    /// `pc < sources.len()`; then escrow-credit, escrow-debit, deposits.
    fn phase(&self, state: &LocalState) -> Phase {
        let pc = state.pc as usize;
        if pc < self.sources.len() {
            Phase::Withdraw(pc)
        } else if pc == self.sources.len() {
            Phase::EscrowCredit
        } else if pc == self.sources.len() + 1 {
            Phase::EscrowDebit
        } else {
            Phase::Deposit(pc - self.sources.len() - 2)
        }
    }
}

enum Phase {
    Withdraw(usize),
    EscrowCredit,
    EscrowDebit,
    Deposit(usize),
}

impl Program for EscrowTransferProgram {
    fn start(&self) -> LocalState {
        LocalState {
            pc: 0,
            regs: vec![self.amount, 0],
        }
    }

    fn next_entity(&self, state: &LocalState) -> Option<EntityId> {
        match self.phase(state) {
            Phase::Withdraw(i) => Some(self.sources[i]),
            Phase::EscrowCredit | Phase::EscrowDebit => {
                if state.regs[1] > 0 {
                    Some(self.escrow)
                } else {
                    None // nothing gathered: finish
                }
            }
            Phase::Deposit(d) => {
                if d < self.targets.len() && state.regs[1] > 0 {
                    Some(self.targets[d])
                } else {
                    None
                }
            }
        }
    }

    fn apply(&self, state: &LocalState, observed: Value) -> (LocalState, Value) {
        let mut next = state.clone();
        match self.phase(state) {
            Phase::Withdraw(_) => {
                let take = observed.max(0).min(state.regs[0]);
                next.regs[0] -= take;
                next.regs[1] += take;
                next.pc = if next.regs[0] == 0 {
                    self.sources.len() as u32
                } else {
                    state.pc + 1
                };
                (next, observed - take)
            }
            Phase::EscrowCredit => {
                // Bank the whole pocket: the books balance after this.
                next.pc += 1;
                (next, observed + state.regs[1])
            }
            Phase::EscrowDebit => {
                next.pc += 1;
                (next, observed - state.regs[1])
            }
            Phase::Deposit(d) => {
                let remaining = state.regs[1];
                let dep = if d + 1 == self.targets.len() {
                    remaining
                } else {
                    remaining / 2
                };
                next.regs[1] -= dep;
                next.pc += 1;
                (next, observed + dep)
            }
        }
    }
}

/// Breakpoints for the escrow transfer: level 2 **only** right after the
/// escrow-credit step (the balanced point), level 3 everywhere else.
/// Prefix-determined: the escrow-credit step is recognizable as the
/// first access to the escrow entity.
#[derive(Clone, Debug)]
pub struct EscrowBreakpoints {
    /// The escrow entity.
    pub escrow: EntityId,
}

impl RuntimeBreakpoints for EscrowBreakpoints {
    fn k(&self) -> usize {
        4
    }

    fn min_level_after(&self, prefix: &[Step]) -> Option<usize> {
        let last = prefix.last()?;
        let escrow_accesses = prefix.iter().filter(|s| s.entity == self.escrow).count();
        if last.entity == self.escrow && escrow_accesses == 1 {
            Some(2) // right after the credit: books balance
        } else {
            Some(3)
        }
    }
}

/// Generates the escrow-banking workload: like
/// [`crate::banking::generate`] but transfers pass through a global
/// escrow entity and every bank audit is the *non-blocking* kind —
/// reading accounts + escrow and nesting with customers at level 2.
pub fn generate_escrow(config: BankingConfig) -> Banking {
    assert!(config.families > 0 && config.accounts_per_family > 0);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.accounts_per_family, config.zipf_theta);
    let account = |f: usize, j: usize| EntityId((f * config.accounts_per_family + j) as u32);
    let accounts: Vec<EntityId> = (0..config.families)
        .flat_map(|f| (0..config.accounts_per_family).map(move |j| (f, j)))
        .map(|(f, j)| account(f, j))
        .collect();
    // One escrow per family, just past the accounts: a single global
    // escrow is a hotspot that relates every transfer to every other and
    // strangles the schedule.
    let escrow_of = |f: usize| EntityId((accounts.len() + f) as u32);

    let mut programs: Vec<Arc<dyn Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut transfers = Vec::new();
    let mut bank_audits = Vec::new();
    let f_count = config.families as u32;

    for _ in 0..config.transfers {
        let origin = rng.gen_range(0..config.families);
        let intra = rng.gen_bool(config.intra_family_ratio.clamp(0.0, 1.0));
        let dest_family = if intra || config.families == 1 {
            origin
        } else {
            let mut g = rng.gen_range(0..config.families - 1);
            if g >= origin {
                g += 1;
            }
            g
        };
        let n_sources = rng
            .gen_range(config.sources_min.max(1)..=config.sources_max.max(config.sources_min))
            .min(config.accounts_per_family);
        let mut sources = Vec::new();
        while sources.len() < n_sources {
            let e = account(origin, zipf.sample(&mut rng));
            if !sources.contains(&e) {
                sources.push(e);
            }
        }
        let mut targets = Vec::new();
        let mut guard = 0;
        while targets.is_empty() && guard < 1000 {
            guard += 1;
            let e = account(dest_family, zipf.sample(&mut rng));
            if !sources.contains(&e) {
                targets.push(e);
            }
        }
        if targets.is_empty() {
            targets.push(
                accounts
                    .iter()
                    .copied()
                    .find(|e| !sources.contains(e))
                    .unwrap_or(accounts[0]),
            );
        }
        let escrow = escrow_of(origin);
        let t = TxnId(programs.len() as u32);
        programs.push(Arc::new(EscrowTransferProgram {
            sources,
            targets,
            escrow,
            amount: config.amount,
        }));
        breakpoints.push(Arc::new(EscrowBreakpoints { escrow }));
        paths.push(vec![0, origin as u32]);
        transfers.push(t);
    }

    for i in 0..config.bank_audits {
        // The semi-blocking audit: accounts + every escrow, nested at
        // level 2 with the customers (path starts with 0, unlike the
        // fully-blocking audit's 1). The audit itself stays atomic
        // (NoBreakpoints): an interruptible audit would *legally* observe
        // torn sums, because a transfer may split at its balanced point
        // and land its deposit suffix between two audit reads. What the
        // escrow buys is that a transfer can *park* at its balanced
        // point — one or two steps away — instead of having to be
        // entirely finished or unstarted as the level-1 audit demands.
        let ops: Vec<ScriptOp> = accounts
            .iter()
            .copied()
            .chain((0..config.families).map(escrow_of))
            .map(ScriptOp::Accumulate)
            .collect();
        let t = TxnId(programs.len() as u32);
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(Arc::new(mla_txn::NoBreakpoints { k: 4 }));
        paths.push(vec![0, f_count + i as u32]);
        bank_audits.push(t);
    }

    let nest = Nest::new(4, paths).expect("escrow paths have length 2");
    let arrivals: Vec<u64> = (0..programs.len() as u64)
        .map(|i| i * config.arrival_spacing)
        .collect();
    let initial: Vec<(EntityId, Value)> = accounts
        .iter()
        .map(|&a| (a, config.initial_balance))
        .collect();

    Banking {
        workload: Workload {
            name: format!(
                "banking-escrow(f={},a={},t={})",
                config.families, config.accounts_per_family, config.transfers
            ),
            nest,
            programs,
            breakpoints,
            initial,
            arrivals,
        },
        accounts,
        transfers,
        bank_audits,
        credit_audits: Vec::new(),
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    #[test]
    fn escrow_transfer_balances_at_credit() {
        let p = EscrowTransferProgram {
            sources: vec![e(0), e(1)],
            targets: vec![e(2)],
            escrow: e(9),
            amount: 50,
        };
        let mut state = p.start();
        // Withdraw 30 + 20.
        let (s, w) = p.apply(&state, 30);
        assert_eq!(w, 0);
        state = s;
        let (s, w) = p.apply(&state, 25);
        assert_eq!(w, 5, "takes only the remaining 20");
        state = s;
        // Escrow credit: +50.
        assert_eq!(p.next_entity(&state), Some(e(9)));
        let (s, w) = p.apply(&state, 0);
        assert_eq!(w, 50);
        state = s;
        // Escrow debit: -50.
        assert_eq!(p.next_entity(&state), Some(e(9)));
        let (s, w) = p.apply(&state, 50);
        assert_eq!(w, 0);
        state = s;
        // Deposit.
        assert_eq!(p.next_entity(&state), Some(e(2)));
        let (s, w) = p.apply(&state, 7);
        assert_eq!(w, 57);
        assert_eq!(p.next_entity(&s), None);
    }

    #[test]
    fn empty_pocket_skips_escrow_and_deposits() {
        let p = EscrowTransferProgram {
            sources: vec![e(0)],
            targets: vec![e(2)],
            escrow: e(9),
            amount: 50,
        };
        let state = p.start();
        let (s, _) = p.apply(&state, 0);
        assert_eq!(p.next_entity(&s), None);
    }

    #[test]
    fn breakpoint_exactly_after_escrow_credit() {
        let bp = EscrowBreakpoints { escrow: e(9) };
        let mk = |entity: u32| Step {
            txn: TxnId(0),
            seq: 0,
            entity: e(entity),
            observed: 0,
            wrote: 0,
        };
        let run = [mk(0), mk(1), mk(9), mk(9), mk(2)];
        assert_eq!(bp.min_level_after(&run[..1]), Some(3));
        assert_eq!(bp.min_level_after(&run[..2]), Some(3));
        assert_eq!(bp.min_level_after(&run[..3]), Some(2), "after credit");
        assert_eq!(
            bp.min_level_after(&run[..4]),
            Some(3),
            "after debit: unbalanced"
        );
        assert_eq!(bp.min_level_after(&run[..5]), Some(3));
    }

    #[test]
    fn serial_escrow_run_conserves_and_audits_exactly() {
        let b = generate_escrow(BankingConfig {
            transfers: 6,
            bank_audits: 1,
            credit_audits: 0,
            ..BankingConfig::default()
        });
        let sys = b.workload.system();
        let order: Vec<TxnId> = (0..b.workload.txn_count() as u32).map(TxnId).collect();
        let exec = sys.run_serial(&order).unwrap();
        sys.validate(&exec).unwrap();
        // Audit total (accounts + escrow) equals the bank total.
        let audit = b.bank_audits[0];
        let sum: Value = exec
            .steps()
            .iter()
            .filter(|s| s.txn == audit)
            .map(|s| s.observed)
            .sum();
        assert_eq!(sum, b.total_money());
    }

    #[test]
    fn nonblocking_audit_nests_at_level_two() {
        let b = generate_escrow(BankingConfig {
            transfers: 4,
            bank_audits: 1,
            ..BankingConfig::default()
        });
        let audit = b.bank_audits[0];
        for &t in &b.transfers {
            assert_eq!(
                b.workload.nest.level(t, audit),
                2,
                "escrow audit relates to transfers at level 2, not 1"
            );
        }
    }
}
