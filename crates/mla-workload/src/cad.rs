//! Utopian Planning, Inc. (§2, Application 2; §4.2's 5-nest).
//!
//! The city-plan database: each specialty owns a pool of plan elements
//! and there is a pool of shared elements everyone touches. Experts
//! submit **modification** transactions (read-modify-write walks over
//! elements); the public relations department takes **snapshots**
//! (long reads) that must be atomic with respect to all modifications.
//!
//! The 5-nest: `π(2)` = modifications vs. snapshots; `π(3)` by specialty;
//! `π(4)` by team; `π(5)` singletons. Breakpoint structure mirrors the
//! paper's trust gradient: team-mates interleave after every step
//! (level 4), specialty colleagues at small consistency units (level 3),
//! strangers only at coarse consistency points (level 2) — and snapshots
//! never interleave with anything (level 1 has no breakpoints by
//! definition).

use std::sync::Arc;

use mla_core::nest::Nest;
use mla_model::program::{ScriptOp, ScriptProgram};
use mla_model::{EntityId, Program, Step, TxnId};
use mla_txn::{NoBreakpoints, RuntimeBreakpoints};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::util::Zipf;
use crate::Workload;

/// Parameters of the CAD workload.
#[derive(Clone, Debug)]
pub struct CadConfig {
    /// Number of specialties.
    pub specialties: usize,
    /// Teams per specialty.
    pub teams_per_specialty: usize,
    /// Modification transactions.
    pub modifications: usize,
    /// Snapshot transactions.
    pub snapshots: usize,
    /// Plan elements owned by each specialty.
    pub elements_per_specialty: usize,
    /// Globally shared plan elements.
    pub shared_elements: usize,
    /// Steps per modification transaction.
    pub steps_per_mod: usize,
    /// Probability a modification step touches a shared element.
    pub shared_touch_prob: f64,
    /// Elements each snapshot reads (sampled across the whole plan).
    pub snapshot_breadth: usize,
    /// Level-3 breakpoints every this many steps (specialty consistency
    /// unit).
    pub level3_unit: usize,
    /// Level-2 breakpoints every this many steps (cross-specialty
    /// consistency point); 0 = never.
    pub level2_unit: usize,
    /// Zipf skew for element selection.
    pub zipf_theta: f64,
    /// Ticks between injections.
    pub arrival_spacing: u64,
    /// Generation seed.
    pub seed: u64,
}

impl Default for CadConfig {
    fn default() -> Self {
        CadConfig {
            specialties: 3,
            teams_per_specialty: 2,
            modifications: 12,
            snapshots: 2,
            elements_per_specialty: 8,
            shared_elements: 4,
            steps_per_mod: 6,
            shared_touch_prob: 0.25,
            snapshot_breadth: 12,
            level3_unit: 2,
            level2_unit: 4,
            zipf_theta: 0.8,
            arrival_spacing: 4,
            seed: 0xCAD5,
        }
    }
}

/// The generated CAD workload plus bookkeeping.
pub struct Cad {
    /// The runnable workload.
    pub workload: Workload,
    /// Modification transaction ids with their (specialty, team).
    pub modifications: Vec<(TxnId, usize, usize)>,
    /// Snapshot transaction ids.
    pub snapshots: Vec<TxnId>,
    /// The generating configuration.
    pub config: CadConfig,
}

/// Position-periodic breakpoints for modifications: level 4 after every
/// step, level 3 every `level3_unit` steps, level 2 every `level2_unit`
/// steps (if enabled). Purely position-based, hence trivially
/// prefix-compatible.
#[derive(Clone, Debug)]
pub struct ModificationBreakpoints {
    /// Specialty consistency unit.
    pub level3_unit: usize,
    /// Cross-specialty consistency unit (0 = never).
    pub level2_unit: usize,
}

impl RuntimeBreakpoints for ModificationBreakpoints {
    fn k(&self) -> usize {
        5
    }

    fn min_level_after(&self, prefix: &[Step]) -> Option<usize> {
        let p = prefix.len();
        if p == 0 {
            return None;
        }
        if self.level2_unit > 0 && p.is_multiple_of(self.level2_unit) {
            Some(2)
        } else if self.level3_unit > 0 && p.is_multiple_of(self.level3_unit) {
            Some(3)
        } else {
            Some(4)
        }
    }

    fn guaranteed_level_after(&self, pos: usize) -> Option<usize> {
        // Purely periodic in the prefix length, so the runtime answer is
        // the static guarantee.
        if pos == 0 {
            return None;
        }
        if self.level2_unit > 0 && pos.is_multiple_of(self.level2_unit) {
            Some(2)
        } else if self.level3_unit > 0 && pos.is_multiple_of(self.level3_unit) {
            Some(3)
        } else {
            Some(4)
        }
    }

    fn uniform_guarantee(&self) -> Option<usize> {
        Some(4)
    }
}

/// Generates the CAD workload.
pub fn generate(config: CadConfig) -> Cad {
    assert!(config.specialties > 0 && config.elements_per_specialty > 0);
    assert!(config.steps_per_mod > 0);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let own_zipf = Zipf::new(config.elements_per_specialty, config.zipf_theta);
    let total_elements =
        config.specialties * config.elements_per_specialty + config.shared_elements;
    let shared_base = config.specialties * config.elements_per_specialty;
    let element = |s: usize, j: usize| EntityId((s * config.elements_per_specialty + j) as u32);
    let shared = |j: usize| EntityId((shared_base + j) as u32);

    let mut programs: Vec<Arc<dyn Program + Send + Sync>> = Vec::new();
    let mut breakpoints: Vec<Arc<dyn RuntimeBreakpoints>> = Vec::new();
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut modifications = Vec::new();
    let mut snapshots = Vec::new();

    for i in 0..config.modifications {
        let s = i % config.specialties;
        let team = (i / config.specialties) % config.teams_per_specialty;
        let ops: Vec<ScriptOp> = (0..config.steps_per_mod)
            .map(|_| {
                let touch_shared = config.shared_elements > 0
                    && rng.gen_bool(config.shared_touch_prob.clamp(0.0, 1.0));
                let e = if touch_shared {
                    shared(rng.gen_range(0..config.shared_elements))
                } else {
                    element(s, own_zipf.sample(&mut rng))
                };
                // Bump the element's version stamp.
                ScriptOp::Add(e, 1)
            })
            .collect();
        let t = TxnId(programs.len() as u32);
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(Arc::new(ModificationBreakpoints {
            level3_unit: config.level3_unit,
            level2_unit: config.level2_unit,
        }));
        paths.push(vec![
            0,
            s as u32,
            (s * config.teams_per_specialty + team) as u32,
        ]);
        modifications.push((t, s, team));
    }

    for i in 0..config.snapshots {
        let breadth = config.snapshot_breadth.min(total_elements);
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < breadth {
            let j = rng.gen_range(0..total_elements);
            if !chosen.contains(&j) {
                chosen.push(j);
            }
        }
        chosen.sort_unstable();
        let ops: Vec<ScriptOp> = chosen
            .into_iter()
            .map(|j| ScriptOp::Accumulate(EntityId(j as u32)))
            .collect();
        let t = TxnId(programs.len() as u32);
        programs.push(Arc::new(ScriptProgram::new(ops)));
        breakpoints.push(Arc::new(NoBreakpoints { k: 5 }));
        // Snapshots: own pi(2) class, isolated below.
        let key = 1000 + i as u32;
        paths.push(vec![1, key, key]);
        snapshots.push(t);
    }

    let nest = Nest::new(5, paths).expect("cad paths have length 3");
    let arrivals: Vec<u64> = (0..programs.len() as u64)
        .map(|i| i * config.arrival_spacing)
        .collect();

    Cad {
        workload: Workload {
            name: format!(
                "cad(s={},m={},snap={})",
                config.specialties, config.modifications, config.snapshots
            ),
            nest,
            programs,
            breakpoints,
            initial: Vec::new(), // version stamps start at 0
            arrivals,
        },
        modifications,
        snapshots,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::{TxnId, Value};

    #[test]
    fn nest_matches_paper_five_levels() {
        let cad = generate(CadConfig::default());
        let nest = &cad.workload.nest;
        assert_eq!(nest.k(), 5);
        // Two mods of the same specialty & team.
        let same_team: Vec<TxnId> = cad
            .modifications
            .iter()
            .filter(|&&(_, s, team)| s == 0 && team == 0)
            .map(|&(t, _, _)| t)
            .collect();
        if same_team.len() >= 2 {
            assert_eq!(nest.level(same_team[0], same_team[1]), 4);
        }
        // Same specialty, different team.
        let (mut a, mut b) = (None, None);
        for &(t, s, team) in &cad.modifications {
            if s == 0 && team == 0 {
                a = Some(t);
            }
            if s == 0 && team == 1 {
                b = Some(t);
            }
        }
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(nest.level(a, b), 3);
        }
        // Different specialties.
        let m0 = cad.modifications.iter().find(|m| m.1 == 0).unwrap().0;
        let m1 = cad.modifications.iter().find(|m| m.1 == 1).unwrap().0;
        assert_eq!(nest.level(m0, m1), 2);
        // Snapshot vs modification.
        assert_eq!(nest.level(m0, cad.snapshots[0]), 1);
        // Snapshot vs snapshot: pi(2) groups all snapshots together, and
        // their lack of breakpoints serializes them below that.
        if cad.snapshots.len() >= 2 {
            assert_eq!(nest.level(cad.snapshots[0], cad.snapshots[1]), 2);
        }
    }

    #[test]
    fn modification_breakpoint_pattern() {
        let bp = ModificationBreakpoints {
            level3_unit: 2,
            level2_unit: 4,
        };
        let step = |i: u32| Step {
            txn: TxnId(0),
            seq: i,
            entity: EntityId(0),
            observed: 0,
            wrote: 0,
        };
        let steps: Vec<Step> = (0..6).map(step).collect();
        assert_eq!(bp.min_level_after(&steps[..1]), Some(4));
        assert_eq!(bp.min_level_after(&steps[..2]), Some(3));
        assert_eq!(bp.min_level_after(&steps[..3]), Some(4));
        assert_eq!(bp.min_level_after(&steps[..4]), Some(2));
        assert_eq!(bp.min_level_after(&steps[..5]), Some(4));
        assert_eq!(bp.min_level_after(&steps[..6]), Some(3));
        assert_eq!(bp.min_level_after(&[]), None);
    }

    #[test]
    fn level2_disabled() {
        let bp = ModificationBreakpoints {
            level3_unit: 1,
            level2_unit: 0,
        };
        let steps = [Step {
            txn: TxnId(0),
            seq: 0,
            entity: EntityId(0),
            observed: 0,
            wrote: 0,
        }];
        assert_eq!(bp.min_level_after(&steps), Some(3));
    }

    #[test]
    fn generation_deterministic() {
        let a = generate(CadConfig::default());
        let b = generate(CadConfig::default());
        assert_eq!(a.workload.nest, b.workload.nest);
        assert_eq!(a.workload.txn_count(), b.workload.txn_count());
        // Programs produce identical serial executions.
        let ea = a
            .workload
            .system()
            .run_serial(
                &(0..a.workload.txn_count() as u32)
                    .map(TxnId)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let eb = b
            .workload
            .system()
            .run_serial(
                &(0..b.workload.txn_count() as u32)
                    .map(TxnId)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert_eq!(ea, eb);
    }

    #[test]
    fn snapshots_read_only() {
        let cad = generate(CadConfig::default());
        let sys = cad.workload.system();
        let order: Vec<TxnId> = (0..cad.workload.txn_count() as u32).map(TxnId).collect();
        let exec = sys.run_serial(&order).unwrap();
        for s in exec.steps() {
            if cad.snapshots.contains(&s.txn) {
                assert!(s.is_read(), "snapshots must not modify the plan");
            }
        }
    }

    #[test]
    fn version_stamps_count_modification_steps() {
        let cad = generate(CadConfig {
            snapshots: 0,
            ..CadConfig::default()
        });
        let sys = cad.workload.system();
        let order: Vec<TxnId> = (0..cad.workload.txn_count() as u32).map(TxnId).collect();
        let exec = sys.run_serial(&order).unwrap();
        let total_writes: Value = exec.steps().iter().map(|s| s.wrote - s.observed).sum();
        assert_eq!(
            total_writes,
            (cad.config.modifications * cad.config.steps_per_mod) as Value
        );
    }
}
