//! Property-based tests for the multilevel-atomicity theory.
//!
//! The central properties:
//! 1. the frontier closure equals the literal definitional closure;
//! 2. Theorem 2 equals brute-force enumeration over all equivalent
//!    executions;
//! 3. Lemma 1's witness is equivalent and multilevel atomic;
//! 4. at k = 2 everything collapses to classical serializability;
//! 5. *monotonicity*: adding breakpoints never destroys correctability
//!    (coarser condition-(b) lifts produce a sub-relation).

#![allow(clippy::needless_range_loop)] // dense-index pairwise comparisons

use mla_core::breakpoints::BreakpointDescription;
use mla_core::closure::{coherent_closure_exact, exact_is_partial_order, CoherentClosure};
use mla_core::extend::witness_execution;
use mla_core::nest::Nest;
use mla_core::serializability::is_serializable;
use mla_core::spec::{AtomicSpec, ExecContext, FixedSpec};
use mla_core::theorem::is_correctable;
use mla_core::{is_multilevel_atomic, MlaCriterion};
use mla_model::appdb::is_correctable_by_enumeration;
use mla_model::{EntityId, Execution, Step, TxnId};
use proptest::prelude::*;

/// A randomly interleaved execution over `txns` transactions: per step,
/// (txn choice, entity). Sequence numbers are assigned in order.
#[derive(Clone, Debug)]
struct RandomExec {
    txns: usize,
    steps: Vec<Step>,
}

fn exec_strategy(
    max_txns: usize,
    max_steps: usize,
    max_entities: u32,
) -> impl Strategy<Value = RandomExec> {
    (2..=max_txns).prop_flat_map(move |txns| {
        proptest::collection::vec((0..txns as u32, 0..max_entities), 1..=max_steps).prop_map(
            move |picks| {
                let mut next_seq = vec![0u32; txns];
                let steps = picks
                    .into_iter()
                    .map(|(t, e)| {
                        let seq = next_seq[t as usize];
                        next_seq[t as usize] += 1;
                        Step {
                            txn: TxnId(t),
                            seq,
                            entity: EntityId(e),
                            observed: 0,
                            wrote: 0,
                        }
                    })
                    .collect();
                RandomExec { txns, steps }
            },
        )
    })
}

/// A random spec: per transaction, random breakpoint positions per mid
/// level (refining by construction: deeper levels take a superset).
fn spec_for(re: &RandomExec, k: usize, picks: &[bool]) -> FixedSpec {
    let exec = Execution::new(re.steps.clone()).unwrap();
    let mut spec = FixedSpec::new(k);
    let mut pick_idx = 0;
    let pick = |i: &mut usize| {
        let v = picks.get(*i).copied().unwrap_or(false);
        *i += 1;
        v
    };
    for t in 0..re.txns as u32 {
        let len = exec.txn_steps(TxnId(t)).len();
        let mut mid: Vec<Vec<usize>> = Vec::new();
        let mut prev: Vec<usize> = Vec::new();
        for _ in 0..k.saturating_sub(2) {
            let mut cur = prev.clone();
            for p in 1..len {
                if pick(&mut pick_idx) && !cur.contains(&p) {
                    cur.push(p);
                }
            }
            mid.push(cur.clone());
            prev = cur;
        }
        spec = spec.set(
            TxnId(t),
            BreakpointDescription::from_mid_levels(k, len, &mid).unwrap(),
        );
    }
    spec
}

fn nest_for(re: &RandomExec, k: usize, classes: &[u8]) -> Nest {
    let paths: Vec<Vec<u32>> = (0..re.txns)
        .map(|t| {
            (0..k - 2)
                .map(|j| (classes.get(t * (k - 2) + j).copied().unwrap_or(0) % 2) as u32)
                .collect()
        })
        .collect();
    Nest::new(k, paths).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closures_agree(re in exec_strategy(3, 8, 4),
                      k in 2usize..4,
                      picks in proptest::collection::vec(any::<bool>(), 0..64),
                      classes in proptest::collection::vec(any::<u8>(), 0..8)) {
        let exec = Execution::new(re.steps.clone()).unwrap();
        let nest = nest_for(&re, k, &classes);
        let spec = spec_for(&re, k, &picks);
        let ctx = ExecContext::new(&exec, &nest, &spec).unwrap();
        let fast = CoherentClosure::compute(&ctx);
        let slow = coherent_closure_exact(&ctx);
        prop_assert_eq!(fast.is_partial_order(), exact_is_partial_order(&slow));
        for v in 0..ctx.n() {
            for u in 0..ctx.n() {
                if u != v {
                    prop_assert_eq!(fast.related(&ctx, u, v), slow[v].contains(u),
                        "pair ({}, {}) disagreement on {}", u, v, &exec);
                }
            }
        }
    }

    #[test]
    fn theorem_equals_enumeration(re in exec_strategy(3, 7, 3),
                                  k in 2usize..4,
                                  picks in proptest::collection::vec(any::<bool>(), 0..64),
                                  classes in proptest::collection::vec(any::<u8>(), 0..8)) {
        let exec = Execution::new(re.steps.clone()).unwrap();
        let nest = nest_for(&re, k, &classes);
        let spec = spec_for(&re, k, &picks);
        let theorem = is_correctable(&exec, &nest, &spec).unwrap();
        let oracle = is_correctable_by_enumeration(&exec, &MlaCriterion {
            nest: &nest, spec: &spec,
        });
        prop_assert_eq!(theorem, oracle, "Theorem 2 vs enumeration on {}", &exec);
    }

    #[test]
    fn witness_pipeline(re in exec_strategy(3, 8, 4),
                        k in 2usize..5,
                        picks in proptest::collection::vec(any::<bool>(), 0..96),
                        classes in proptest::collection::vec(any::<u8>(), 0..12)) {
        let exec = Execution::new(re.steps.clone()).unwrap();
        let nest = nest_for(&re, k, &classes);
        let spec = spec_for(&re, k, &picks);
        let ctx = ExecContext::new(&exec, &nest, &spec).unwrap();
        let closure = CoherentClosure::compute(&ctx);
        if closure.is_partial_order() {
            let w = witness_execution(&ctx, &closure).unwrap();
            prop_assert!(exec.equivalent(&w), "witness equivalent: {} vs {}", &exec, &w);
            prop_assert!(is_multilevel_atomic(&w, &nest, &spec).unwrap(),
                "witness atomic: {}", &w);
        } else {
            let cycle = closure.witness_cycle(&ctx).unwrap();
            prop_assert!(!cycle.is_empty());
            // The cycle is a genuine relation cycle: consecutive steps
            // related, wrap-around included.
            let nodes = cycle.nodes();
            for i in 0..nodes.len() {
                let u = nodes[i] as usize;
                let v = nodes[(i + 1) % nodes.len()] as usize;
                prop_assert!(closure.related(&ctx, u, v),
                    "cycle pair ({u},{v}) not in relation");
            }
        }
    }

    #[test]
    fn k2_is_serializability(re in exec_strategy(4, 10, 4)) {
        let exec = Execution::new(re.steps.clone()).unwrap();
        let nest = Nest::flat(re.txns);
        let thm = is_correctable(&exec, &nest, &AtomicSpec { k: 2 }).unwrap();
        prop_assert_eq!(thm, is_serializable(&exec), "k=2 collapse on {}", &exec);
    }

    #[test]
    fn more_breakpoints_never_hurt(re in exec_strategy(3, 8, 4),
                                   picks in proptest::collection::vec(any::<bool>(), 0..48),
                                   extra in proptest::collection::vec(any::<bool>(), 0..48),
                                   classes in proptest::collection::vec(any::<u8>(), 0..8)) {
        // Build two specs where the second's breakpoint sets contain the
        // first's; correctability must be monotone.
        let k = 3;
        let exec = Execution::new(re.steps.clone()).unwrap();
        let nest = nest_for(&re, k, &classes);

        let mut sparse = FixedSpec::new(k);
        let mut dense = FixedSpec::new(k);
        let mut idx = 0;
        for t in 0..re.txns as u32 {
            let len = exec.txn_steps(TxnId(t)).len();
            let mut base: Vec<usize> = Vec::new();
            let mut more: Vec<usize> = Vec::new();
            for p in 1..len {
                let b = picks.get(idx).copied().unwrap_or(false);
                let e = extra.get(idx).copied().unwrap_or(false);
                idx += 1;
                if b { base.push(p); }
                if b || e { more.push(p); }
            }
            sparse = sparse.set(TxnId(t),
                BreakpointDescription::from_mid_levels(k, len, &[base]).unwrap());
            dense = dense.set(TxnId(t),
                BreakpointDescription::from_mid_levels(k, len, &[more]).unwrap());
        }
        let c_sparse = is_correctable(&exec, &nest, &sparse).unwrap();
        let c_dense = is_correctable(&exec, &nest, &dense).unwrap();
        prop_assert!(!c_sparse || c_dense,
            "adding breakpoints destroyed correctability on {}", &exec);
    }

    #[test]
    fn atomicity_implies_correctability(re in exec_strategy(3, 8, 4),
                                        k in 2usize..4,
                                        picks in proptest::collection::vec(any::<bool>(), 0..64),
                                        classes in proptest::collection::vec(any::<u8>(), 0..8)) {
        let exec = Execution::new(re.steps.clone()).unwrap();
        let nest = nest_for(&re, k, &classes);
        let spec = spec_for(&re, k, &picks);
        if is_multilevel_atomic(&exec, &nest, &spec).unwrap() {
            prop_assert!(is_correctable(&exec, &nest, &spec).unwrap(),
                "a correct execution is trivially correctable: {}", &exec);
        }
    }

    #[test]
    fn deeper_nesting_never_hurts(re in exec_strategy(3, 8, 4),
                                  classes in proptest::collection::vec(any::<u8>(), 0..8)) {
        // Refining the nest while giving every transaction breakpoints at
        // the new level everywhere can only admit more executions than a
        // flat serializability nest.
        let exec = Execution::new(re.steps.clone()).unwrap();
        let flat = Nest::flat(re.txns);
        let serial_ok = is_correctable(&exec, &flat, &AtomicSpec { k: 2 }).unwrap();
        let nest = nest_for(&re, 3, &classes);
        let mut spec = FixedSpec::new(3);
        for t in 0..re.txns as u32 {
            let len = exec.txn_steps(TxnId(t)).len();
            spec = spec.set(TxnId(t), BreakpointDescription::free(3, len));
        }
        let mla_ok = is_correctable(&exec, &nest, &spec).unwrap();
        prop_assert!(!serial_ok || mla_ok,
            "free breakpoints under a 3-nest must accept all serializable executions");
    }
}
