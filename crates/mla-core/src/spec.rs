//! Breakpoint specifications and the per-execution checking context.
//!
//! A *k-level breakpoint specification* `𝔅` (§4.3) assigns a breakpoint
//! description to every execution of every transaction — transactions
//! branch, so breakpoints are a function of the run, not of static text.
//! [`BreakpointSpecification`] is that family; implementations should obey
//! the §6 *compatibility* condition (two runs sharing a prefix agree on the
//! breakpoint immediately after the prefix), which holds automatically for
//! specifications that look only at step positions and the steps
//! themselves (never at future steps).
//!
//! [`ExecContext`] derives, from a concrete execution `e`, the natural
//! interleaving specification `𝔍(𝔅, e)` of §4.3: each transaction's step
//! subsequence plus its breakpoint description, with dense local indices
//! and O(1) level / segment-end lookups for the checkers.

use std::collections::HashMap;

use mla_model::{Execution, Step, TxnId};

use crate::breakpoints::BreakpointDescription;
use crate::nest::Nest;

/// A k-level breakpoint specification `𝔅`: for each transaction and each
/// of its executions (given as the step subsequence actually performed),
/// the breakpoint description.
pub trait BreakpointSpecification {
    /// The nest depth all produced descriptions use.
    fn k(&self) -> usize;

    /// The breakpoint description for transaction `t` having performed
    /// exactly `steps` (its subsequence of some system execution, in
    /// order). The result must describe `steps.len()` steps and use depth
    /// [`BreakpointSpecification::k`].
    fn describe(&self, t: TxnId, steps: &[Step]) -> BreakpointDescription;
}

/// The specification making every transaction atomic at every mid level:
/// multilevel atomicity under this specification equals serializability
/// regardless of the nest.
#[derive(Clone, Copy, Debug)]
pub struct AtomicSpec {
    /// Nest depth.
    pub k: usize,
}

impl BreakpointSpecification for AtomicSpec {
    fn k(&self) -> usize {
        self.k
    }

    fn describe(&self, _t: TxnId, steps: &[Step]) -> BreakpointDescription {
        BreakpointDescription::atomic(self.k, steps.len())
    }
}

/// The specification placing breakpoints everywhere at every mid level:
/// any `π(2)`-related transactions may interleave arbitrarily. With the
/// `k = 3` nest this is exactly Garcia-Molina's *compatibility sets* \[G\],
/// which the paper cites as the two-level special case of multilevel
/// atomicity.
#[derive(Clone, Copy, Debug)]
pub struct FreeSpec {
    /// Nest depth.
    pub k: usize,
}

impl BreakpointSpecification for FreeSpec {
    fn k(&self) -> usize {
        self.k
    }

    fn describe(&self, _t: TxnId, steps: &[Step]) -> BreakpointDescription {
        BreakpointDescription::free(self.k, steps.len())
    }
}

/// A specification given extensionally: a fixed description per
/// transaction. Intended for tests and small examples where the executions
/// are known in advance; panics at context-build time if a description's
/// length does not match the transaction's subsequence.
#[derive(Clone, Debug, Default)]
pub struct FixedSpec {
    k: usize,
    map: HashMap<TxnId, BreakpointDescription>,
}

impl FixedSpec {
    /// Builds a fixed specification of depth `k`.
    pub fn new(k: usize) -> Self {
        FixedSpec {
            k,
            map: HashMap::new(),
        }
    }

    /// Sets transaction `t`'s description.
    pub fn set(mut self, t: TxnId, bd: BreakpointDescription) -> Self {
        assert_eq!(bd.k(), self.k, "description depth must match spec depth");
        self.map.insert(t, bd);
        self
    }
}

impl BreakpointSpecification for FixedSpec {
    fn k(&self) -> usize {
        self.k
    }

    fn describe(&self, t: TxnId, steps: &[Step]) -> BreakpointDescription {
        match self.map.get(&t) {
            Some(bd) => {
                assert_eq!(
                    bd.step_count(),
                    steps.len(),
                    "FixedSpec: transaction {t} performed {} steps but its \
                     description covers {}",
                    steps.len(),
                    bd.step_count()
                );
                bd.clone()
            }
            None => BreakpointDescription::atomic(self.k, steps.len()),
        }
    }
}

/// Errors from [`ExecContext::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContextError {
    /// A step names a transaction outside the nest.
    TxnOutsideNest {
        /// The offending transaction.
        txn: TxnId,
        /// Transactions the nest covers (`t0 .. t(n-1)`).
        nest_txns: usize,
    },
    /// The specification produced a description of the wrong depth.
    DepthMismatch {
        /// The transaction whose description mismatched.
        txn: TxnId,
        /// The nest's k.
        nest_k: usize,
        /// The description's k.
        bd_k: usize,
    },
    /// The specification produced a description of the wrong length.
    LengthMismatch {
        /// The transaction whose description mismatched.
        txn: TxnId,
        /// Steps the transaction performed in the execution.
        steps: usize,
        /// Steps the description covers.
        described: usize,
    },
}

impl std::fmt::Display for ContextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContextError::TxnOutsideNest { txn, nest_txns } => {
                write!(f, "step transaction {txn} outside nest of {nest_txns} txns")
            }
            ContextError::DepthMismatch { txn, nest_k, bd_k } => write!(
                f,
                "transaction {txn}: description depth {bd_k} != nest depth {nest_k}"
            ),
            ContextError::LengthMismatch {
                txn,
                steps,
                described,
            } => write!(
                f,
                "transaction {txn}: {steps} steps performed, {described} described"
            ),
        }
    }
}

impl std::error::Error for ContextError {}

/// The derived interleaving specification `𝔍(𝔅, e)` plus dense indices:
/// everything the coherence machinery needs to answer, in O(1),
/// "what is `level(t, t')`?" and "where does this step's level-`i`
/// segment end?".
#[derive(Debug)]
pub struct ExecContext<'a> {
    exec: &'a Execution,
    nest: &'a Nest,
    /// Local dense txn index -> TxnId (order of first appearance in `e`).
    txns: Vec<TxnId>,
    /// Global step index -> local txn index.
    step_txn: Vec<usize>,
    /// Global step index -> seq within its transaction.
    step_seq: Vec<usize>,
    /// Local txn index -> global step indices, ascending.
    txn_steps: Vec<Vec<usize>>,
    /// Local txn index -> breakpoint description over its subsequence.
    bds: Vec<BreakpointDescription>,
}

impl<'a> ExecContext<'a> {
    /// Assembles the context for checking `exec` against `nest` and
    /// `spec`.
    pub fn new(
        exec: &'a Execution,
        nest: &'a Nest,
        spec: &dyn BreakpointSpecification,
    ) -> Result<Self, ContextError> {
        let mut txns: Vec<TxnId> = Vec::new();
        let mut local: HashMap<TxnId, usize> = HashMap::new();
        let mut step_txn = Vec::with_capacity(exec.len());
        let mut step_seq = Vec::with_capacity(exec.len());
        let mut txn_steps: Vec<Vec<usize>> = Vec::new();
        for (i, s) in exec.steps().iter().enumerate() {
            if s.txn.index() >= nest.txn_count() {
                return Err(ContextError::TxnOutsideNest {
                    txn: s.txn,
                    nest_txns: nest.txn_count(),
                });
            }
            let lt = *local.entry(s.txn).or_insert_with(|| {
                txns.push(s.txn);
                txn_steps.push(Vec::new());
                txns.len() - 1
            });
            step_txn.push(lt);
            step_seq.push(s.seq as usize);
            txn_steps[lt].push(i);
        }
        let mut bds = Vec::with_capacity(txns.len());
        for (lt, &t) in txns.iter().enumerate() {
            let sub: Vec<Step> = txn_steps[lt].iter().map(|&i| exec.steps()[i]).collect();
            let bd = spec.describe(t, &sub);
            if bd.k() != nest.k() {
                return Err(ContextError::DepthMismatch {
                    txn: t,
                    nest_k: nest.k(),
                    bd_k: bd.k(),
                });
            }
            if bd.step_count() != sub.len() {
                return Err(ContextError::LengthMismatch {
                    txn: t,
                    steps: sub.len(),
                    described: bd.step_count(),
                });
            }
            bds.push(bd);
        }
        Ok(ExecContext {
            exec,
            nest,
            txns,
            step_txn,
            step_seq,
            txn_steps,
            bds,
        })
    }

    /// The underlying execution.
    pub fn exec(&self) -> &Execution {
        self.exec
    }

    /// The nest.
    pub fn nest(&self) -> &Nest {
        self.nest
    }

    /// Number of steps.
    pub fn n(&self) -> usize {
        self.exec.len()
    }

    /// Number of distinct transactions appearing in the execution.
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }

    /// Local txn index of global step `i`.
    pub fn txn_of(&self, i: usize) -> usize {
        self.step_txn[i]
    }

    /// Sequence number (within its transaction) of global step `i`.
    pub fn seq_of(&self, i: usize) -> usize {
        self.step_seq[i]
    }

    /// TxnId of a local txn index.
    pub fn txn_id(&self, local: usize) -> TxnId {
        self.txns[local]
    }

    /// Global step indices of a local txn, ascending.
    pub fn steps_of(&self, local: usize) -> &[usize] {
        &self.txn_steps[local]
    }

    /// The global index of local txn `t`'s step with sequence number `seq`.
    pub fn global_of(&self, local: usize, seq: usize) -> usize {
        self.txn_steps[local][seq]
    }

    /// Breakpoint description of a local txn.
    pub fn bd(&self, local: usize) -> &BreakpointDescription {
        &self.bds[local]
    }

    /// `level(t, t')` between two local txn indices.
    pub fn level(&self, a: usize, b: usize) -> usize {
        self.nest.level(self.txns[a], self.txns[b])
    }

    /// The sequence number ending the `B_t(level)`-segment that contains
    /// step `seq` of local txn `t`.
    pub fn segment_end(&self, local: usize, level: usize, seq: usize) -> usize {
        self.bds[local].segment_end(level, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::EntityId;

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    fn sample_exec() -> Execution {
        Execution::new(vec![
            step(1, 0, 0),
            step(0, 0, 1),
            step(1, 1, 2),
            step(0, 1, 3),
        ])
        .unwrap()
    }

    #[test]
    fn context_indices() {
        let e = sample_exec();
        let nest = Nest::flat(2);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert_eq!(ctx.n(), 4);
        assert_eq!(ctx.txn_count(), 2);
        // t1 appears first -> local 0.
        assert_eq!(ctx.txn_id(0), TxnId(1));
        assert_eq!(ctx.txn_id(1), TxnId(0));
        assert_eq!(ctx.txn_of(0), 0);
        assert_eq!(ctx.txn_of(1), 1);
        assert_eq!(ctx.steps_of(0), &[0, 2]);
        assert_eq!(ctx.steps_of(1), &[1, 3]);
        assert_eq!(ctx.seq_of(3), 1);
        assert_eq!(ctx.global_of(0, 1), 2);
    }

    #[test]
    fn level_passthrough() {
        let e = sample_exec();
        let nest = Nest::flat(2);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert_eq!(ctx.level(0, 1), 1);
        assert_eq!(ctx.level(0, 0), 2);
    }

    #[test]
    fn atomic_spec_segments() {
        let e = sample_exec();
        let nest = Nest::flat(2);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        // Level 1: the whole 2-step subsequence is one segment.
        assert_eq!(ctx.segment_end(0, 1, 0), 1);
        assert_eq!(ctx.segment_end(0, 2, 0), 0, "level k is singletons");
    }

    #[test]
    fn txn_outside_nest_rejected() {
        let e = sample_exec();
        let nest = Nest::flat(1); // covers only t0
        let err = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap_err();
        assert_eq!(
            err,
            ContextError::TxnOutsideNest {
                txn: TxnId(1),
                nest_txns: 1
            }
        );
    }

    #[test]
    fn depth_mismatch_rejected() {
        let e = sample_exec();
        let nest = Nest::flat(2); // k = 2
        let err = ExecContext::new(&e, &nest, &AtomicSpec { k: 3 }).unwrap_err();
        assert!(matches!(
            err,
            ContextError::DepthMismatch {
                nest_k: 2,
                bd_k: 3,
                ..
            }
        ));
    }

    #[test]
    fn fixed_spec_length_check() {
        let e = sample_exec();
        let nest = Nest::flat(2);
        let spec = FixedSpec::new(2).set(TxnId(1), BreakpointDescription::atomic(2, 5));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ExecContext::new(&e, &nest, &spec)
        }));
        assert!(result.is_err(), "length mismatch should panic in FixedSpec");
    }

    #[test]
    fn fixed_spec_defaults_to_atomic() {
        let e = sample_exec();
        let nest = Nest::flat(2);
        let spec = FixedSpec::new(2);
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        assert_eq!(ctx.bd(0).segments(1), vec![(0, 1)]);
    }

    #[test]
    fn free_spec_singleton_segments() {
        let e = sample_exec();
        let nest = Nest::new(3, vec![vec![0], vec![0]]).unwrap();
        let ctx = ExecContext::new(&e, &nest, &FreeSpec { k: 3 }).unwrap();
        assert_eq!(ctx.bd(0).segments(2).len(), 2, "each step its own segment");
    }
}
