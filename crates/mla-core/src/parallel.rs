//! Thread-parallel shard groups: the sharded closure engine with its
//! groups spread across a persistent worker pool.
//!
//! PR 2's [`ShardedClosureEngine`](crate::ShardedClosureEngine) made
//! decision cost proportional to the touched partition's window but
//! still applied decisions one at a time. This module adds the missing
//! concurrency: each shard-group engine is owned by a worker thread
//! (`std::thread` + `std::sync::mpsc`, no external deps), single-group
//! decisions run concurrently, and cross-group coalescing takes a
//! barrier. The observable behavior is *identical* to the serial
//! backends — `tests/sharded_engine_equivalence.rs` drives all of them
//! in lockstep against the batch-closure oracle.
//!
//! # The sequencer / stamp-order commit invariant
//!
//! Histories must stay byte-identical to the serial engine, so verdicts
//! are committed in **stamp order** even though they are computed
//! concurrently. The main thread is the sequencer: it owns the routing
//! state (shard → group, transaction → group) and the global stamp
//! counter, assigns each dispatched step its stamp *at dispatch*, and
//! workers tag committed steps with that stamp in their group mailbox.
//! Stamps may end up sparse (a denied step consumed one), but only their
//! relative order matters: the merged execution is the subsequence of
//! granted steps in offer order, exactly what the serial engine
//! produces. Within one group the worker processes steps in dispatch
//! (= offer) order over its FIFO channel, and steps in different groups
//! are provably unrelated (the disjoint-union invariant of
//! [`crate::shard`]), so per-group serial application composes to the
//! global serial outcome.
//!
//! # The coalescing barrier
//!
//! When a step crosses group boundaries the sequencer merges the two
//! groups exactly as the serial engine does — but first it must *quiesce*
//! them: it sends each owning worker a `TakeGroup` handoff request and
//! blocks until both reply. Because channels are FIFO, the reply proves
//! every previously dispatched command for that group has been applied.
//! The merge itself (stamp-ascending mailbox merge, replay into a fresh
//! engine via [`ClosureEngine::absorb_step`]) runs on the sequencer
//! thread, and the union group is installed back onto the surviving
//! slot's worker. Barrier occurrences and time spent quiescing are
//! reported in [`ParallelStats`].
//!
//! # The poison rule (pipelined batches)
//!
//! [`decide_batch`](ParallelShardedEngine::decide_batch) pipelines a
//! whole decision stream: steps are dispatched without waiting for
//! verdicts, and grants auto-commit. A denial cannot stall the pipe, so
//! it *poisons* its transaction for the remainder of the batch: the
//! worker records the cycle witness and denies every later step of that
//! transaction without applying it (its `seq` chain is broken anyway).
//! The serial backends implement `decide_batch` as the same loop, so the
//! rule is differential-tested too. Poison is cleared when the batch
//! ends; the caller then aborts or restarts the denied transactions
//! exactly as with the interactive API.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use mla_model::{Execution, Step, TxnId};

use crate::engine::{ClosureEngine, CycleWitness, EngineCounters};
use crate::nest::Nest;
use crate::spec::BreakpointSpecification;

/// A decision outcome: granted, or denied with the cycle witness.
type Verdict = Result<(), CycleWitness>;

/// Occupancy and contention statistics for a parallel engine's worker
/// pool, as reported by [`ParallelShardedEngine::stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParallelStats {
    /// Number of worker threads in the pool.
    pub workers: usize,
    /// Nanoseconds each worker spent applying commands (index = worker).
    pub worker_busy_nanos: Vec<u64>,
    /// Nanoseconds since the pool was created — the denominator for
    /// occupancy.
    pub lifetime_nanos: u64,
    /// Coalescing barriers taken (one per cross-group merge).
    pub barrier_stalls: u64,
    /// Nanoseconds the sequencer spent blocked waiting for groups to
    /// quiesce at coalescing barriers.
    pub barrier_wait_nanos: u64,
}

impl ParallelStats {
    /// Fraction of its lifetime each worker spent busy.
    pub fn occupancy(&self) -> Vec<f64> {
        if self.lifetime_nanos == 0 {
            return vec![0.0; self.worker_busy_nanos.len()];
        }
        self.worker_busy_nanos
            .iter()
            .map(|&b| b as f64 / self.lifetime_nanos as f64)
            .collect()
    }

    /// Mean worker occupancy (0.0 when the pool is empty).
    pub fn mean_occupancy(&self) -> f64 {
        let occ = self.occupancy();
        if occ.is_empty() {
            return 0.0;
        }
        occ.iter().sum::<f64>() / occ.len() as f64
    }
}

/// One shard group as owned by a worker: the partition-local engine,
/// its stamped mailbox and merge-carried counters (mirroring the serial
/// engine's group state), plus the worker-side tentative step and the
/// batch poison set.
struct WorkerGroup<S> {
    engine: ClosureEngine<S>,
    log: Vec<(u64, Step)>,
    carry: EngineCounters,
    /// Step applied tentatively, awaiting `Commit`/`Rollback`.
    tentative: Option<Step>,
    /// Transactions denied earlier in the current batch, with the
    /// witness to repeat (the poison rule).
    poisoned: HashMap<TxnId, CycleWitness>,
}

impl<S: BreakpointSpecification + Clone> WorkerGroup<S> {
    fn new(nest: &Nest, spec: &S) -> Self {
        WorkerGroup {
            engine: ClosureEngine::new(nest.clone(), spec.clone()),
            log: Vec::new(),
            carry: EngineCounters::default(),
            tentative: None,
            poisoned: HashMap::new(),
        }
    }
}

/// The command protocol between the sequencer (main thread) and the
/// workers. Per-worker channels are FIFO, which is what makes `TakeGroup`
/// a quiescing barrier and keeps per-group application in offer order.
enum Cmd<S> {
    /// Interactive tentative apply; replies with the verdict.
    Apply {
        slot: usize,
        step: Step,
        reply: Sender<Verdict>,
    },
    /// Commit the tentative step under the given stamp.
    Commit { slot: usize, stamp: u64 },
    /// Roll the tentative step back.
    Rollback { slot: usize },
    /// Pipelined decide: apply, auto-commit on grant (under `stamp`),
    /// poison the transaction on denial; report `(index, verdict)` on
    /// the shared results channel.
    Decide {
        slot: usize,
        step: Step,
        stamp: u64,
        index: usize,
    },
    /// Forget batch poison (a batch ended).
    ClearPoison,
    /// Backfill observed/written values for a performed step.
    Performed { slot: usize, step: Step },
    /// Remove a transaction (rebuild-on-abort).
    Remove { slot: usize, txn: TxnId },
    /// Evict transactions unreachable from `sources`; replies with the
    /// evicted set.
    Evict {
        slot: usize,
        sources: HashSet<TxnId>,
        reply: Sender<Vec<TxnId>>,
    },
    /// Closure predecessors of the tentative step.
    PendingPreds {
        slot: usize,
        reply: Sender<Vec<TxnId>>,
    },
    /// Schedule a rebuild in every owned group.
    ForceRebuild,
    /// Flush scheduled rebuilds in every owned group.
    FlushRebuild,
    /// Whether any owned group has a rebuild scheduled.
    RebuildPending { reply: Sender<bool> },
    /// Total live steps across owned groups.
    LiveCount { reply: Sender<usize> },
    /// Per-slot counters (carry + engine) for owned groups.
    Counters {
        reply: Sender<Vec<(usize, EngineCounters)>>,
    },
    /// All owned mailboxes, concatenated (stamps disambiguate).
    Logs { reply: Sender<Vec<(u64, Step)>> },
    /// Closure relatedness of two live steps within one group.
    Related {
        slot: usize,
        u: (TxnId, u32),
        v: (TxnId, u32),
        reply: Sender<bool>,
    },
    /// Hand the group back to the sequencer (the coalescing barrier).
    TakeGroup {
        slot: usize,
        reply: Sender<Box<WorkerGroup<S>>>,
    },
    /// Install a (merged) group onto this worker.
    InstallGroup {
        slot: usize,
        group: Box<WorkerGroup<S>>,
    },
    /// Report accumulated busy nanoseconds.
    Busy { reply: Sender<u64> },
}

/// The worker loop: owns a set of shard groups and applies commands in
/// FIFO order. Exits when the sequencer drops its sender.
fn worker_loop<S: BreakpointSpecification>(
    rx: Receiver<Cmd<S>>,
    results: Sender<(usize, Verdict)>,
    mut groups: HashMap<usize, Box<WorkerGroup<S>>>,
) {
    let mut busy = 0u64;
    while let Ok(cmd) = rx.recv() {
        let started = Instant::now();
        match cmd {
            Cmd::Apply { slot, step, reply } => {
                let g = groups.get_mut(&slot).expect("command for an owned group");
                let verdict = g.engine.apply_step(step);
                if verdict.is_ok() {
                    g.tentative = Some(step);
                }
                let _ = reply.send(verdict);
            }
            Cmd::Commit { slot, stamp } => {
                let g = groups.get_mut(&slot).expect("command for an owned group");
                g.engine.commit_step();
                let step = g.tentative.take().expect("commit without tentative step");
                g.log.push((stamp, step));
            }
            Cmd::Rollback { slot } => {
                let g = groups.get_mut(&slot).expect("command for an owned group");
                g.engine.rollback_step();
                g.tentative = None;
            }
            Cmd::Decide {
                slot,
                step,
                stamp,
                index,
            } => {
                let g = groups.get_mut(&slot).expect("command for an owned group");
                let verdict = if let Some(w) = g.poisoned.get(&step.txn) {
                    Err(w.clone())
                } else {
                    match g.engine.apply_step(step) {
                        Ok(()) => {
                            g.engine.commit_step();
                            g.log.push((stamp, step));
                            Ok(())
                        }
                        Err(w) => {
                            g.poisoned.insert(step.txn, w.clone());
                            Err(w)
                        }
                    }
                };
                let _ = results.send((index, verdict));
            }
            Cmd::ClearPoison => {
                for g in groups.values_mut() {
                    g.poisoned.clear();
                }
            }
            Cmd::Performed { slot, step } => {
                let g = groups.get_mut(&slot).expect("command for an owned group");
                g.engine.performed(&step);
                if let Some(entry) = g
                    .log
                    .iter_mut()
                    .rev()
                    .find(|(_, s)| s.txn == step.txn && s.seq == step.seq)
                {
                    entry.1.observed = step.observed;
                    entry.1.wrote = step.wrote;
                }
            }
            Cmd::Remove { slot, txn } => {
                let g = groups.get_mut(&slot).expect("command for an owned group");
                g.engine.remove_txn(txn);
                g.log.retain(|(_, s)| s.txn != txn);
            }
            Cmd::Evict {
                slot,
                sources,
                reply,
            } => {
                let g = groups.get_mut(&slot).expect("command for an owned group");
                let out = g.engine.evict_unreachable(|t| sources.contains(&t));
                if !out.is_empty() {
                    g.log.retain(|(_, s)| !out.contains(&s.txn));
                }
                let _ = reply.send(out);
            }
            Cmd::PendingPreds { slot, reply } => {
                let g = groups.get(&slot).expect("command for an owned group");
                let _ = reply.send(g.engine.pending_predecessors());
            }
            Cmd::ForceRebuild => {
                for g in groups.values_mut() {
                    g.engine.force_rebuild();
                }
            }
            Cmd::FlushRebuild => {
                for g in groups.values_mut() {
                    g.engine.flush_rebuild();
                }
            }
            Cmd::RebuildPending { reply } => {
                let _ = reply.send(groups.values().any(|g| g.engine.rebuild_pending()));
            }
            Cmd::LiveCount { reply } => {
                let _ = reply.send(groups.values().map(|g| g.engine.live_count()).sum());
            }
            Cmd::Counters { reply } => {
                let _ = reply.send(
                    groups
                        .iter()
                        .map(|(&slot, g)| (slot, g.carry + *g.engine.counters()))
                        .collect(),
                );
            }
            Cmd::Logs { reply } => {
                let _ = reply.send(
                    groups
                        .values()
                        .flat_map(|g| g.log.iter().copied())
                        .collect(),
                );
            }
            Cmd::Related { slot, u, v, reply } => {
                let g = groups.get(&slot).expect("command for an owned group");
                let engine = &g.engine;
                let row = |(t, s): (TxnId, u32)| -> Option<usize> {
                    let lt = engine.local_of(t)?;
                    engine.steps_of(lt).get(s as usize).copied()
                };
                let related = match (row(u), row(v)) {
                    (Some(ru), Some(rv)) => engine.related(ru, rv),
                    _ => false,
                };
                let _ = reply.send(related);
            }
            Cmd::TakeGroup { slot, reply } => {
                let g = groups.remove(&slot).expect("taking an owned group");
                let _ = reply.send(g);
            }
            Cmd::InstallGroup { slot, group } => {
                groups.insert(slot, group);
            }
            Cmd::Busy { reply } => {
                let _ = reply.send(busy);
            }
        }
        busy += started.elapsed().as_nanos() as u64;
    }
}

/// A tentative step pending resolution (sequencer-side mirror).
struct Pending {
    group: usize,
    step: Step,
    new_txn: bool,
}

/// The thread-parallel sharded closure engine: the sequencer (this
/// struct, living on the caller's thread) owns routing and stamps, a
/// persistent pool of worker threads owns the shard-group engines
/// (group slot `g` lives on worker `g % workers`), and the two sides
/// speak the FIFO [`Cmd`] protocol. Decision-for-decision equivalent to
/// [`ShardedClosureEngine`](crate::ShardedClosureEngine) — see the
/// [module docs](self) for the invariants that make it so.
pub struct ParallelShardedEngine<S> {
    nest: Nest,
    spec: S,
    shards: usize,
    workers: usize,
    /// Shard -> owning group slot (updated eagerly on merge).
    shard_group: Vec<usize>,
    /// Group slot -> owning worker; merged-away slots become `None`.
    group_worker: Vec<Option<usize>>,
    /// Transaction -> its group (the grouping invariant).
    txn_group: HashMap<TxnId, usize>,
    /// Global commit stamp, totally ordering steps across groups.
    stamp: u64,
    pending: Option<Pending>,
    /// Groups whose state changed since the last eviction pass.
    touched: BTreeSet<usize>,
    merges: u64,
    barrier_stalls: u64,
    barrier_wait_nanos: u64,
    created: Instant,
    senders: Vec<Sender<Cmd<S>>>,
    results: Receiver<(usize, Verdict)>,
    handles: Vec<JoinHandle<()>>,
}

impl<S: BreakpointSpecification + Clone + Send + 'static> ParallelShardedEngine<S> {
    /// Spawns a pool of `workers >= 1` threads owning `shards >= 1`
    /// shard groups (slot `g` on worker `g % workers`).
    pub fn new(nest: Nest, spec: S, shards: usize, workers: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(workers >= 1, "at least one worker");
        let workers = workers.min(shards);
        let (results_tx, results_rx) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let mut owned: HashMap<usize, Box<WorkerGroup<S>>> = HashMap::new();
            for slot in (w..shards).step_by(workers) {
                owned.insert(slot, Box::new(WorkerGroup::new(&nest, &spec)));
            }
            let (tx, rx) = channel();
            let results = results_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mla-shard-worker-{w}"))
                    .spawn(move || worker_loop(rx, results, owned))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        ParallelShardedEngine {
            nest,
            spec,
            shards,
            workers,
            shard_group: (0..shards).collect(),
            group_worker: (0..shards).map(|g| Some(g % workers)).collect(),
            txn_group: HashMap::new(),
            stamp: 0,
            pending: None,
            touched: BTreeSet::new(),
            merges: 0,
            barrier_stalls: 0,
            barrier_wait_nanos: 0,
            created: Instant::now(),
            senders,
            results: results_rx,
            handles,
        }
    }

    /// Number of configured shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of live (non-coalesced) groups.
    pub fn group_count(&self) -> usize {
        self.group_worker.iter().flatten().count()
    }

    /// How many group coalescences have happened.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    fn shard_of(&self, step: &Step) -> usize {
        step.entity.0 as usize % self.shards
    }

    fn worker_of(&self, slot: usize) -> usize {
        self.group_worker[slot].expect("group slot is live")
    }

    fn send(&self, worker: usize, cmd: Cmd<S>) {
        self.senders[worker].send(cmd).expect("worker is alive");
    }

    /// Offers one step tentatively — the parallel mirror of
    /// [`ShardedClosureEngine::apply_step`](crate::ShardedClosureEngine::apply_step):
    /// route (coalescing first if the transaction's group differs from
    /// the entity's), dispatch to the owning worker, block for the
    /// verdict.
    pub fn apply_step(&mut self, step: Step) -> Result<(), CycleWitness> {
        assert!(
            self.pending.is_none(),
            "previous tentative step not resolved"
        );
        let home = self.shard_group[self.shard_of(&step)];
        let new_txn = !self.txn_group.contains_key(&step.txn);
        let group = match self.txn_group.get(&step.txn).copied() {
            Some(g) if g != home => self.merge(g, home),
            Some(g) => g,
            None => home,
        };
        let (tx, rx) = channel();
        self.send(
            self.worker_of(group),
            Cmd::Apply {
                slot: group,
                step,
                reply: tx,
            },
        );
        match rx.recv().expect("worker is alive") {
            Ok(()) => {
                self.pending = Some(Pending {
                    group,
                    step,
                    new_txn,
                });
                Ok(())
            }
            Err(witness) => Err(witness),
        }
    }

    /// Commits the pending step under the next stamp (the sequencer
    /// assigns stamps strictly in commit order on this path).
    pub fn commit_step(&mut self) {
        let p = self.pending.take().expect("no pending step to commit");
        let stamp = self.stamp;
        self.stamp += 1;
        self.send(
            self.worker_of(p.group),
            Cmd::Commit {
                slot: p.group,
                stamp,
            },
        );
        if p.new_txn {
            self.txn_group.insert(p.step.txn, p.group);
        }
        self.touched.insert(p.group);
    }

    /// Undoes the pending step (a merge the attempt triggered stays —
    /// merging is monotone and semantics-preserving).
    pub fn rollback_step(&mut self) {
        let p = self.pending.take().expect("no pending step to roll back");
        self.send(self.worker_of(p.group), Cmd::Rollback { slot: p.group });
    }

    /// Whether a tentative step is pending resolution.
    pub fn pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Decides a whole stream pipelined: steps are dispatched with their
    /// stamps without waiting for verdicts, grants auto-commit on the
    /// workers, denials poison their transaction for the rest of the
    /// batch (see the [module docs](self)), and the sequencer collects
    /// `(index, verdict)` pairs back into offer order. Equivalent to the
    /// serial loop `apply_step` → `commit_step`-on-grant with the same
    /// poison rule.
    pub fn decide_batch(&mut self, steps: &[Step]) -> Vec<Result<(), CycleWitness>> {
        assert!(
            self.pending.is_none(),
            "resolve the pending step before a batch"
        );
        // Optimistic routing: a new transaction is routed at dispatch so
        // its later steps in the same batch follow it; if none of its
        // steps end up granted, the routing is withdrawn below.
        let mut batch_new: Vec<TxnId> = Vec::new();
        for (index, &step) in steps.iter().enumerate() {
            let home = self.shard_group[self.shard_of(&step)];
            let group = match self.txn_group.get(&step.txn).copied() {
                Some(g) if g != home => self.merge(g, home),
                Some(g) => g,
                None => {
                    self.txn_group.insert(step.txn, home);
                    batch_new.push(step.txn);
                    home
                }
            };
            let stamp = self.stamp;
            self.stamp += 1;
            self.send(
                self.worker_of(group),
                Cmd::Decide {
                    slot: group,
                    step,
                    stamp,
                    index,
                },
            );
        }
        let mut verdicts: Vec<Option<Verdict>> = steps.iter().map(|_| None).collect();
        for _ in 0..steps.len() {
            let (index, verdict) = self.results.recv().expect("worker is alive");
            verdicts[index] = Some(verdict);
        }
        let verdicts: Vec<Verdict> = verdicts
            .into_iter()
            .map(|v| v.expect("every dispatched index reports"))
            .collect();
        let granted: HashSet<TxnId> = steps
            .iter()
            .zip(&verdicts)
            .filter(|(_, v)| v.is_ok())
            .map(|(s, _)| s.txn)
            .collect();
        for t in batch_new {
            if !granted.contains(&t) {
                self.txn_group.remove(&t);
            }
        }
        for (s, v) in steps.iter().zip(&verdicts) {
            if v.is_ok() {
                let g = self.txn_group[&s.txn];
                self.touched.insert(g);
            }
        }
        for tx in &self.senders {
            tx.send(Cmd::ClearPoison).expect("worker is alive");
        }
        verdicts
    }

    /// Mirrors [`ShardedClosureEngine::performed`](crate::ShardedClosureEngine::performed).
    pub fn performed(&mut self, step: &Step) {
        let Some(&g) = self.txn_group.get(&step.txn) else {
            return;
        };
        self.send(
            self.worker_of(g),
            Cmd::Performed {
                slot: g,
                step: *step,
            },
        );
    }

    /// Mirrors [`ShardedClosureEngine::remove_txn`](crate::ShardedClosureEngine::remove_txn).
    pub fn remove_txn(&mut self, t: TxnId) {
        assert!(
            self.pending.is_none(),
            "resolve the pending step before removal"
        );
        let Some(g) = self.txn_group.remove(&t) else {
            return;
        };
        self.send(self.worker_of(g), Cmd::Remove { slot: g, txn: t });
        self.touched.insert(g);
    }

    /// The per-shard eviction projection, run concurrently: the
    /// sequencer materializes each touched group's source set (every
    /// routed transaction of the group passing `is_source` — live
    /// columns are exactly the routed transactions), fans the requests
    /// out, and unions the replies. Same evictions as the serial scoped
    /// pass, ascending.
    pub fn evict_unreachable(&mut self, is_source: impl Fn(TxnId) -> bool) -> Vec<TxnId> {
        assert!(
            self.pending.is_none(),
            "resolve the pending step before eviction"
        );
        let scope: Vec<usize> = std::mem::take(&mut self.touched).into_iter().collect();
        let mut replies = Vec::with_capacity(scope.len());
        for &g in &scope {
            let sources: HashSet<TxnId> = self
                .txn_group
                .iter()
                .filter(|&(_, &grp)| grp == g)
                .map(|(&t, _)| t)
                .filter(|&t| is_source(t))
                .collect();
            let (tx, rx) = channel();
            self.send(
                self.worker_of(g),
                Cmd::Evict {
                    slot: g,
                    sources,
                    reply: tx,
                },
            );
            replies.push(rx);
        }
        let mut evicted: Vec<TxnId> = Vec::new();
        for rx in replies {
            evicted.extend(rx.recv().expect("worker is alive"));
        }
        for &t in &evicted {
            self.txn_group.remove(&t);
        }
        evicted.sort_unstable_by_key(|t| t.0);
        evicted
    }

    /// Closure predecessors of the pending step, answered by the one
    /// worker holding it.
    pub fn pending_predecessors(&self) -> Vec<TxnId> {
        let p = self.pending.as_ref().expect("no pending step to probe");
        let (tx, rx) = channel();
        self.send(
            self.worker_of(p.group),
            Cmd::PendingPreds {
                slot: p.group,
                reply: tx,
            },
        );
        rx.recv().expect("worker is alive")
    }

    /// Schedules a rebuild in every group.
    pub fn force_rebuild(&mut self) {
        for tx in &self.senders {
            tx.send(Cmd::ForceRebuild).expect("worker is alive");
        }
    }

    /// Flushes scheduled rebuilds in every group.
    pub fn flush_rebuild(&mut self) {
        for tx in &self.senders {
            tx.send(Cmd::FlushRebuild).expect("worker is alive");
        }
    }

    /// Whether any group has a rebuild scheduled.
    pub fn rebuild_pending(&self) -> bool {
        self.broadcast_query(|reply| Cmd::RebuildPending { reply })
            .into_iter()
            .any(|b| b)
    }

    /// Total live steps across groups.
    pub fn live_count(&self) -> usize {
        self.broadcast_query(|reply| Cmd::LiveCount { reply })
            .into_iter()
            .sum()
    }

    /// Work counters per live group, in slot order — the same order and
    /// values as the serial sharded engine's
    /// [`shard_counters`](crate::ShardedClosureEngine::shard_counters).
    pub fn shard_counters(&self) -> Vec<EngineCounters> {
        let mut tagged: Vec<(usize, EngineCounters)> = self
            .broadcast_query(|reply| Cmd::Counters { reply })
            .into_iter()
            .flatten()
            .collect();
        tagged.sort_unstable_by_key(|&(slot, _)| slot);
        tagged.into_iter().map(|(_, c)| c).collect()
    }

    /// Engine-wide work counters (the sum over groups).
    pub fn counters(&self) -> EngineCounters {
        self.shard_counters().into_iter().sum()
    }

    /// The live steps across all groups as one [`Execution`], in global
    /// stamp order — byte-identical to the serial backends for the same
    /// decision sequence.
    pub fn execution(&self) -> Execution {
        let mut stamped: Vec<(u64, Step)> = self
            .broadcast_query(|reply| Cmd::Logs { reply })
            .into_iter()
            .flatten()
            .collect();
        stamped.sort_unstable_by_key(|&(stamp, _)| stamp);
        Execution::new(stamped.into_iter().map(|(_, s)| s).collect::<Vec<_>>())
            .expect("group mailboxes preserve per-transaction order")
    }

    /// Whether step `u` precedes step `v` in the maintained (union)
    /// closure. Steps in different groups are never related.
    pub fn related_steps(&self, u: (TxnId, u32), v: (TxnId, u32)) -> bool {
        let (Some(&gu), Some(&gv)) = (self.txn_group.get(&u.0), self.txn_group.get(&v.0)) else {
            return false;
        };
        if gu != gv {
            return false;
        }
        let (tx, rx) = channel();
        self.send(
            self.worker_of(gu),
            Cmd::Related {
                slot: gu,
                u,
                v,
                reply: tx,
            },
        );
        rx.recv().expect("worker is alive")
    }

    /// Worker-pool occupancy and barrier statistics so far.
    pub fn stats(&self) -> ParallelStats {
        let worker_busy_nanos = self.broadcast_query(|reply| Cmd::Busy { reply });
        ParallelStats {
            workers: self.workers,
            worker_busy_nanos,
            lifetime_nanos: self.created.elapsed().as_nanos() as u64,
            barrier_stalls: self.barrier_stalls,
            barrier_wait_nanos: self.barrier_wait_nanos,
        }
    }

    /// Sends one query command to every worker and collects the replies
    /// in worker order.
    fn broadcast_query<T>(&self, make: impl Fn(Sender<T>) -> Cmd<S>) -> Vec<T> {
        let mut replies = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (rtx, rrx) = channel();
            tx.send(make(rtx)).expect("worker is alive");
            replies.push(rrx);
        }
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("worker is alive"))
            .collect()
    }

    /// Coalesces two groups: quiesce both owners (the barrier), merge
    /// the stamped mailboxes and replay into a fresh engine on the
    /// sequencer thread (exactly the serial merge), install the union
    /// onto the surviving slot's worker, repoint routing. Returns the
    /// surviving slot.
    fn merge(&mut self, a: usize, b: usize) -> usize {
        debug_assert_ne!(a, b);
        let (dst, src) = (a.min(b), a.max(b));
        let src_worker = self.worker_of(src);
        let dst_worker = self.worker_of(dst);
        let barrier_started = Instant::now();
        let (stx, srx) = channel();
        self.send(
            src_worker,
            Cmd::TakeGroup {
                slot: src,
                reply: stx,
            },
        );
        let (dtx, drx) = channel();
        self.send(
            dst_worker,
            Cmd::TakeGroup {
                slot: dst,
                reply: dtx,
            },
        );
        let gs = srx.recv().expect("worker is alive");
        let gd = drx.recv().expect("worker is alive");
        self.barrier_stalls += 1;
        self.barrier_wait_nanos += barrier_started.elapsed().as_nanos() as u64;
        debug_assert!(
            gs.tentative.is_none() && gd.tentative.is_none(),
            "groups quiesce with no tentative step"
        );
        let carry = gd.carry + *gd.engine.counters() + gs.carry + *gs.engine.counters();
        // Merge the two stamp-ascending mailboxes.
        let mut log: Vec<(u64, Step)> = Vec::with_capacity(gd.log.len() + gs.log.len());
        let (mut i, mut j) = (0, 0);
        while i < gd.log.len() || j < gs.log.len() {
            let from_dst = j >= gs.log.len() || (i < gd.log.len() && gd.log[i].0 < gs.log[j].0);
            if from_dst {
                log.push(gd.log[i]);
                i += 1;
            } else {
                log.push(gs.log[j]);
                j += 1;
            }
        }
        let mut engine = ClosureEngine::new(self.nest.clone(), self.spec.clone());
        for &(_, s) in &log {
            engine
                .absorb_step(s)
                .expect("disjoint acyclic shard histories merge acyclically");
        }
        let mut poisoned = gd.poisoned;
        poisoned.extend(gs.poisoned);
        for g in self.shard_group.iter_mut() {
            if *g == src {
                *g = dst;
            }
        }
        for g in self.txn_group.values_mut() {
            if *g == src {
                *g = dst;
            }
        }
        if self.touched.remove(&src) {
            self.touched.insert(dst);
        }
        self.group_worker[src] = None;
        self.send(
            dst_worker,
            Cmd::InstallGroup {
                slot: dst,
                group: Box::new(WorkerGroup {
                    engine,
                    log,
                    carry,
                    tentative: None,
                    poisoned,
                }),
            },
        );
        self.merges += 1;
        dst
    }
}

impl<S> Drop for ParallelShardedEngine<S> {
    fn drop(&mut self) {
        // Dropping the senders closes every worker's channel; the loops
        // exit and the threads join.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedClosureEngine;
    use crate::spec::AtomicSpec;
    use mla_model::EntityId;

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    /// Drives the same step list through the serial sharded engine and a
    /// parallel one interactively, asserting verdict agreement.
    fn drive(
        shards: usize,
        workers: usize,
        order: &[Step],
    ) -> (
        ShardedClosureEngine<AtomicSpec>,
        ParallelShardedEngine<AtomicSpec>,
    ) {
        let nest = Nest::flat(8);
        let spec = AtomicSpec { k: 2 };
        let mut serial = ShardedClosureEngine::new(nest.clone(), spec.clone(), shards);
        let mut parallel = ParallelShardedEngine::new(nest, spec, shards, workers);
        for &s in order {
            let a = serial.apply_step(s);
            let b = parallel.apply_step(s);
            assert_eq!(a.is_ok(), b.is_ok(), "verdict diverged at {s:?}");
            if a.is_ok() {
                serial.commit_step();
                parallel.commit_step();
            }
        }
        (serial, parallel)
    }

    #[test]
    fn interactive_path_matches_serial_sharded() {
        let order = [
            step(0, 0, 0),
            step(1, 0, 1),
            step(0, 1, 2),
            step(1, 1, 3),
            step(2, 0, 0),
            step(2, 1, 1), // crosses: merges groups 0 and 1
        ];
        let (serial, parallel) = drive(4, 2, &order);
        assert_eq!(parallel.merge_count(), serial.merge_count());
        assert_eq!(parallel.group_count(), serial.group_count());
        assert_eq!(parallel.live_count(), serial.live_count());
        assert_eq!(parallel.execution().steps(), serial.execution().steps());
        assert_eq!(parallel.shard_counters(), serial.shard_counters());
        assert!(parallel.related_steps((TxnId(0), 0), (TxnId(2), 0)));
        assert!(!parallel.related_steps((TxnId(0), 0), (TxnId(1), 0)));
    }

    #[test]
    fn batch_matches_interactive_history() {
        let order = [
            step(0, 0, 0),
            step(1, 0, 1),
            step(0, 1, 2),
            step(1, 1, 3),
            step(2, 0, 2),
            step(3, 0, 3),
        ];
        let (serial, _) = drive(4, 2, &order);
        let mut batch = ParallelShardedEngine::new(Nest::flat(8), AtomicSpec { k: 2 }, 4, 2);
        let verdicts = batch.decide_batch(&order);
        assert!(verdicts.iter().all(|v| v.is_ok()));
        assert_eq!(batch.execution().steps(), serial.execution().steps());
        assert_eq!(batch.counters(), serial.counters());
    }

    #[test]
    fn batch_denial_poisons_rest_of_transaction() {
        // The classic weave: t0 and t1 conflict on entities 0 and 1 in
        // opposite orders; t0's closing step must be denied, and a
        // further t0 step in the same batch must be denied by poison
        // (not applied) with the same witness.
        let order = [
            step(0, 0, 0),
            step(1, 0, 0),
            step(1, 1, 1),
            step(0, 1, 1), // closes the cycle: denied
            step(0, 2, 2), // poisoned: same witness, never applied
        ];
        let mut serial = EngineSerialBatch::run(&order);
        let mut parallel = ParallelShardedEngine::new(Nest::flat(4), AtomicSpec { k: 2 }, 2, 2);
        let verdicts = parallel.decide_batch(&order);
        assert!(verdicts[0].is_ok() && verdicts[1].is_ok() && verdicts[2].is_ok());
        let w3 = verdicts[3].as_ref().unwrap_err();
        let w4 = verdicts[4].as_ref().unwrap_err();
        assert_eq!(w3.txns, w4.txns, "poison repeats the original witness");
        assert_eq!(
            parallel.execution().steps(),
            serial.execution().steps(),
            "denied steps leave no trace"
        );
        // The denied transaction keeps its earlier granted steps and
        // stays routed; a fresh batch is not poisoned.
        let retry = [step(2, 0, 2)];
        assert!(parallel.decide_batch(&retry)[0].is_ok());
        assert!(serial.apply_step(retry[0]).is_ok());
        serial.commit_step();
        assert_eq!(parallel.execution().steps(), serial.execution().steps());
    }

    /// Tiny helper: the serial poison-loop semantics, for comparison.
    struct EngineSerialBatch;
    impl EngineSerialBatch {
        fn run(order: &[Step]) -> ShardedClosureEngine<AtomicSpec> {
            let mut e = ShardedClosureEngine::new(Nest::flat(4), AtomicSpec { k: 2 }, 2);
            let mut poisoned: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
            for &s in order {
                if poisoned.contains(&s.txn) {
                    continue;
                }
                match e.apply_step(s) {
                    Ok(()) => e.commit_step(),
                    Err(_) => {
                        poisoned.insert(s.txn);
                    }
                }
            }
            e
        }
    }

    #[test]
    fn eviction_matches_serial_projection() {
        let order = [
            step(0, 0, 0),
            step(0, 1, 2),
            step(1, 0, 0),
            step(1, 1, 2),
            step(2, 0, 1),
        ];
        let (mut serial, mut parallel) = drive(2, 2, &order);
        let committed = |t: TxnId| t != TxnId(0);
        let es = serial.evict_unreachable(committed);
        let ep = parallel.evict_unreachable(committed);
        assert_eq!(ep, es);
        assert_eq!(ep, vec![TxnId(0)]);
        assert_eq!(parallel.live_count(), serial.live_count());
    }

    #[test]
    fn stats_report_pool_shape_and_barriers() {
        let order = [step(0, 0, 0), step(1, 0, 1), step(0, 1, 1)];
        let (_, parallel) = drive(2, 2, &order);
        let stats = parallel.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.worker_busy_nanos.len(), 2);
        assert_eq!(stats.barrier_stalls, 1, "one merge, one barrier");
        assert!(stats.lifetime_nanos > 0);
        assert_eq!(stats.occupancy().len(), 2);
        assert!(stats.mean_occupancy() >= 0.0);
    }

    #[test]
    fn workers_clamped_to_shards() {
        let parallel = ParallelShardedEngine::new(Nest::flat(4), AtomicSpec { k: 2 }, 2, 8);
        assert_eq!(parallel.workers(), 2);
    }

    #[test]
    fn rollback_and_rebuild_paths() {
        let nest = Nest::flat(4);
        let spec = AtomicSpec { k: 2 };
        let mut parallel = ParallelShardedEngine::new(nest, spec, 2, 2);
        parallel.apply_step(step(0, 0, 0)).unwrap();
        assert_eq!(parallel.pending_predecessors(), Vec::<TxnId>::new());
        parallel.rollback_step();
        // Routing did not persist: the transaction may route afresh.
        parallel.apply_step(step(0, 0, 1)).unwrap();
        parallel.commit_step();
        assert_eq!(parallel.merge_count(), 0);
        parallel.force_rebuild();
        assert!(parallel.rebuild_pending());
        parallel.flush_rebuild();
        assert!(!parallel.rebuild_pending());
        assert_eq!(parallel.live_count(), 1);
    }
}
