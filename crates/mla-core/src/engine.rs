//! Online maintenance of the coherent closure — the incremental engine
//! behind the §6 schedulers.
//!
//! [`CoherentClosure::compute`](crate::closure::CoherentClosure::compute)
//! rebuilds the whole frontier matrix from scratch for every execution it
//! is handed; a scheduler calling it once per decision pays `O(n² · T)`
//! *per step*. [`ClosureEngine`] maintains the same fixpoint *across*
//! decisions and charges each decision only for the rows its new step
//! actually disturbs:
//!
//! * [`ClosureEngine::apply_step`] appends one tentative step and runs a
//!   worklist fixpoint seeded with exactly the rows the append can
//!   affect. It returns `Ok(())` — leaving the step pending — or a
//!   concrete [`CycleWitness`] after rolling the attempt back.
//! * [`ClosureEngine::commit_step`] / [`ClosureEngine::rollback_step`]
//!   resolve a pending step. Rollback replays an undo journal, so a
//!   deferred or rejected candidate costs only the work its own fixpoint
//!   did.
//! * [`ClosureEngine::evict`] projects a committed transaction out of the
//!   maintained state in `O(window)` without recomputation.
//! * [`ClosureEngine::remove_txn`] handles aborts by scheduling a *full
//!   rebuild* (the rebuild-on-abort invariant): removal can only shrink
//!   the relation, so replaying the surviving steps is always cycle-free,
//!   and it is the one place the engine pays batch cost.
//!
//! # How incrementality stays sound
//!
//! The engine keeps three structures in lockstep:
//!
//! 1. the **frontier matrix** `m[v][t]` of
//!    [`CoherentClosure`](crate::closure::CoherentClosure), updated
//!    monotonically by the same three rules (base edges, condition-(b)
//!    segment lift, transitivity through the frontier step);
//! 2. a **dependency index** `dependents[u]` = rows that pulled row `u`
//!    via transitivity, so a later growth of `u`'s row re-triggers exactly
//!    the rows that could observe it;
//! 3. an [`IncrementalTopo`] holding one edge per maintained frontier
//!    entry plus each transaction's intra chain. Reachability in this
//!    graph equals the closure relation at fixpoint, so Pearce–Kelly edge
//!    insertion is an *authoritative online acyclicity check*: the first
//!    frontier increment that would relate a step before itself is
//!    rejected with a real cycle path, which becomes the
//!    [`CycleWitness`].
//!
//! The only cross-row trigger an append needs beyond `dependents` is the
//! condition-(b) *segment extension*: when transaction `t'` performs step
//! `s`, a row `v` of another transaction can gain `(t', s)` only if its
//! frontier already sat at `s - 1` — the previous end of `t'`'s last
//! segment (the §6 breakpoint-compatibility condition guarantees earlier
//! segments never change). Those rows are exactly the topo successors of
//! `t'`'s previous step, which seed the worklist together with the new
//! row.
//!
//! # Invariants
//!
//! * Committed engine state is always acyclic; cyclic candidates never
//!   commit (they are rolled back inside [`ClosureEngine::apply_step`]).
//! * For every live row `v` and transaction column `t` with
//!   `m[v][t] != NONE`, the topo contains the edge
//!   `steps_of(t)[m[v][t]] -> v` (or `v` is that step itself).
//! * Aborted transactions schedule [`needs_rebuild`]; the rebuild is lazy
//!   (performed at the next [`ClosureEngine::apply_step`]) and compacts
//!   dead rows out of the arena.
//! * Breakpoint descriptions are refreshed per append from the *stored*
//!   steps, whose values [`ClosureEngine::performed`] keeps in sync with
//!   the store — so a position-based specification sees exactly what the
//!   batch checker would. Value-*dependent* specifications are outside
//!   the engine's contract (debug builds assert against them).
//!
//! [`needs_rebuild`]: ClosureEngine::rebuild_pending

use std::collections::VecDeque;

use mla_graph::topo::Cycle;
use mla_graph::{BitSet, DenseMap, IncrementalTopo, PairSummary};
use mla_model::{EntityId, Execution, Step, TxnId};

use crate::breakpoints::BreakpointDescription;
use crate::nest::Nest;
use crate::spec::BreakpointSpecification;

/// Sentinel for "no related predecessor from this transaction".
const NONE: i64 = -1;

/// Work counters the engine accumulates; schedulers surface these as
/// decision-cost metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Steps offered via [`ClosureEngine::apply_step`] (including
    /// rejected and rolled-back ones, excluding rebuild replays).
    pub steps_applied: u64,
    /// Closure edges inserted into the incremental topological order
    /// (frontier increments), including those re-inserted by rebuilds.
    pub edges_inserted: u64,
    /// Worklist rows processed across all fixpoints — the per-decision
    /// work measure.
    pub rows_touched: u64,
    /// Full rebuilds performed (abort handling and dead-row compaction).
    pub rebuilds: u64,
    /// Tentative steps rolled back (cycle rejections and scheduler
    /// defers).
    pub rollbacks: u64,
}

impl std::ops::AddAssign for EngineCounters {
    fn add_assign(&mut self, rhs: EngineCounters) {
        self.steps_applied += rhs.steps_applied;
        self.edges_inserted += rhs.edges_inserted;
        self.rows_touched += rhs.rows_touched;
        self.rebuilds += rhs.rebuilds;
        self.rollbacks += rhs.rollbacks;
    }
}

impl std::ops::Add for EngineCounters {
    type Output = EngineCounters;

    fn add(mut self, rhs: EngineCounters) -> EngineCounters {
        self += rhs;
        self
    }
}

impl std::iter::Sum for EngineCounters {
    fn sum<I: Iterator<Item = EngineCounters>>(iter: I) -> EngineCounters {
        iter.fold(EngineCounters::default(), |acc, c| acc + c)
    }
}

/// A stable-identity snapshot of the maintained relation: for each live
/// step `(txn, seq)`, the frontier entries `(other_txn, frontier_seq)`
/// over columns that still have live rows, everything sorted. Two
/// engines hold the same relation iff their signatures are equal —
/// regardless of arena row order or column creation order, which differ
/// legitimately between schedules that perform the same steps.
pub type RelationSignature = Vec<((u32, u32), Vec<(u32, i64)>)>;

/// Outcome of a two-step commutativity probe
/// ([`ClosureEngine::probe_pair`]). The probe is fully rolled back
/// before this is returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairProbe {
    /// Whether the first step was granted.
    pub first_ok: bool,
    /// Whether the second step was granted (after the first).
    pub second_ok: bool,
    /// The relation signature after both steps, when both were granted.
    pub signature: Option<RelationSignature>,
}

/// A concrete closure cycle reported by [`ClosureEngine::apply_step`],
/// already translated from arena rows to stable step identities (the
/// tentative row is rolled back before this is returned).
#[derive(Clone, Debug)]
pub struct CycleWitness {
    /// The cycle as `(transaction, seq)` pairs in path order; consecutive
    /// entries (wrapping around) are related by the closure.
    pub steps: Vec<(TxnId, u32)>,
    /// Distinct transactions on the cycle, ascending — the scheduler's
    /// victim candidates.
    pub txns: Vec<TxnId>,
}

/// Undo-journal entries for one tentative [`ClosureEngine::apply_step`].
/// Replayed in reverse by [`ClosureEngine::rollback_step`].
enum Op {
    /// `txns`/`local`/`txn_steps`/`bds` grew by one and every frontier
    /// row gained a trailing column.
    NewTxn,
    /// The step arena (and all row-parallel vectors) grew by one.
    NewRow,
    /// A transaction's breakpoint description was refreshed.
    BdChanged {
        txn: usize,
        old: BreakpointDescription,
    },
    /// `m[row][col]` was raised from `old`.
    Frontier { row: u32, col: u32, old: i64 },
    /// Edge inserted into the topo.
    EdgeInserted { from: u32, to: u32 },
    /// Superseded frontier edge removed from the topo.
    EdgeRemoved { from: u32, to: u32 },
}

/// Incremental coherent-closure maintenance: per-step delta cost instead
/// of per-step full recomputation. See the [module docs](self) for the
/// architecture and soundness argument.
pub struct ClosureEngine<S> {
    nest: Nest,
    spec: S,
    /// Column index -> TxnId, in order of first (surviving) appearance.
    txns: Vec<TxnId>,
    /// Inverse of `txns` for transactions that may still grow. Dense
    /// (`TxnId`s are arena-style): one indexed load per decision-loop
    /// lookup instead of a hash probe.
    local: DenseMap,
    /// Step arena in performance order; dead (evicted/aborted) rows stay
    /// until the next rebuild compacts them.
    steps: Vec<Step>,
    step_txn: Vec<usize>,
    step_seq: Vec<usize>,
    /// Column -> its arena rows, ascending.
    txn_steps: Vec<Vec<usize>>,
    /// Column -> current breakpoint description of its subsequence.
    bds: Vec<BreakpointDescription>,
    /// The frontier matrix (see `closure.rs`).
    m: Vec<Vec<i64>>,
    /// `dependents[u]` = rows that unioned row `u` (re-processed when
    /// `u`'s row grows). Bitset rows: registering a dependent is one bit
    /// test instead of a linear scan of the row's dependents. Entries may
    /// go stale after rollbacks; stale rows are skipped at pop time.
    dependents: Vec<BitSet>,
    /// One node per arena row; edges mirror the maintained frontier plus
    /// intra chains. Rejecting an insertion = closure cycle.
    topo: IncrementalTopo,
    /// Entity -> arena rows that touched it, ascending (dead rows are
    /// skipped when seeding base conflicts). Indexed by `EntityId` —
    /// entity spaces are dense, so the per-append lookup is a load.
    entity_rows: Vec<Vec<u32>>,
    dead: Vec<bool>,
    dead_count: usize,
    needs_rebuild: bool,
    tentative: bool,
    journal: Vec<Op>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    counters: EngineCounters,
}

impl<S: BreakpointSpecification> ClosureEngine<S> {
    /// An empty engine for the given nest and specification.
    pub fn new(nest: Nest, spec: S) -> Self {
        ClosureEngine {
            nest,
            spec,
            txns: Vec::new(),
            local: DenseMap::new(),
            steps: Vec::new(),
            step_txn: Vec::new(),
            step_seq: Vec::new(),
            txn_steps: Vec::new(),
            bds: Vec::new(),
            m: Vec::new(),
            dependents: Vec::new(),
            topo: IncrementalTopo::new(0),
            entity_rows: Vec::new(),
            dead: Vec::new(),
            dead_count: 0,
            needs_rebuild: false,
            tentative: false,
            journal: Vec::new(),
            queue: VecDeque::new(),
            in_queue: Vec::new(),
            counters: EngineCounters::default(),
        }
    }

    /// Offers one step, tentatively. On `Ok` the step is *pending*:
    /// resolve it with [`commit_step`](Self::commit_step) (the scheduler
    /// granted it) or [`rollback_step`](Self::rollback_step) (deferred).
    /// On `Err` the engine has already rolled the attempt back and
    /// returns the closure cycle the step would have created.
    ///
    /// Steps must arrive in per-transaction sequence order (the
    /// scheduler's performance order). A scheduled rebuild (see
    /// [`remove_txn`](Self::remove_txn)) runs first.
    pub fn apply_step(&mut self, step: Step) -> Result<(), CycleWitness> {
        assert!(!self.tentative, "previous tentative step not resolved");
        if self.needs_rebuild {
            self.rebuild();
        }
        self.counters.steps_applied += 1;
        self.tentative = true;
        match self.apply_inner(step) {
            Ok(()) => Ok(()),
            Err(cycle) => {
                let witness = self.witness_from(&cycle);
                self.rollback_step();
                Err(witness)
            }
        }
    }

    /// Makes the pending step permanent.
    pub fn commit_step(&mut self) {
        assert!(self.tentative, "no pending step to commit");
        self.journal.clear();
        self.tentative = false;
    }

    /// Replays a step through the full apply pipeline and commits it
    /// immediately, *without* counting it as an offered decision
    /// (`steps_applied` stays put). This is the shard-merge path: when
    /// two shards coalesce, the destination engine absorbs the merged
    /// stamped logs — known-acyclic history, not new scheduler traffic —
    /// so the per-decision cost accounting stays comparable to an
    /// unsharded engine fed the same decisions.
    pub fn absorb_step(&mut self, step: Step) -> Result<(), CycleWitness> {
        assert!(!self.tentative, "previous tentative step not resolved");
        if self.needs_rebuild {
            self.rebuild();
        }
        self.tentative = true;
        match self.apply_inner(step) {
            Ok(()) => {
                self.journal.clear();
                self.tentative = false;
                Ok(())
            }
            Err(cycle) => {
                let witness = self.witness_from(&cycle);
                self.rollback_step();
                Err(witness)
            }
        }
    }

    /// Closure predecessors of the *pending* step: live columns (other
    /// than the requester's) whose last live step is related before the
    /// tentative row in the maintained closure. This is the §6
    /// prevention probe — one O(1) frontier lookup per column — hoisted
    /// into the engine so a sharded backend can answer it from the one
    /// shard holding the candidate. Returned ascending by `TxnId` so the
    /// answer is independent of column-creation order (and hence of shard
    /// count).
    pub fn pending_predecessors(&self) -> Vec<TxnId> {
        assert!(self.tentative, "no pending step to probe");
        let beta = self.steps.len() - 1;
        let requester = self.step_txn[beta];
        let mut preds: Vec<TxnId> = Vec::new();
        for lt in 0..self.txns.len() {
            if lt == requester {
                continue;
            }
            let Some(&alpha) = self.txn_steps[lt].last() else {
                continue;
            };
            // Stale column of a since-restarted transaction: its rows
            // died with the rollback.
            if self.dead[alpha] {
                continue;
            }
            if self.related(alpha, beta) {
                preds.push(self.txns[lt]);
            }
        }
        preds.sort_unstable_by_key(|t| t.0);
        preds
    }

    /// Applies the live-window eviction rule directly on the maintained
    /// state: build the transaction-level pair summary of the live
    /// frontier, forward-reach from every transaction `is_source` keeps
    /// alive (the uncommitted ones, for the window), and
    /// [`evict`](Self::evict) each live column that is neither a source
    /// nor reached. Returns the evicted `TxnId`s. Sound by the same
    /// argument as the window rule: once no live transaction reaches a
    /// committed one in the closure, nothing ever will again.
    pub fn evict_unreachable(&mut self, is_source: impl Fn(TxnId) -> bool) -> Vec<TxnId> {
        assert!(!self.tentative, "resolve the pending step before eviction");
        let tc = self.txns.len();
        let mut live_col = vec![false; tc];
        for (lt, col) in live_col.iter_mut().enumerate() {
            *col = self.txn_steps[lt].iter().any(|&r| !self.dead[r]);
        }
        let mut pairs = PairSummary::new();
        for v in 0..self.steps.len() {
            if self.dead[v] {
                continue;
            }
            let tv = self.step_txn[v];
            for t in 0..tc {
                // Columns without live rows are inert either way (their
                // stale frontier entries are cleared on eviction and
                // compacted on rebuild); skip them so the summary speaks
                // only about window members.
                if t != tv && live_col[t] && self.m[v][t] != NONE {
                    pairs.add(self.txns[t].0, self.txns[tv].0);
                }
            }
        }
        let keep = pairs.reachable_from(
            (0..tc)
                .filter(|&lt| live_col[lt] && is_source(self.txns[lt]))
                .map(|lt| self.txns[lt].0),
        );
        let mut evicted: Vec<TxnId> = Vec::new();
        for lt in 0..tc {
            let t = self.txns[lt];
            if live_col[lt] && !is_source(t) && keep.binary_search(&t.0).is_err() {
                evicted.push(t);
            }
        }
        for &t in &evicted {
            let lt = self.local.get(t.0).expect("evicted txn has a column") as usize;
            self.evict(lt);
        }
        evicted
    }

    /// Undoes the pending step by replaying the journal in reverse. The
    /// engine returns exactly to its pre-[`apply_step`](Self::apply_step)
    /// state (work counters excepted — they measure work done).
    pub fn rollback_step(&mut self) {
        assert!(self.tentative, "no pending step to roll back");
        self.counters.rollbacks += 1;
        while let Some(op) = self.journal.pop() {
            match op {
                Op::Frontier { row, col, old } => self.m[row as usize][col as usize] = old,
                Op::EdgeInserted { from, to } => {
                    let removed = self.topo.remove_edge(from, to);
                    debug_assert!(removed, "journaled edge vanished");
                }
                Op::EdgeRemoved { from, to } => {
                    let re = self.topo.add_edge(from, to);
                    debug_assert!(
                        matches!(re, Ok(true)),
                        "re-adding a journaled edge must succeed"
                    );
                }
                Op::BdChanged { txn, old } => self.bds[txn] = old,
                Op::NewRow => {
                    let step = self.steps.pop().expect("journal/arena desync");
                    let lt = self.step_txn.pop().expect("journal/arena desync");
                    self.step_seq.pop();
                    self.txn_steps[lt].pop();
                    self.m.pop();
                    self.dependents.pop();
                    self.dead.pop();
                    let rows = &mut self.entity_rows[step.entity.index()];
                    debug_assert_eq!(rows.last().copied(), Some(self.steps.len() as u32));
                    rows.pop();
                    // All incident edges were journaled and already undone.
                    debug_assert!(self.topo.successors(self.steps.len() as u32).is_empty());
                    debug_assert!(self.topo.predecessors(self.steps.len() as u32).is_empty());
                }
                Op::NewTxn => {
                    let t = self.txns.pop().expect("journal/txn desync");
                    self.local.remove(t.0);
                    self.txn_steps.pop();
                    self.bds.pop();
                    for row in &mut self.m {
                        row.pop();
                    }
                }
            }
        }
        self.tentative = false;
    }

    /// Records the store-observed values of the just-performed step (the
    /// scheduler's `performed` hook). Keeps the stored subsequence equal
    /// to what a batch checker reading the journal would see, so the next
    /// breakpoint-description refresh matches.
    pub fn performed(&mut self, step: &Step) {
        let Some(lt) = self.local.get(step.txn.0).map(|v| v as usize) else {
            return;
        };
        let Some(&row) = self.txn_steps[lt].last() else {
            return;
        };
        if self.step_seq[row] != step.seq as usize {
            return;
        }
        self.steps[row].observed = step.observed;
        self.steps[row].wrote = step.wrote;
        #[cfg(debug_assertions)]
        {
            let sub: Vec<Step> = self.txn_steps[lt].iter().map(|&i| self.steps[i]).collect();
            debug_assert_eq!(
                self.spec.describe(step.txn, &sub),
                self.bds[lt],
                "value-dependent breakpoint specifications are outside the \
                 incremental engine's contract"
            );
        }
    }

    /// Removes an aborted transaction. Cheap at call time: its rows are
    /// marked dead and a full rebuild (replay of the surviving steps,
    /// compacting the arena) is scheduled for the next
    /// [`apply_step`](Self::apply_step) — the rebuild-on-abort invariant.
    pub fn remove_txn(&mut self, t: TxnId) {
        assert!(!self.tentative, "resolve the pending step before removal");
        let Some(lt) = self.local.remove(t.0).map(|v| v as usize) else {
            return; // unknown or already compacted away — nothing to do
        };
        for &r in &self.txn_steps[lt] {
            if !self.dead[r] {
                self.dead[r] = true;
                self.dead_count += 1;
            }
        }
        self.needs_rebuild = true;
    }

    /// Projects a *committed* transaction (by column index) out of the
    /// maintained state: its rows die, their topo edges drop, and every
    /// live frontier forgets the column. Sound when no live pair can ever
    /// again relate through the transaction — exactly the live-window
    /// eviction rule (nothing uncommitted reaches it in the closure).
    /// O(window), no recomputation; dead rows are compacted away by the
    /// next rebuild (one is scheduled when they outnumber live rows).
    pub fn evict(&mut self, lt: usize) {
        assert!(!self.tentative, "resolve the pending step before eviction");
        let rows = self.txn_steps[lt].clone();
        for r in rows {
            if !self.dead[r] {
                self.dead[r] = true;
                self.dead_count += 1;
                self.topo.detach_node(r as u32);
                self.dependents[r].clear();
            }
        }
        for v in 0..self.steps.len() {
            if !self.dead[v] {
                self.m[v][lt] = NONE;
            }
        }
        if let Some(t) = self.txns.get(lt) {
            self.local.remove(t.0);
        }
        if self.dead_count > 64 && self.dead_count > self.steps.len() - self.dead_count {
            self.needs_rebuild = true;
        }
    }

    /// Schedules a full rebuild before the next
    /// [`apply_step`](Self::apply_step). The ablation hook: calling this
    /// before every decision makes the engine pay honest batch cost
    /// through the same code path.
    pub fn force_rebuild(&mut self) {
        assert!(!self.tentative, "resolve the pending step first");
        self.needs_rebuild = true;
    }

    /// Performs any scheduled rebuild immediately. Rebuilds normally run
    /// lazily at the next [`apply_step`](Self::apply_step); call this
    /// before inspecting the maintained relation (e.g.
    /// [`related`](Self::related) or [`frontier`](Self::frontier)) after
    /// removals, when the stale dead-row contributions would otherwise
    /// still be visible.
    pub fn flush_rebuild(&mut self) {
        assert!(!self.tentative, "resolve the pending step first");
        if self.needs_rebuild {
            self.rebuild();
        }
    }

    /// Whether a rebuild is scheduled.
    pub fn rebuild_pending(&self) -> bool {
        self.needs_rebuild
    }

    /// Whether a tentative step is pending resolution.
    pub fn pending(&self) -> bool {
        self.tentative
    }

    /// Accumulated work counters.
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// Number of live (non-dead) steps.
    pub fn live_count(&self) -> usize {
        self.steps.len() - self.dead_count
    }

    /// Number of transaction columns (including dead ones awaiting
    /// compaction).
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }

    /// The TxnId of a column.
    pub fn txn_id(&self, lt: usize) -> TxnId {
        self.txns[lt]
    }

    /// The column of a transaction, if it has live state.
    pub fn local_of(&self, t: TxnId) -> Option<usize> {
        self.local.get(t.0).map(|v| v as usize)
    }

    /// Arena rows of a column, ascending.
    pub fn steps_of(&self, lt: usize) -> &[usize] {
        &self.txn_steps[lt]
    }

    /// Whether an arena row is live.
    pub fn is_live(&self, row: usize) -> bool {
        !self.dead[row]
    }

    /// The stored step at an arena row.
    pub fn step(&self, row: usize) -> &Step {
        &self.steps[row]
    }

    /// Column of an arena row.
    pub fn txn_of(&self, row: usize) -> usize {
        self.step_txn[row]
    }

    /// Sequence number of an arena row within its transaction.
    pub fn seq_of(&self, row: usize) -> usize {
        self.step_seq[row]
    }

    /// The frontier row of a step (largest related seq per column, `-1`
    /// if none) — same encoding as
    /// [`CoherentClosure::frontier`](crate::closure::CoherentClosure::frontier).
    pub fn frontier(&self, row: usize) -> &[i64] {
        &self.m[row]
    }

    /// Whether row `u` is related strictly before row `v` in the
    /// maintained closure.
    pub fn related(&self, u: usize, v: usize) -> bool {
        self.m[v][self.step_txn[u]] >= self.step_seq[u] as i64
    }

    /// Transaction-level successor adjacency derived from the live
    /// frontier: an edge `t -> txn(v)` for every live row `v` whose
    /// frontier includes column `t`. This is what the live-window
    /// eviction rule forward-reaches over.
    pub fn txn_frontier_adj(&self) -> Vec<Vec<usize>> {
        let tc = self.txns.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); tc];
        for v in 0..self.steps.len() {
            if self.dead[v] {
                continue;
            }
            let tv = self.step_txn[v];
            for (t, adj_t) in adj.iter_mut().enumerate() {
                if t != tv && self.m[v][t] != NONE && !adj_t.contains(&tv) {
                    adj_t.push(tv);
                }
            }
        }
        adj
    }

    /// The live steps as an [`Execution`] (arena order = performance
    /// order). For oracles and equivalence tests; the scheduling hot path
    /// never materializes this.
    pub fn execution(&self) -> Execution {
        let live: Vec<Step> = (0..self.steps.len())
            .filter(|&v| !self.dead[v])
            .map(|v| self.steps[v])
            .collect();
        Execution::new(live).expect("engine arena holds per-txn ordered steps")
    }

    /// The maintained relation as a [`RelationSignature`] — stable step
    /// identities, no arena or column order. Reflects the current state
    /// including a pending tentative step; after removals, call
    /// [`flush_rebuild`](Self::flush_rebuild) first (stale dead-column
    /// contributions are otherwise still folded in).
    pub fn relation_signature(&self) -> RelationSignature {
        debug_assert!(
            !self.needs_rebuild,
            "flush_rebuild before taking a relation signature"
        );
        let live_col: Vec<bool> = self
            .txn_steps
            .iter()
            .map(|rows| rows.iter().any(|&r| !self.dead[r]))
            .collect();
        let mut sig: RelationSignature = Vec::with_capacity(self.live_count());
        for v in 0..self.steps.len() {
            if self.dead[v] {
                continue;
            }
            let mut row: Vec<(u32, i64)> = Vec::new();
            for (t, &f) in self.m[v].iter().enumerate() {
                if f != NONE && live_col[t] {
                    row.push((self.txns[t].0, f));
                }
            }
            row.sort_unstable();
            sig.push((
                (self.txns[self.step_txn[v]].0, self.step_seq[v] as u32),
                row,
            ));
        }
        sig.sort_unstable();
        sig
    }

    /// Applies `a` then `b` tentatively (two steps of *different*
    /// transactions, each its transaction's next step), captures the
    /// relation signature when both are granted, and rolls the whole
    /// attempt back — the engine returns exactly to its prior state
    /// (work counters excepted). This is the DPOR commutativity probe:
    /// `a` and `b` commute in the current state iff `probe_pair(a, b)`
    /// and `probe_pair(b, a)` both grant fully and produce equal
    /// signatures (see [`steps_commute`](Self::steps_commute)).
    pub fn probe_pair(&mut self, a: Step, b: Step) -> PairProbe {
        assert!(!self.tentative, "previous tentative step not resolved");
        assert_ne!(a.txn, b.txn, "probe steps must belong to different txns");
        if self.needs_rebuild {
            self.rebuild();
        }
        self.tentative = true;
        let (first_ok, second_ok, signature) = match self.apply_inner(a) {
            Ok(()) => match self.apply_inner(b) {
                Ok(()) => (true, true, Some(self.relation_signature())),
                Err(_) => (true, false, None),
            },
            Err(_) => (false, false, None),
        };
        // The journal holds both steps' ops; one reverse replay undoes
        // the pair.
        self.rollback_step();
        PairProbe {
            first_ok,
            second_ok,
            signature,
        }
    }

    /// Whether `a` and `b` (next steps of two different transactions)
    /// commute in the current state: both orders fully granted with
    /// identical resulting relations. Any denial in either order makes
    /// the pair dependent — conservative, since a verdict that differs
    /// by order is itself an observable difference.
    pub fn steps_commute(&mut self, a: Step, b: Step) -> bool {
        let ab = self.probe_pair(a, b);
        if ab.signature.is_none() {
            return false;
        }
        let ba = self.probe_pair(b, a);
        ab.signature == ba.signature
    }

    /// A deep copy of the committed state — the DFS backtracking hook
    /// for exhaustive schedule exploration (`mla-explore`). Panics if a
    /// tentative step is pending.
    pub fn snapshot(&self) -> Self
    where
        S: Clone,
    {
        assert!(!self.tentative, "resolve the pending step before snapshot");
        debug_assert!(self.journal.is_empty() && self.queue.is_empty());
        ClosureEngine {
            nest: self.nest.clone(),
            spec: self.spec.clone(),
            txns: self.txns.clone(),
            local: self.local.clone(),
            steps: self.steps.clone(),
            step_txn: self.step_txn.clone(),
            step_seq: self.step_seq.clone(),
            txn_steps: self.txn_steps.clone(),
            bds: self.bds.clone(),
            m: self.m.clone(),
            dependents: self.dependents.clone(),
            topo: self.topo.clone(),
            entity_rows: self.entity_rows.clone(),
            dead: self.dead.clone(),
            dead_count: self.dead_count,
            needs_rebuild: self.needs_rebuild,
            tentative: false,
            journal: Vec::new(),
            queue: VecDeque::new(),
            in_queue: vec![false; self.in_queue.len()],
            counters: self.counters,
        }
    }

    // ---- internals ------------------------------------------------------

    /// Full rebuild: replay the surviving steps in performance order,
    /// compacting dead rows, dead columns, and stale indices away. The
    /// one batch-cost operation; counted in
    /// [`EngineCounters::rebuilds`].
    fn rebuild(&mut self) {
        self.counters.rebuilds += 1;
        self.needs_rebuild = false;
        let live: Vec<Step> = (0..self.steps.len())
            .filter(|&v| !self.dead[v])
            .map(|v| self.steps[v])
            .collect();
        self.txns.clear();
        self.local.clear();
        self.steps.clear();
        self.step_txn.clear();
        self.step_seq.clear();
        self.txn_steps.clear();
        self.bds.clear();
        self.m.clear();
        self.dependents.clear();
        self.dead.clear();
        self.dead_count = 0;
        self.entity_rows.clear();
        self.topo.reset();
        for step in live {
            let replay = self.apply_inner(step);
            debug_assert!(
                replay.is_ok(),
                "replaying an acyclic live history cannot create a cycle"
            );
            self.journal.clear();
        }
    }

    fn apply_inner(&mut self, step: Step) -> Result<(), Cycle> {
        let lt = match self.local.get(step.txn.0) {
            Some(lt) => lt as usize,
            None => {
                let lt = self.txns.len();
                self.txns.push(step.txn);
                self.local.insert(step.txn.0, lt as u32);
                self.txn_steps.push(Vec::new());
                self.bds
                    .push(BreakpointDescription::atomic(self.nest.k(), 0));
                for row in &mut self.m {
                    row.push(NONE);
                }
                self.journal.push(Op::NewTxn);
                lt
            }
        };
        let s = self.txn_steps[lt].len();
        debug_assert_eq!(
            step.seq as usize, s,
            "steps must arrive in per-transaction order"
        );
        let w = self.steps.len();
        self.steps.push(step);
        self.step_txn.push(lt);
        self.step_seq.push(s);
        self.txn_steps[lt].push(w);
        self.m.push(vec![NONE; self.txns.len()]);
        self.dependents.push(BitSet::default());
        self.dead.push(false);
        self.topo.ensure_nodes(w + 1);
        let e = step.entity.index();
        if e >= self.entity_rows.len() {
            self.entity_rows.resize_with(e + 1, Vec::new);
        }
        self.entity_rows[e].push(w as u32);
        self.journal.push(Op::NewRow);

        // Refresh the transaction's breakpoint description over its grown
        // subsequence (§6 compatibility: only the last segment can have
        // changed, which the trigger seeding below relies on).
        let sub: Vec<Step> = self.txn_steps[lt].iter().map(|&i| self.steps[i]).collect();
        let bd = self.spec.describe(step.txn, &sub);
        debug_assert_eq!(bd.k(), self.nest.k(), "spec depth must match nest");
        debug_assert_eq!(bd.step_count(), s + 1);
        let old = std::mem::replace(&mut self.bds[lt], bd);
        self.journal.push(Op::BdChanged { txn: lt, old });

        // Base relation seeds: intra predecessor and last live step on
        // the same entity (mirrors Execution::dependency_graph).
        let prev = if s > 0 {
            let p = self.txn_steps[lt][s - 1];
            self.raise(w, lt, (s - 1) as i64)?;
            Some(p)
        } else {
            None
        };
        if let Some(u) = self.last_live_on_entity(step.entity, w) {
            let tu = self.step_txn[u];
            let su = self.step_seq[u] as i64;
            if self.m[w][tu] < su {
                self.raise(w, tu, su)?;
            }
        }

        // Worklist seeds: the new row, plus every row whose frontier sat
        // at the previous end of this transaction's last segment (they
        // are exactly the topo successors of the previous step).
        self.push_queue(w);
        if let Some(p) = prev {
            let succ: Vec<u32> = self.topo.successors(p as u32).to_vec();
            for v in succ {
                self.push_queue(v as usize);
            }
        }
        self.drain_queue()
    }

    /// Last live arena row touching `entity`, excluding `w` itself.
    fn last_live_on_entity(&self, entity: EntityId, w: usize) -> Option<usize> {
        let rows = self.entity_rows.get(entity.index())?;
        rows.iter()
            .rev()
            .map(|&r| r as usize)
            .find(|&r| r != w && !self.dead[r])
    }

    /// Raises `m[v][col]` to `new_s`, maintaining the topo mirror: the
    /// superseded frontier edge is dropped (the pair it encoded is
    /// implied by the new edge plus the intra chain) and the new edge
    /// inserted. A rejected insertion *is* the closure cycle.
    fn raise(&mut self, v: usize, col: usize, new_s: i64) -> Result<(), Cycle> {
        let old = self.m[v][col];
        debug_assert!(new_s > old);
        self.journal.push(Op::Frontier {
            row: v as u32,
            col: col as u32,
            old,
        });
        self.m[v][col] = new_s;
        let u_new = self.txn_steps[col][new_s as usize];
        if u_new == v {
            // The step would precede itself (m[v][tv] = seq(v)).
            return Err(Cycle(vec![v as u32]));
        }
        if old != NONE {
            let u_old = self.txn_steps[col][old as usize];
            if u_old != v && self.topo.remove_edge(u_old as u32, v as u32) {
                self.journal.push(Op::EdgeRemoved {
                    from: u_old as u32,
                    to: v as u32,
                });
            }
        }
        match self.topo.add_edge(u_new as u32, v as u32) {
            Ok(true) => {
                self.journal.push(Op::EdgeInserted {
                    from: u_new as u32,
                    to: v as u32,
                });
                self.counters.edges_inserted += 1;
                Ok(())
            }
            Ok(false) => Ok(()),
            Err(cycle) => Err(cycle),
        }
    }

    fn push_queue(&mut self, v: usize) {
        if v >= self.in_queue.len() {
            self.in_queue.resize(v + 1, false);
        }
        if !std::mem::replace(&mut self.in_queue[v], true) {
            self.queue.push_back(v as u32);
        }
    }

    fn drain_queue(&mut self) -> Result<(), Cycle> {
        while let Some(v) = self.queue.pop_front() {
            let v = v as usize;
            self.in_queue[v] = false;
            if v >= self.steps.len() || self.dead[v] {
                continue; // stale trigger from a rolled-back or evicted row
            }
            self.counters.rows_touched += 1;
            match self.process(v) {
                Ok(false) => {}
                Ok(true) => {
                    // The row grew: re-run it (pending lifts) and everyone
                    // who pulled it.
                    self.push_queue(v);
                    let deps = std::mem::take(&mut self.dependents[v]);
                    for d in deps.iter() {
                        self.push_queue(d);
                    }
                    self.dependents[v] = deps;
                }
                Err(cycle) => {
                    self.queue.clear();
                    self.in_queue.iter_mut().for_each(|f| *f = false);
                    return Err(cycle);
                }
            }
        }
        Ok(())
    }

    /// One pass of the closure rules over row `v` (the batch fixpoint's
    /// inner loop). Returns whether the row grew.
    fn process(&mut self, v: usize) -> Result<bool, Cycle> {
        let tv = self.step_txn[v];
        let sv = self.step_seq[v];
        let tcount = self.txns.len();
        let mut changed = false;
        for t in 0..tcount {
            let s = self.m[v][t];
            if s == NONE {
                continue;
            }
            if t == tv {
                // Own transaction: keep the row monotone along the intra
                // chain. (A frontier at or past v itself is impossible
                // here — `raise` rejects it as a cycle.)
                if sv > 0 {
                    let u = self.txn_steps[t][sv - 1];
                    changed |= self.union_from(v, u)?;
                }
                continue;
            }
            // Condition (b): lift the frontier to its segment end at
            // level(t, tv).
            let level = self.nest.level(self.txns[t], self.txns[tv]);
            let end = self.bds[t].segment_end(level, s as usize) as i64;
            if end > s {
                self.raise(v, t, end)?;
                changed = true;
            }
            // Transitivity through t's frontier step.
            let u = self.txn_steps[t][end as usize];
            changed |= self.union_from(v, u)?;
        }
        Ok(changed)
    }

    /// `m[v] |= m[u]` pointwise, registering `v` as a dependent of `u`.
    fn union_from(&mut self, v: usize, u: usize) -> Result<bool, Cycle> {
        if self.dependents[u].capacity() <= v {
            self.dependents[u].grow(self.steps.len());
        }
        self.dependents[u].insert(v);
        let mut changed = false;
        for t in 0..self.txns.len() {
            let uw = self.m[u][t];
            if uw > self.m[v][t] {
                self.raise(v, t, uw)?;
                changed = true;
            }
        }
        Ok(changed)
    }

    /// Translates a topo cycle (arena rows) into stable step identities.
    fn witness_from(&self, cycle: &Cycle) -> CycleWitness {
        let steps: Vec<(TxnId, u32)> = cycle
            .nodes()
            .iter()
            .map(|&r| {
                let r = r as usize;
                (self.txns[self.step_txn[r]], self.step_seq[r] as u32)
            })
            .collect();
        let mut txns: Vec<TxnId> = steps.iter().map(|&(t, _)| t).collect();
        txns.sort_unstable_by_key(|t| t.0);
        txns.dedup();
        CycleWitness { steps, txns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::CoherentClosure;
    use crate::spec::{AtomicSpec, ExecContext, FreeSpec};
    use std::collections::HashMap;

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    /// A positional per-transaction breakpoint spec usable on prefixes
    /// (FixedSpec asserts exact lengths and so cannot drive an engine).
    #[derive(Clone)]
    struct PrefixSpec {
        k: usize,
        /// txn -> mid-level breakpoint positions, per mid level.
        mids: HashMap<u32, Vec<Vec<usize>>>,
    }

    impl BreakpointSpecification for PrefixSpec {
        fn k(&self) -> usize {
            self.k
        }

        fn describe(&self, t: TxnId, steps: &[Step]) -> BreakpointDescription {
            let n = steps.len();
            match self.mids.get(&t.0) {
                Some(mids) => {
                    let clipped: Vec<Vec<usize>> = mids
                        .iter()
                        .map(|level| level.iter().copied().filter(|&p| p < n).collect())
                        .collect();
                    BreakpointDescription::from_mid_levels(self.k, n, &clipped).unwrap()
                }
                None => BreakpointDescription::atomic(self.k, n),
            }
        }
    }

    /// Asserts the engine (fed step by step) agrees with the batch
    /// closure on every acyclic prefix, and that a rejected step is
    /// exactly a batch-cyclic prefix. Returns how many steps were
    /// accepted.
    fn check_against_batch(
        nest: &Nest,
        spec: &(impl BreakpointSpecification + Clone),
        order: &[(u32, u32, u32)],
    ) -> usize {
        let mut engine = ClosureEngine::new(nest.clone(), spec.clone());
        let mut accepted: Vec<Step> = Vec::new();
        let mut blocked: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(t, s, x) in order {
            if blocked.contains(&t) {
                // A real scheduler would defer or abort; for equivalence
                // checking, a rejected transaction stops contributing
                // (its seq chain is broken).
                continue;
            }
            let candidate = step(t, s, x);
            let mut with: Vec<Step> = accepted.clone();
            with.push(candidate);
            let exec = Execution::new(with).unwrap();
            let ctx = ExecContext::new(&exec, nest, spec).unwrap();
            let batch = CoherentClosure::compute(&ctx);
            match engine.apply_step(candidate) {
                Ok(()) => {
                    engine.commit_step();
                    assert!(
                        batch.is_partial_order(),
                        "engine accepted a step the batch closure rejects"
                    );
                    accepted.push(candidate);
                    assert_engine_matches(&engine, &ctx, &batch);
                }
                Err(witness) => {
                    blocked.insert(t);
                    assert!(
                        !batch.is_partial_order(),
                        "engine rejected a step the batch closure accepts"
                    );
                    assert!(!witness.txns.is_empty());
                    // The engine rolled back: it must still match the
                    // batch closure of the accepted prefix.
                    let exec = Execution::new(accepted.clone()).unwrap();
                    let ctx = ExecContext::new(&exec, nest, spec).unwrap();
                    let batch = CoherentClosure::compute(&ctx);
                    assert_engine_matches(&engine, &ctx, &batch);
                }
            }
        }
        accepted.len()
    }

    /// Frontier-for-frontier comparison keyed by stable identities
    /// (engine columns and batch locals can be ordered differently).
    fn assert_engine_matches<S: BreakpointSpecification>(
        engine: &ClosureEngine<S>,
        ctx: &ExecContext<'_>,
        batch: &CoherentClosure,
    ) {
        assert!(batch.is_partial_order());
        // Map (TxnId, seq) -> batch global index.
        let mut batch_of: HashMap<(u32, u32), usize> = HashMap::new();
        for v in 0..ctx.n() {
            let t = ctx.txn_id(ctx.txn_of(v));
            batch_of.insert((t.0, ctx.seq_of(v) as u32), v);
        }
        let mut live = 0;
        for row in 0..engine.steps.len() {
            if !engine.is_live(row) {
                continue;
            }
            live += 1;
            let key = (
                engine.txn_id(engine.txn_of(row)).0,
                engine.seq_of(row) as u32,
            );
            let bv = *batch_of
                .get(&key)
                .expect("live engine row missing in batch");
            let bf = batch.frontier(bv);
            for (col, &ef) in engine.frontier(row).iter().enumerate() {
                let t = engine.txn_id(col);
                // Find the batch column for this TxnId, if any.
                let bcol = (0..ctx.txn_count()).find(|&c| ctx.txn_id(c) == t);
                match bcol {
                    Some(c) => {
                        assert_eq!(ef, bf[c], "frontier mismatch at step {key:?} column {t}")
                    }
                    None => assert_eq!(ef, NONE, "engine frontier into absent txn {t}"),
                }
            }
        }
        assert_eq!(live, ctx.n(), "live row count != batch steps");
    }

    #[test]
    fn agrees_on_serializable_pattern() {
        let nest = Nest::flat(2);
        let n = check_against_batch(
            &nest,
            &AtomicSpec { k: 2 },
            &[(0, 0, 7), (0, 1, 8), (1, 0, 7), (1, 1, 8)],
        );
        assert_eq!(n, 4);
    }

    #[test]
    fn rejects_classic_weave_where_batch_is_cyclic() {
        let nest = Nest::flat(2);
        // The last step closes t0 -> t1 -> t0; the engine must reject
        // exactly it.
        let n = check_against_batch(
            &nest,
            &AtomicSpec { k: 2 },
            &[(0, 0, 7), (1, 0, 7), (1, 1, 8), (0, 1, 8)],
        );
        assert_eq!(n, 3);
    }

    #[test]
    fn free_breakpoints_admit_the_same_weave() {
        let nest = Nest::new(3, vec![vec![0], vec![0]]).unwrap();
        let n = check_against_batch(
            &nest,
            &FreeSpec { k: 3 },
            &[(0, 0, 7), (1, 0, 7), (1, 1, 8), (0, 1, 8)],
        );
        assert_eq!(n, 4);
    }

    #[test]
    fn paper_r3_cycle_is_caught_online() {
        // §4.2's R3 realization from closure.rs: cyclic at the end.
        let order = [
            (2u32, 0u32, 100u32),
            (0, 0, 100),
            (0, 1, 101),
            (1, 0, 102),
            (1, 1, 101),
            (0, 2, 102),
            (0, 3, 103),
            (1, 2, 104),
            (1, 3, 105),
            (2, 1, 106),
            (2, 2, 105),
            (2, 3, 107),
        ];
        let nest = Nest::new(3, vec![vec![0], vec![0], vec![1]]).unwrap();
        let spec = PrefixSpec {
            k: 3,
            mids: [(0, vec![vec![2]]), (1, vec![vec![2]]), (2, vec![vec![2]])]
                .into_iter()
                .collect(),
        };
        let accepted = check_against_batch(&nest, &spec, &order);
        assert!(accepted < order.len(), "R3 must be rejected somewhere");
    }

    #[test]
    fn witness_names_the_conflicting_transactions() {
        let nest = Nest::flat(2);
        let mut engine = ClosureEngine::new(nest, AtomicSpec { k: 2 });
        for st in [step(0, 0, 7), step(1, 0, 7), step(1, 1, 8)] {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        let witness = engine.apply_step(step(0, 1, 8)).unwrap_err();
        assert_eq!(witness.txns, vec![TxnId(0), TxnId(1)]);
        assert!(witness.steps.len() >= 2);
        // Rolled back: the same step set minus the offender is intact.
        assert_eq!(engine.live_count(), 3);
        assert!(!engine.pending());
    }

    #[test]
    fn rollback_restores_pre_step_state_exactly() {
        let nest = Nest::flat(3);
        let mut engine = ClosureEngine::new(nest.clone(), AtomicSpec { k: 2 });
        let prefix = [step(0, 0, 1), step(1, 0, 1), step(1, 1, 2)];
        for st in prefix {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        let edges_before = engine.topo.edge_count();
        let m_before = engine.m.clone();
        // A fresh transaction's step, applied then rolled back (defer).
        engine.apply_step(step(2, 0, 2)).unwrap();
        engine.rollback_step();
        assert_eq!(engine.topo.edge_count(), edges_before);
        assert_eq!(engine.m, m_before);
        assert_eq!(engine.txn_count(), 2, "tentative txn fully retracted");
        // And the same step can come back later.
        engine.apply_step(step(2, 0, 2)).unwrap();
        engine.commit_step();
        assert_eq!(engine.txn_count(), 3);
    }

    #[test]
    fn probe_pair_rolls_back_exactly_and_detects_commutation() {
        let nest = Nest::flat(3);
        let mut engine = ClosureEngine::new(nest, AtomicSpec { k: 2 });
        for st in [step(0, 0, 1), step(1, 0, 2)] {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        let m_before = engine.m.clone();
        let edges_before = engine.topo.edge_count();
        let sig_before = engine.relation_signature();
        // Disjoint entities: both orders grant with the same relation.
        assert!(engine.steps_commute(step(0, 1, 3), step(1, 1, 4)));
        // Shared entity: both orders grant but the relations differ
        // (the base edge flips), so the pair is dependent.
        assert!(!engine.steps_commute(step(0, 1, 5), step(1, 1, 5)));
        // Either way the probes left no trace.
        assert_eq!(engine.m, m_before);
        assert_eq!(engine.topo.edge_count(), edges_before);
        assert_eq!(engine.relation_signature(), sig_before);
        assert!(!engine.pending());
    }

    #[test]
    fn probe_pair_reports_denials_without_applying() {
        // Atomic t0 and t1 crossed on two entities: after the prefix,
        // t0's next step is denied outright in one order.
        let nest = Nest::flat(2);
        let mut engine = ClosureEngine::new(nest, AtomicSpec { k: 2 });
        for st in [step(0, 0, 7), step(1, 0, 7), step(1, 1, 8)] {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        let live_before = engine.live_count();
        let probe = engine.probe_pair(step(0, 1, 8), step(2, 0, 9));
        assert!(!probe.first_ok);
        assert!(!probe.second_ok);
        assert_eq!(probe.signature, None);
        // Second-position denial: the fresh step grants, then the weave
        // closes the cycle.
        let probe = engine.probe_pair(step(2, 0, 9), step(0, 1, 8));
        assert!(probe.first_ok);
        assert!(!probe.second_ok);
        assert_eq!(engine.live_count(), live_before);
        assert!(!engine.pending());
        // A denial in either order means dependence.
        assert!(!engine.steps_commute(step(0, 1, 8), step(2, 0, 9)));
    }

    #[test]
    fn snapshot_is_a_deep_independent_copy() {
        let nest = Nest::flat(3);
        let mut engine = ClosureEngine::new(nest, AtomicSpec { k: 2 });
        for st in [step(0, 0, 1), step(1, 0, 1)] {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        let mut copy = engine.snapshot();
        assert_eq!(copy.relation_signature(), engine.relation_signature());
        // Diverge the copy; the original must not move.
        copy.apply_step(step(0, 1, 2)).unwrap();
        copy.commit_step();
        assert_eq!(copy.live_count(), 3);
        assert_eq!(engine.live_count(), 2);
        assert_ne!(copy.relation_signature(), engine.relation_signature());
        // And the original still decides independently.
        engine.apply_step(step(1, 1, 2)).unwrap();
        engine.commit_step();
        assert_eq!(engine.live_count(), 3);
    }

    #[test]
    fn signature_is_arena_order_independent() {
        // The same step set reached through different schedules (and
        // hence different column creation orders) must sign identically
        // when the closure relations coincide: two disjoint txns.
        let nest = Nest::flat(3);
        let spec = AtomicSpec { k: 2 };
        let mut e1 = ClosureEngine::new(nest.clone(), spec);
        for st in [step(0, 0, 1), step(0, 1, 1), step(1, 0, 2), step(1, 1, 2)] {
            e1.apply_step(st).unwrap();
            e1.commit_step();
        }
        let mut e2 = ClosureEngine::new(nest, spec);
        for st in [step(1, 0, 2), step(1, 1, 2), step(0, 0, 1), step(0, 1, 1)] {
            e2.apply_step(st).unwrap();
            e2.commit_step();
        }
        assert_eq!(e1.relation_signature(), e2.relation_signature());
    }

    #[test]
    fn remove_txn_schedules_rebuild_and_unblocks() {
        let nest = Nest::flat(2);
        let mut engine = ClosureEngine::new(nest, AtomicSpec { k: 2 });
        for st in [step(0, 0, 7), step(1, 0, 7), step(1, 1, 8)] {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        assert!(engine.apply_step(step(0, 1, 8)).is_err());
        // Abort t1: its steps leave; the rebuild happens lazily.
        engine.remove_txn(TxnId(1));
        assert!(engine.rebuild_pending());
        assert_eq!(engine.counters().rebuilds, 0);
        engine.apply_step(step(0, 1, 8)).unwrap();
        engine.commit_step();
        assert_eq!(engine.counters().rebuilds, 1);
        assert_eq!(engine.live_count(), 2);
        // t1 restarts from seq 0 as a fresh incarnation.
        engine.apply_step(step(1, 0, 9)).unwrap();
        engine.commit_step();
        assert_eq!(engine.live_count(), 3);
    }

    #[test]
    fn eviction_projects_without_rebuild() {
        let nest = Nest::flat(3);
        let mut engine = ClosureEngine::new(nest.clone(), AtomicSpec { k: 2 });
        // t0 fully before t1; t0 commits and is unreachable from t1's
        // future (t1 already saw it) — evictable.
        for st in [step(0, 0, 1), step(0, 1, 2), step(1, 0, 1), step(1, 1, 2)] {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        let rebuilds_before = engine.counters().rebuilds;
        let lt0 = engine.local_of(TxnId(0)).unwrap();
        engine.evict(lt0);
        assert_eq!(engine.counters().rebuilds, rebuilds_before);
        assert_eq!(engine.live_count(), 2);
        // Post-eviction state matches the batch closure of the filtered
        // execution.
        let exec = engine.execution();
        let spec = AtomicSpec { k: 2 };
        let ctx = ExecContext::new(&exec, &nest, &spec).unwrap();
        let batch = CoherentClosure::compute(&ctx);
        assert_engine_matches(&engine, &ctx, &batch);
        // A step that would have conflicted with t0 no longer can: t2
        // reusing t0's entities against the execution order is now fine.
        engine.apply_step(step(2, 0, 1)).unwrap();
        engine.commit_step();
        assert_eq!(engine.counters().rebuilds, rebuilds_before);
    }

    #[test]
    fn grant_path_inserts_edges_without_rebuilds() {
        let nest = Nest::flat(4);
        let mut engine = ClosureEngine::new(nest, AtomicSpec { k: 2 });
        for st in [
            step(0, 0, 1),
            step(1, 0, 2),
            step(2, 0, 3),
            step(0, 1, 2),
            step(1, 1, 3),
            step(2, 1, 4),
        ] {
            engine.apply_step(st).unwrap();
            engine.commit_step();
        }
        let c = engine.counters();
        assert_eq!(c.rebuilds, 0, "pure grants must never rebuild");
        assert!(c.edges_inserted > 0);
        assert!(c.rows_touched >= 6);
    }

    #[test]
    fn randomized_engine_matches_batch() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4242);
        for _trial in 0..120 {
            let txns = rng.gen_range(2..4usize);
            let entities = rng.gen_range(1..4u32);
            let k = rng.gen_range(2..4usize);
            let nest = Nest::new(
                k,
                (0..txns)
                    .map(|_| (0..k - 2).map(|_| rng.gen_range(0..2u32)).collect())
                    .collect(),
            )
            .unwrap();
            let lens: Vec<u32> = (0..txns).map(|_| rng.gen_range(1..4)).collect();
            let total: u32 = lens.iter().sum();
            let mut order: Vec<(u32, u32, u32)> = Vec::new();
            let mut next_seq = vec![0u32; txns];
            for _ in 0..total {
                loop {
                    let t = rng.gen_range(0..txns);
                    if next_seq[t] < lens[t] {
                        order.push((t as u32, next_seq[t], rng.gen_range(0..entities)));
                        next_seq[t] += 1;
                        break;
                    }
                }
            }
            // Random refining mid-level breakpoints, positional.
            let mut mids: HashMap<u32, Vec<Vec<usize>>> = HashMap::new();
            for (t, &len) in lens.iter().enumerate() {
                let mut levels: Vec<Vec<usize>> = Vec::new();
                let mut prev: Vec<usize> = Vec::new();
                for _ in 0..k.saturating_sub(2) {
                    let mut cur = prev.clone();
                    for p in 1..len as usize {
                        if rng.gen_bool(0.4) && !cur.contains(&p) {
                            cur.push(p);
                        }
                    }
                    cur.sort_unstable();
                    levels.push(cur.clone());
                    prev = cur;
                }
                mids.insert(t as u32, levels);
            }
            let spec = PrefixSpec { k, mids };
            check_against_batch(&nest, &spec, &order);
        }
    }

    #[test]
    fn randomized_with_aborts_matches_batch_after_rebuild() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _trial in 0..60 {
            let txns = rng.gen_range(2..5usize);
            let nest = Nest::flat(txns);
            let spec = AtomicSpec { k: 2 };
            let mut engine = ClosureEngine::new(nest.clone(), spec);
            let mut accepted: Vec<Step> = Vec::new();
            let mut next_seq = vec![0u32; txns];
            for _ in 0..rng.gen_range(4..16) {
                if rng.gen_bool(0.15) && !accepted.is_empty() {
                    // Abort a random present transaction.
                    let t = accepted[rng.gen_range(0..accepted.len())].txn;
                    engine.remove_txn(t);
                    accepted.retain(|s| s.txn != t);
                    next_seq[t.index()] = 0;
                    continue;
                }
                let t = rng.gen_range(0..txns);
                let candidate = step(t as u32, next_seq[t], rng.gen_range(0..3u32));
                match engine.apply_step(candidate) {
                    Ok(()) => {
                        engine.commit_step();
                        accepted.push(candidate);
                        next_seq[t] += 1;
                    }
                    Err(_) => {
                        // Deny: state unchanged; nothing to track.
                    }
                }
                // Cross-check the maintained state against batch.
                let exec = Execution::new(accepted.clone()).unwrap();
                let ctx = ExecContext::new(&exec, &nest, &spec).unwrap();
                let batch = CoherentClosure::compute(&ctx);
                if !engine.rebuild_pending() {
                    assert_engine_matches(&engine, &ctx, &batch);
                }
            }
        }
    }
}
