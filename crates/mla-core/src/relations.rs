//! The abstract §4.2 definitions over *explicit* relations: coherence of
//! an arbitrary relation, and its coherent closure.
//!
//! The execution-based machinery ([`crate::closure`]) always starts from
//! a dependency order `<=_e`. The paper, however, *defines* coherence for
//! any relation `R` on the disjoint union of step sets, and its §4.2
//! worked examples (R1, R2, R3) are given directly as pair sets. This
//! module implements that abstract layer, and the examples appear —
//! verbatim — in its tests:
//!
//! * R1 is a coherent partial order;
//! * R2 is non-coherent, and its coherent closure is exactly R1;
//! * R3's coherent closure contains a cycle.

use mla_graph::BitSet;

use crate::breakpoints::BreakpointDescription;
use crate::nest::Nest;

/// An element of `U{X_t : t in T}`: transaction `t`'s step number `seq`.
pub type Elem = (usize, usize);

/// The abstract setting of §4.2: a k-nest over `T` plus a k-level
/// interleaving specification (per-transaction total orders — implied by
/// step counts — and breakpoint descriptions).
pub struct RelationContext {
    nest: Nest,
    bds: Vec<BreakpointDescription>,
    /// Global index bases per transaction.
    base: Vec<usize>,
    n: usize,
}

/// Why a relation fails coherence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoherenceViolation {
    /// Condition (a): the relation is missing an intra-transaction pair.
    MissingIntraPair {
        /// The transaction.
        txn: usize,
        /// The earlier step.
        from: usize,
        /// The later step.
        to: usize,
    },
    /// Condition (b): `(alpha, beta)` is present but the segment-mate
    /// pair `(alpha_prime, beta)` is not.
    MissingLiftedPair {
        /// The pair's source `alpha`.
        alpha: Elem,
        /// The segment-mate `alpha'` whose pair is missing.
        alpha_prime: Elem,
        /// The pair's target `beta`.
        beta: Elem,
    },
}

impl std::fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoherenceViolation::MissingIntraPair { txn, from, to } => {
                write!(f, "missing intra pair t{txn}: {from} -> {to}")
            }
            CoherenceViolation::MissingLiftedPair {
                alpha,
                alpha_prime,
                beta,
            } => write!(
                f,
                "({:?}, {:?}) present but lifted ({:?}, {:?}) missing",
                alpha, beta, alpha_prime, beta
            ),
        }
    }
}

impl RelationContext {
    /// Builds the context. `bds[t]` describes transaction `t`'s steps;
    /// the nest must cover `bds.len()` transactions.
    pub fn new(nest: Nest, bds: Vec<BreakpointDescription>) -> Self {
        assert!(nest.txn_count() >= bds.len(), "nest must cover all txns");
        assert!(
            bds.iter().all(|b| b.k() == nest.k()),
            "descriptions must share the nest's depth"
        );
        let mut base = Vec::with_capacity(bds.len());
        let mut n = 0;
        for b in &bds {
            base.push(n);
            n += b.step_count();
        }
        RelationContext { nest, bds, base, n }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn global(&self, e: Elem) -> usize {
        let (t, s) = e;
        assert!(s < self.bds[t].step_count(), "element {e:?} out of range");
        self.base[t] + s
    }

    fn elem(&self, g: usize) -> Elem {
        let t = match self.base.binary_search(&g) {
            Ok(t) => t,
            Err(i) => i - 1,
        };
        (t, g - self.base[t])
    }

    /// Materializes a relation (with each `<=_t` added per condition (a))
    /// as predecessor bitsets: `preds[v]` holds `u` iff `(u, v) ∈ R`.
    fn materialize(&self, pairs: &[(Elem, Elem)]) -> Vec<BitSet> {
        let mut preds: Vec<BitSet> = (0..self.n).map(|_| BitSet::new(self.n)).collect();
        for (t, b) in self.bds.iter().enumerate() {
            for to in 0..b.step_count() {
                for from in 0..to {
                    preds[self.global((t, to))].insert(self.global((t, from)));
                }
            }
        }
        for &(a, b) in pairs {
            preds[self.global(b)].insert(self.global(a));
        }
        preds
    }

    /// Checks coherence of `pairs ∪ (each <=_t)` — conditions (a) holds by
    /// construction; condition (b) is checked literally, including on
    /// pairs only implied transitively if `transitive` is set (the §4.2
    /// examples give R as a transitive closure, so their checks use
    /// `transitive = true`).
    pub fn is_coherent(
        &self,
        pairs: &[(Elem, Elem)],
        transitive: bool,
    ) -> Result<(), CoherenceViolation> {
        let mut preds = self.materialize(pairs);
        if transitive {
            transitive_close(&mut preds);
        }
        for v in 0..self.n {
            let (tv, _) = self.elem(v);
            let current: Vec<usize> = preds[v].iter().collect();
            for u in current {
                let (tu, su) = self.elem(u);
                if tu == tv {
                    continue;
                }
                let level = self
                    .nest
                    .level(mla_model::TxnId(tu as u32), mla_model::TxnId(tv as u32));
                let end = self.bds[tu].segment_end(level, su);
                for s in su + 1..=end {
                    let lifted = self.global((tu, s));
                    if !preds[v].contains(lifted) {
                        return Err(CoherenceViolation::MissingLiftedPair {
                            alpha: (tu, su),
                            alpha_prime: (tu, s),
                            beta: self.elem(v),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The coherent closure: the least relation containing `pairs` and
    /// each `<=_t`, closed under transitivity and condition (b). Returns
    /// predecessor bitsets over global indices (use [`RelationContext::pair_in`]
    /// to query by element).
    pub fn coherent_closure(&self, pairs: &[(Elem, Elem)]) -> Vec<BitSet> {
        let mut preds = self.materialize(pairs);
        loop {
            let mut changed = false;
            transitive_close(&mut preds);
            for v in 0..self.n {
                let (tv, _) = self.elem(v);
                let current: Vec<usize> = preds[v].iter().collect();
                for u in current {
                    let (tu, su) = self.elem(u);
                    if tu == tv {
                        continue;
                    }
                    let level = self
                        .nest
                        .level(mla_model::TxnId(tu as u32), mla_model::TxnId(tv as u32));
                    let end = self.bds[tu].segment_end(level, su);
                    for s in su + 1..=end {
                        changed |= preds[v].insert(self.global((tu, s)));
                    }
                }
            }
            if !changed {
                return preds;
            }
        }
    }

    /// Whether `(a, b)` is in a materialized relation.
    pub fn pair_in(&self, preds: &[BitSet], a: Elem, b: Elem) -> bool {
        preds[self.global(b)].contains(self.global(a))
    }

    /// Whether a materialized relation is a partial order (irreflexive
    /// under transitivity — no element precedes itself).
    pub fn is_partial_order(&self, preds: &[BitSet]) -> bool {
        (0..self.n).all(|v| !preds[v].contains(v))
    }

    /// §4.2's closing remark, as a decision procedure: "R is extendable
    /// to a coherent partial order if and only if the coherent closure of
    /// R is a partial order."
    pub fn extendable_to_coherent_partial_order(&self, pairs: &[(Elem, Elem)]) -> bool {
        let closure = self.coherent_closure(pairs);
        self.is_partial_order(&closure)
    }
}

fn transitive_close(preds: &mut [BitSet]) {
    loop {
        let mut changed = false;
        for v in 0..preds.len() {
            let current: Vec<usize> = preds[v].iter().collect();
            for u in current {
                if u != v {
                    let pu = preds[u].clone();
                    changed |= preds[v].union_with_returning_changed(&pu);
                }
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §4.2 example setting: k = 3, T = {t0, t1, t2} (the paper's
    /// t1, t2, t3), pi(2) classes {t0, t1} and {t2}; four steps per
    /// transaction with a level-2 breakpoint after step 2 (classes
    /// {a_i1, a_i2} and {a_i3, a_i4} in the paper's 1-based notation).
    fn paper_ctx() -> RelationContext {
        let nest = Nest::new(3, vec![vec![0], vec![0], vec![1]]).unwrap();
        let bd = BreakpointDescription::from_mid_levels(3, 4, &[vec![2]]).unwrap();
        RelationContext::new(nest, vec![bd.clone(), bd.clone(), bd])
    }

    // Paper's 1-based a_{i j} -> our 0-based (txn, seq).
    fn a(i: usize, j: usize) -> Elem {
        (i - 1, j - 1)
    }

    /// R1's cross pairs (the <=_ti are implicit).
    fn r1_pairs() -> Vec<(Elem, Elem)> {
        vec![
            (a(1, 2), a(2, 2)), // (a12, a22)
            (a(2, 2), a(1, 3)), // (a22, a13)
            (a(1, 4), a(3, 1)), // (a14, a31)
            (a(2, 4), a(3, 3)), // (a24, a33)
        ]
    }

    #[test]
    fn r1_closure_is_a_coherent_partial_order() {
        // Reproduction-fidelity note: the paper calls R1 itself "a
        // coherent partial order", but under the *literal* condition (b)
        // the transitively implied pair (a21, a31) — via a21 < a22,
        // (a22, a13), a13 < a14, (a14, a31) — demands the lifted pairs
        // (a22, a31), (a23, a31), (a24, a31) at level(t2, t3) = 1, and
        // (a23, a31), (a24, a31) are not in R1's transitive closure. The
        // coherent *closure* of R1 adds exactly those pairs and is the
        // coherent partial order the paper works with: both §5.1 total
        // orders contain them, and the "exactly two coherent total
        // orders" count only comes out right with them included.
        let ctx = paper_ctx();
        let pairs = r1_pairs();
        let violation = ctx.is_coherent(&pairs, true).unwrap_err();
        assert_eq!(
            violation,
            CoherenceViolation::MissingLiftedPair {
                alpha: a(2, 1),
                alpha_prime: a(2, 3),
                beta: a(3, 1),
            }
        );
        let closure = ctx.coherent_closure(&pairs);
        assert!(ctx.is_partial_order(&closure));
        // The closure adds exactly the (a2x, a31) lifts beyond R1's own
        // transitive closure.
        let mut r1 = ctx.materialize(&pairs);
        transitive_close(&mut r1);
        let mut extra = Vec::new();
        for v in 0..ctx.len() {
            for u in closure[v].iter() {
                if !r1[v].contains(u) {
                    extra.push((ctx.elem(u), ctx.elem(v)));
                }
            }
        }
        extra.sort_unstable();
        // ((a22, a31) is already in R1 transitively via a22 -> a13 ->
        // a14 -> a31; the genuinely new pairs are a23/a24 before a31,
        // plus their transitive images before a32.)
        assert_eq!(
            extra,
            vec![
                (a(2, 3), a(3, 1)),
                (a(2, 3), a(3, 2)),
                (a(2, 4), a(3, 1)),
                (a(2, 4), a(3, 2)),
            ]
        );
    }

    #[test]
    fn r2_is_non_coherent_but_closes_to_r1() {
        let ctx = paper_ctx();
        // R2's cross pairs: sources pulled back to the segment starts.
        let r2 = vec![
            (a(1, 1), a(2, 2)), // (a11, a22)
            (a(2, 1), a(1, 3)), // (a21, a13)
            (a(1, 1), a(3, 1)), // (a11, a31)
            (a(2, 1), a(3, 3)), // (a21, a33)
        ];
        // Non-coherent: (a11, a22) needs its segment-mate pair (a12, a22).
        let violation = ctx.is_coherent(&r2, true).unwrap_err();
        assert!(matches!(
            violation,
            CoherenceViolation::MissingLiftedPair { .. }
        ));
        // "The coherent closure of R2 is just the partial order R1."
        let closure_r2 = ctx.coherent_closure(&r2);
        assert!(ctx.is_partial_order(&closure_r2));
        let closure_r1 = ctx.coherent_closure(&r1_pairs());
        assert_eq!(closure_r2, closure_r1);
    }

    #[test]
    fn r3_closure_has_a_cycle() {
        let ctx = paper_ctx();
        // R3 = R2 with (a31, a11) in place of (a11, a31).
        let r3 = vec![
            (a(1, 1), a(2, 2)),
            (a(2, 1), a(1, 3)),
            (a(3, 1), a(1, 1)), // reversed!
            (a(2, 1), a(3, 3)),
        ];
        let closure = ctx.coherent_closure(&r3);
        assert!(!ctx.is_partial_order(&closure));
        assert!(!ctx.extendable_to_coherent_partial_order(&r3));
        // The paper's derivation, step by step:
        // (a31, a11) lifts (level(t3, t1) = 1, whole-transaction segment)
        // to (a32, a11):
        assert!(ctx.pair_in(&closure, a(3, 2), a(1, 1)));
        // (a21, a33) lifts to (a22, a33):
        assert!(ctx.pair_in(&closure, a(2, 2), a(3, 3)));
        // and with (a11, a22) given, a11 -> a22 -> a33 -> (lift) a11
        // closes the cycle:
        assert!(ctx.pair_in(&closure, a(1, 1), a(2, 2)));
        assert!(ctx.pair_in(&closure, a(3, 3), a(1, 1)));
        assert!(
            ctx.pair_in(&closure, a(1, 1), a(1, 1)),
            "a11 precedes itself"
        );
    }

    #[test]
    fn condition_a_holds_by_construction() {
        let ctx = paper_ctx();
        let preds = ctx.materialize(&[]);
        // Every intra pair is present.
        for t in 0..3 {
            for to in 0..4 {
                for from in 0..to {
                    assert!(ctx.pair_in(&preds, (t, from), (t, to)));
                }
            }
        }
        assert_eq!(ctx.is_coherent(&[], true), Ok(()));
        assert!(ctx.extendable_to_coherent_partial_order(&[]));
    }

    #[test]
    fn lemma_1_example_two_total_orders() {
        // §5.1: "there are two coherent total orders containing R1".
        // Check that R1's closure leaves exactly one pair of segments
        // unordered (t1's and t2's second segments relative ordering...
        // in fact the two printed orders differ in whether a13 a14 come
        // before or after a23 a24). Verify both printed orders contain
        // the closure and are coherent.
        let ctx = paper_ctx();
        let closure = ctx.coherent_closure(&r1_pairs());
        // Order A: a11 a12 a21 a22 a13 a14 a23 a24 a31 a32 a33 a34.
        let order_a = [
            a(1, 1),
            a(1, 2),
            a(2, 1),
            a(2, 2),
            a(1, 3),
            a(1, 4),
            a(2, 3),
            a(2, 4),
            a(3, 1),
            a(3, 2),
            a(3, 3),
            a(3, 4),
        ];
        // Order B: a11 a12 a21 a22 a23 a24 a13 a14 a31 a32 a33 a34.
        let order_b = [
            a(1, 1),
            a(1, 2),
            a(2, 1),
            a(2, 2),
            a(2, 3),
            a(2, 4),
            a(1, 3),
            a(1, 4),
            a(3, 1),
            a(3, 2),
            a(3, 3),
            a(3, 4),
        ];
        for order in [order_a, order_b] {
            // Total order as pair set.
            let mut pairs = Vec::new();
            for i in 0..order.len() {
                for j in i + 1..order.len() {
                    pairs.push((order[i], order[j]));
                }
            }
            assert_eq!(ctx.is_coherent(&pairs, false), Ok(()), "order not coherent");
            // Contains the closure.
            let total = ctx.materialize(&pairs);
            for v in 0..ctx.len() {
                for u in closure[v].iter() {
                    assert!(total[v].contains(u), "total order must contain closure");
                }
            }
        }
    }
}
