//! Multilevel atomicity — the primary contribution of Lynch (1982).
//!
//! This crate implements §4–§5 and §7 of the paper:
//!
//! * [`nest`] — k-nests of transactions and `level(t, t')` (§4.2);
//! * [`breakpoints`] — k-level breakpoint descriptions over transaction
//!   executions (§4.2);
//! * [`spec`] — breakpoint specifications `𝔅` (§4.3) and the derived
//!   per-execution checking context `𝔍(𝔅, e)`;
//! * [`atomicity`] — membership in `C(π, 𝔅)`: is an execution multilevel
//!   atomic? (§4.3);
//! * [`closure`] — the coherent closure of `<=_e` and its acyclicity, in
//!   both a literal reference form and an optimized frontier form (§4.2);
//! * [`theorem`] — Theorem 2's decision procedure for *correctability*
//!   (§5.2), returning either a multilevel-atomic witness or a concrete
//!   dependency cycle;
//! * [`extend`] — the constructive combinatorial Lemma 1 (§5.1 +
//!   Appendix): extending a coherent partial order to a coherent total
//!   order by stage-wise SCC condensation;
//! * [`action_tree`] — the §7 mapping onto the nested transaction model;
//! * [`serializability`] — the classical baseline (conflict graphs,
//!   \[EGLT\]), which Theorem 2 generalizes and to which it provably
//!   collapses at `k = 2`.
//!
//! # Quick example
//!
//! ```
//! use mla_core::nest::Nest;
//! use mla_core::spec::AtomicSpec;
//! use mla_core::theorem::{decide, Correctability};
//! use mla_model::{Execution, Step, TxnId, EntityId};
//!
//! // Two transactions interleaved on disjoint entities.
//! let step = |t: u32, s: u32, x: u32| Step {
//!     txn: TxnId(t), seq: s, entity: EntityId(x), observed: 0, wrote: 0,
//! };
//! let e = Execution::new(vec![
//!     step(0, 0, 1), step(1, 0, 2), step(0, 1, 3), step(1, 1, 4),
//! ]).unwrap();
//!
//! // Flat 2-nest + atomic breakpoints = classical serializability.
//! let nest = Nest::flat(2);
//! let verdict = decide(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
//! match verdict {
//!     Correctability::Correctable { witness } => assert!(witness.is_serial()),
//!     Correctability::NotCorrectable { cycle } => panic!("{cycle}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The closure/extension algorithms iterate dense step indices while
// indexing several parallel structures (frontier rows, contexts, preds);
// the index is the natural object and iterator rewrites obscure it.
#![allow(clippy::needless_range_loop)]

pub mod action_tree;
pub mod atomicity;
pub mod breakpoints;
pub mod cert;
pub mod closure;
pub mod engine;
pub mod extend;
pub mod nest;
pub mod parallel;
pub mod relations;
pub mod serializability;
pub mod shard;
pub mod spec;
pub mod theorem;

pub use atomicity::{check_multilevel_atomic, is_multilevel_atomic, MlaCriterion};
pub use breakpoints::BreakpointDescription;
pub use cert::StaticCert;
pub use closure::CoherentClosure;
pub use engine::{ClosureEngine, CycleWitness, EngineCounters, PairProbe, RelationSignature};
pub use extend::{extend_to_total_order, witness_execution};
pub use nest::{Nest, NestBuilder};
pub use parallel::{ParallelShardedEngine, ParallelStats};
pub use shard::{EngineBackend, ShardedClosureEngine};
pub use spec::{AtomicSpec, BreakpointSpecification, ExecContext, FixedSpec, FreeSpec};
pub use theorem::{decide, is_correctable, Correctability};
