//! k-nests: nested equivalence classes of transactions (§4.2).
//!
//! A *k-nest* `π` assigns an equivalence relation `π(i)` to each level
//! `1 <= i <= k` such that `π(1)` has a single class, `π(k)` has singleton
//! classes, and each `π(i)` refines `π(i-1)`. `level(t, t')` is the largest
//! `i` with `(t, t')` in `π(i)` — "pairs with higher-numbered levels are
//! more closely related".
//!
//! # Representation
//!
//! A nest is stored as one *class path* per transaction: a vector of
//! `k - 2` class identifiers naming the transaction's class at levels
//! `2 .. k-1`. Level 1 is the implicit root class and level `k` the
//! implicit singleton `{t}`, so the nest axioms hold by construction:
//! refinement is prefix extension, and
//! `level(t, t') = 1 + (length of the longest common prefix)` for `t != t'`
//! (capped at `k-1`), while `level(t, t) = k`.

use mla_model::TxnId;

/// A k-nest over transactions `t0 .. t(n-1)` (dense [`TxnId`]s).
///
/// ```
/// use mla_core::nest::Nest;
/// use mla_model::TxnId;
///
/// // The paper's banking 4-nest: two same-family customers and an audit.
/// let nest = Nest::new(4, vec![vec![0, 0], vec![0, 0], vec![1, 1]]).unwrap();
/// assert_eq!(nest.level(TxnId(0), TxnId(1)), 3); // same family
/// assert_eq!(nest.level(TxnId(0), TxnId(2)), 1); // customer vs audit
/// assert_eq!(nest.level(TxnId(2), TxnId(2)), 4); // self
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Nest {
    k: usize,
    /// `paths[t]` has length `k - 2`: classes at levels `2 ..= k-1`.
    paths: Vec<Vec<u32>>,
}

/// Errors from [`Nest::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NestError {
    /// `k < 2`: a nest needs at least the root level and the singleton
    /// level.
    TooShallow {
        /// The offending k.
        k: usize,
    },
    /// A transaction's class path has the wrong length.
    BadPathLength {
        /// The transaction with the malformed path.
        txn: TxnId,
        /// Required path length (`k - 2`).
        expected: usize,
        /// Provided path length.
        found: usize,
    },
}

impl std::fmt::Display for NestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NestError::TooShallow { k } => write!(f, "k-nest requires k >= 2, got {k}"),
            NestError::BadPathLength {
                txn,
                expected,
                found,
            } => write!(
                f,
                "transaction {txn}: class path length {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for NestError {}

impl Nest {
    /// Builds a k-nest from per-transaction class paths. `paths[t]` names
    /// transaction `t`'s classes at levels `2 ..= k-1` and must have length
    /// `k - 2`.
    pub fn new(k: usize, paths: Vec<Vec<u32>>) -> Result<Self, NestError> {
        if k < 2 {
            return Err(NestError::TooShallow { k });
        }
        for (t, p) in paths.iter().enumerate() {
            if p.len() != k - 2 {
                return Err(NestError::BadPathLength {
                    txn: TxnId(t as u32),
                    expected: k - 2,
                    found: p.len(),
                });
            }
        }
        Ok(Nest { k, paths })
    }

    /// The trivial 2-nest over `n` transactions: `π(1)` relates everything,
    /// `π(2)` nothing. Under this nest, multilevel atomicity *is*
    /// serializability (§4.3).
    pub fn flat(n: usize) -> Self {
        Nest {
            k: 2,
            paths: vec![Vec::new(); n],
        }
    }

    /// Garcia-Molina's *compatibility sets* \[G\] — the paper's cited
    /// `k = 3` special case (§4.3): transactions in a common class may
    /// interleave arbitrarily; transactions in different classes must
    /// serialize. `class_of[t]` names transaction `t`'s class. Pair this
    /// nest with [`crate::spec::FreeSpec`]`{ k: 3 }` (breakpoints
    /// everywhere) for the full \[G\] semantics; any other specification
    /// gives the intermediate degrees the paper adds beyond \[G\].
    pub fn compatibility_sets(class_of: &[u32]) -> Self {
        Nest {
            k: 3,
            paths: class_of.iter().map(|&c| vec![c]).collect(),
        }
    }

    /// The depth of the nest.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of transactions covered.
    pub fn txn_count(&self) -> usize {
        self.paths.len()
    }

    /// The paper's `level(t, t')`: the largest `i` with `(t, t') ∈ π(i)`.
    ///
    /// # Panics
    /// Panics if either transaction is out of range.
    pub fn level(&self, t: TxnId, u: TxnId) -> usize {
        if t == u {
            return self.k;
        }
        let (a, b) = (&self.paths[t.index()], &self.paths[u.index()]);
        let common = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        1 + common
    }

    /// Whether `t` and `u` are in the same `π(i)` class.
    pub fn same_class_at(&self, t: TxnId, u: TxnId, i: usize) -> bool {
        assert!(i >= 1 && i <= self.k, "level {i} out of 1..={}", self.k);
        self.level(t, u) >= i
    }

    /// The class path of `t` (classes at levels `2 ..= k-1`).
    pub fn path(&self, t: TxnId) -> &[u32] {
        &self.paths[t.index()]
    }

    /// Levels `i` in `2 ..= k` where `π(i)` equals `π(i-1)` as a
    /// partition. Such a level adds no distinctions: any breakpoint
    /// description separating levels `i-1` and `i` is vacuous there, and
    /// the nest is observationally a `(k-1)`-nest. Since `π(i)` refines
    /// `π(i-1)` by construction, equality holds exactly when the class
    /// counts match.
    pub fn degenerate_levels(&self) -> Vec<usize> {
        (2..=self.k)
            .filter(|&i| self.classes_at(i).len() == self.classes_at(i - 1).len())
            .collect()
    }

    /// Groups transactions into the classes of `π(i)`.
    pub fn classes_at(&self, i: usize) -> Vec<Vec<TxnId>> {
        assert!(i >= 1 && i <= self.k, "level {i} out of 1..={}", self.k);
        if i == 1 {
            return vec![(0..self.paths.len() as u32).map(TxnId).collect()];
        }
        if i == self.k {
            return (0..self.paths.len() as u32)
                .map(|t| vec![TxnId(t)])
                .collect();
        }
        let mut groups: std::collections::BTreeMap<&[u32], Vec<TxnId>> = Default::default();
        for (t, p) in self.paths.iter().enumerate() {
            groups.entry(&p[..i - 1]).or_default().push(TxnId(t as u32));
        }
        groups.into_values().collect()
    }
}

/// Incremental builder for nests where transactions arrive one at a time
/// (used by the workload generators).
#[derive(Clone, Debug)]
pub struct NestBuilder {
    k: usize,
    paths: Vec<Vec<u32>>,
}

impl NestBuilder {
    /// Starts a builder for a k-nest (`k >= 2`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "k-nest requires k >= 2");
        NestBuilder {
            k,
            paths: Vec::new(),
        }
    }

    /// Adds the next transaction with the given class path (length `k-2`),
    /// returning its id.
    pub fn push(&mut self, path: Vec<u32>) -> TxnId {
        assert_eq!(path.len(), self.k - 2, "class path must have length k-2");
        self.paths.push(path);
        TxnId(self.paths.len() as u32 - 1)
    }

    /// Finishes the nest.
    pub fn build(self) -> Nest {
        Nest {
            k: self.k,
            paths: self.paths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's banking 4-nest: `π(2)` relates all customer and creditor
    /// transactions and isolates each bank audit; `π(3)` relates customer
    /// transactions of a common family.
    ///
    /// Encoding: path[0] = 0 for customer/creditor, 1 for the audit;
    /// path[1] = family id (audit gets its own).
    fn banking_nest() -> Nest {
        Nest::new(
            4,
            vec![
                vec![0, 0], // t0: customer, family 0
                vec![0, 0], // t1: customer, family 0
                vec![0, 1], // t2: customer, family 1
                vec![1, 2], // t3: bank audit
            ],
        )
        .unwrap()
    }

    #[test]
    fn levels_match_paper_banking_example() {
        let n = banking_nest();
        let (t0, t1, t2, audit) = (TxnId(0), TxnId(1), TxnId(2), TxnId(3));
        assert_eq!(n.level(t0, t1), 3, "same family");
        assert_eq!(n.level(t0, t2), 2, "both customers, different families");
        assert_eq!(n.level(t0, audit), 1, "audit is isolated at level 2");
        assert_eq!(n.level(t0, t0), 4, "self-level is k");
        assert_eq!(n.level(t1, t0), n.level(t0, t1), "symmetric");
    }

    #[test]
    fn same_class_at_boundaries() {
        let n = banking_nest();
        let (t0, t1, audit) = (TxnId(0), TxnId(1), TxnId(3));
        assert!(n.same_class_at(t0, audit, 1), "pi(1) relates everything");
        assert!(!n.same_class_at(t0, audit, 2));
        assert!(n.same_class_at(t0, t1, 3));
        assert!(!n.same_class_at(t0, t1, 4), "pi(k) is singletons");
        assert!(n.same_class_at(t0, t0, 4));
    }

    #[test]
    fn flat_nest_is_serializability_shape() {
        let n = Nest::flat(3);
        assert_eq!(n.k(), 2);
        for a in 0..3u32 {
            for b in 0..3u32 {
                let expect = if a == b { 2 } else { 1 };
                assert_eq!(n.level(TxnId(a), TxnId(b)), expect);
            }
        }
    }

    #[test]
    fn classes_at_each_level() {
        let n = banking_nest();
        assert_eq!(n.classes_at(1).len(), 1);
        assert_eq!(n.classes_at(1)[0].len(), 4);
        let l2 = n.classes_at(2);
        assert_eq!(l2.len(), 2); // {customers}, {audit}
        let mut sizes: Vec<usize> = l2.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3]);
        let l3 = n.classes_at(3);
        assert_eq!(l3.len(), 3); // {t0,t1}, {t2}, {audit}
        assert_eq!(n.classes_at(4).len(), 4);
    }

    #[test]
    fn refinement_holds_by_construction() {
        let n = banking_nest();
        // pi(i) refines pi(i-1): same class at i implies same class at i-1.
        for i in 2..=4 {
            for a in 0..4u32 {
                for b in 0..4u32 {
                    if n.same_class_at(TxnId(a), TxnId(b), i) {
                        assert!(n.same_class_at(TxnId(a), TxnId(b), i - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Nest::new(1, vec![]).unwrap_err(),
            NestError::TooShallow { k: 1 }
        );
        let err = Nest::new(3, vec![vec![0, 1]]).unwrap_err();
        assert_eq!(
            err,
            NestError::BadPathLength {
                txn: TxnId(0),
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn builder_round_trip() {
        let mut b = NestBuilder::new(4);
        assert_eq!(b.push(vec![0, 0]), TxnId(0));
        assert_eq!(b.push(vec![0, 1]), TxnId(1));
        let n = b.build();
        assert_eq!(n.level(TxnId(0), TxnId(1)), 2);
        assert_eq!(n.txn_count(), 2);
    }

    #[test]
    fn compatibility_sets_semantics() {
        // [G]: same class -> level 2 (free interleaving under FreeSpec);
        // different class -> level 1 (serialize).
        let n = Nest::compatibility_sets(&[0, 0, 1]);
        assert_eq!(n.k(), 3);
        assert_eq!(n.level(TxnId(0), TxnId(1)), 2);
        assert_eq!(n.level(TxnId(0), TxnId(2)), 1);
        assert_eq!(n.level(TxnId(2), TxnId(2)), 3);
        assert_eq!(n.classes_at(2).len(), 2);
    }

    #[test]
    fn degenerate_levels_found_where_partitions_repeat() {
        assert!(banking_nest().degenerate_levels().is_empty());
        // Every family has exactly one customer: pi(3) repeats pi(2), and
        // pi(4)'s singletons were already reached at level 3.
        let n = Nest::new(4, vec![vec![0, 0], vec![1, 1], vec![2, 2]]).unwrap();
        assert_eq!(n.degenerate_levels(), vec![3, 4]);
        // Flat 2-nest over one transaction: pi(2) == pi(1) trivially.
        assert_eq!(Nest::flat(1).degenerate_levels(), vec![2]);
        assert!(Nest::flat(3).degenerate_levels().is_empty());
    }

    #[test]
    fn cad_five_nest() {
        // §4.2's CAD example: pi(2) = {modifications} vs {snapshots};
        // pi(3) by specialty; pi(4) by team.
        let n = Nest::new(
            5,
            vec![
                vec![0, 0, 0], // modification, plumbing, team A
                vec![0, 0, 1], // modification, plumbing, team B
                vec![0, 1, 2], // modification, electrical, team C
                vec![1, 9, 9], // snapshot
            ],
        )
        .unwrap();
        assert_eq!(n.level(TxnId(0), TxnId(1)), 3, "same specialty");
        assert_eq!(n.level(TxnId(0), TxnId(2)), 2, "both modifications");
        assert_eq!(n.level(TxnId(0), TxnId(3)), 1, "snapshot vs modification");
        assert_eq!(n.level(TxnId(0), TxnId(0)), 5);
    }
}
