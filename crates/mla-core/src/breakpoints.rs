//! k-level breakpoint descriptions (§4.2).
//!
//! For a transaction execution with steps `0 .. n`, a *breakpoint* sits
//! between two consecutive steps; we identify it by the index of the step
//! it precedes (so breakpoint positions range over `1 ..= n-1`). A k-level
//! breakpoint description `B` assigns a breakpoint set to each level such
//! that:
//!
//! * `B(1)` has no breakpoints (one segment — the transaction is atomic at
//!   the coarsest level);
//! * `B(k)` has breakpoints everywhere (singleton segments);
//! * each level's breakpoints include the previous level's
//!   (`B(i)`'s *segmentation* refines `B(i-1)`'s).
//!
//! Transactions grouped in a small (deep) nest class see many of each
//! other's breakpoints — they may interleave finely; transactions related
//! only at a shallow level see few.

use mla_graph::BitSet;

/// A k-level breakpoint description over an `n`-step transaction
/// execution.
///
/// ```
/// use mla_core::breakpoints::BreakpointDescription;
///
/// // 5-step transfer: level-2 breakpoint after the 3rd step (the
/// // withdraw/deposit boundary), level-3 breakpoints everywhere.
/// let bd = BreakpointDescription::from_mid_levels(
///     4, 5, &[vec![3], vec![1, 2, 3, 4]],
/// ).unwrap();
/// assert_eq!(bd.segments(2), vec![(0, 2), (3, 4)]);
/// assert!(bd.breakpoint_after(2, 2));
/// assert!(!bd.breakpoint_after(2, 0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakpointDescription {
    k: usize,
    n: usize,
    /// `seg_end[i][s]` is the last step index of the level-`i+1` segment
    /// containing step `s` (precomputed for O(1) coherence queries).
    seg_end: Vec<Vec<u32>>,
    /// `bounds[i]` is the breakpoint set of level `i+1`, as positions in
    /// `1 ..= n-1`.
    bounds: Vec<BitSet>,
}

/// Errors from [`BreakpointDescription::from_mid_levels`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BreakpointError {
    /// `k < 2`.
    TooShallow {
        /// The offending k.
        k: usize,
    },
    /// The wrong number of mid-level boundary sets was supplied.
    WrongLevelCount {
        /// Required number of mid levels (`k - 2`).
        expected: usize,
        /// Supplied number.
        found: usize,
    },
    /// A breakpoint position lies outside `1 ..= n-1`.
    PositionOutOfRange {
        /// The level (1-based) containing the bad position.
        level: usize,
        /// The offending position.
        pos: usize,
        /// Number of steps.
        n: usize,
    },
    /// A level is missing a breakpoint present at the previous level,
    /// violating refinement.
    NotRefining {
        /// The level (1-based) missing the breakpoint.
        level: usize,
        /// The missing position.
        pos: usize,
    },
}

impl std::fmt::Display for BreakpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakpointError::TooShallow { k } => {
                write!(f, "breakpoint description requires k >= 2, got {k}")
            }
            BreakpointError::WrongLevelCount { expected, found } => {
                write!(
                    f,
                    "expected {expected} mid-level boundary sets, got {found}"
                )
            }
            BreakpointError::PositionOutOfRange { level, pos, n } => {
                write!(f, "level {level}: breakpoint position {pos} outside 1..{n}")
            }
            BreakpointError::NotRefining { level, pos } => write!(
                f,
                "level {level} lacks breakpoint {pos} present at level {}",
                level - 1
            ),
        }
    }
}

impl std::error::Error for BreakpointError {}

impl BreakpointDescription {
    /// Builds a description from explicit breakpoint positions for the
    /// *mid* levels `2 ..= k-1` (`mid[j]` is level `j+2`). Level 1 (no
    /// breakpoints) and level `k` (all breakpoints) are implicit.
    pub fn from_mid_levels(
        k: usize,
        n: usize,
        mid: &[Vec<usize>],
    ) -> Result<Self, BreakpointError> {
        if k < 2 {
            return Err(BreakpointError::TooShallow { k });
        }
        if mid.len() != k - 2 {
            return Err(BreakpointError::WrongLevelCount {
                expected: k - 2,
                found: mid.len(),
            });
        }
        let cap = n.max(1);
        let mut bounds: Vec<BitSet> = Vec::with_capacity(k);
        bounds.push(BitSet::new(cap)); // level 1: none
        for (j, level_bounds) in mid.iter().enumerate() {
            let mut set = BitSet::new(cap);
            for &pos in level_bounds {
                if pos == 0 || pos >= n {
                    return Err(BreakpointError::PositionOutOfRange {
                        level: j + 2,
                        pos,
                        n,
                    });
                }
                set.insert(pos);
            }
            bounds.push(set);
        }
        let mut all = BitSet::new(cap);
        for p in 1..n {
            all.insert(p);
        }
        bounds.push(all); // level k: everywhere

        // Refinement: level i's breakpoints must include level i-1's.
        for i in 1..bounds.len() {
            for pos in bounds[i - 1].iter() {
                if !bounds[i].contains(pos) {
                    return Err(BreakpointError::NotRefining { level: i + 1, pos });
                }
            }
        }
        Ok(Self::finish(k, n, bounds))
    }

    /// A description with no mid-level breakpoints: the transaction is
    /// atomic with respect to everything it is not `π(k)`-related to
    /// (i.e. everything but itself). With this description for every
    /// transaction, multilevel atomicity collapses to serializability at
    /// any k.
    pub fn atomic(k: usize, n: usize) -> Self {
        Self::from_mid_levels(k, n, &vec![Vec::new(); k.saturating_sub(2)])
            .expect("atomic description is always well-formed")
    }

    /// A description with breakpoints everywhere at every mid level: the
    /// transaction may be interrupted anywhere by any transaction it is
    /// `π(2)`-related to.
    pub fn free(k: usize, n: usize) -> Self {
        let all: Vec<usize> = (1..n).collect();
        Self::from_mid_levels(k, n, &vec![all; k.saturating_sub(2)])
            .expect("free description is always well-formed")
    }

    fn finish(k: usize, n: usize, bounds: Vec<BitSet>) -> Self {
        let mut seg_end = Vec::with_capacity(k);
        for set in &bounds {
            // Walk right-to-left: the segment end of step s is s if a
            // breakpoint follows s (or s is the last step), else the
            // segment end of s+1.
            let mut ends = vec![0u32; n];
            for s in (0..n).rev() {
                ends[s] = if s + 1 >= n || set.contains(s + 1) {
                    s as u32
                } else {
                    ends[s + 1]
                };
            }
            seg_end.push(ends);
        }
        BreakpointDescription {
            k,
            n,
            seg_end,
            bounds,
        }
    }

    /// The nest depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of steps described.
    pub fn step_count(&self) -> usize {
        self.n
    }

    /// Whether a level-`level` breakpoint separates step `seq` from step
    /// `seq + 1`. Positions past the last step count as breakpoints (a
    /// finished transaction is interruptible everywhere).
    pub fn breakpoint_after(&self, level: usize, seq: usize) -> bool {
        self.check_level(level);
        seq + 1 >= self.n || self.bounds[level - 1].contains(seq + 1)
    }

    /// The last step index of the level-`level` segment containing `seq`.
    pub fn segment_end(&self, level: usize, seq: usize) -> usize {
        self.check_level(level);
        assert!(seq < self.n, "step {seq} out of range 0..{}", self.n);
        self.seg_end[level - 1][seq] as usize
    }

    /// `(start, end)` step indices of the level-`level` segment containing
    /// `seq` (inclusive).
    pub fn segment_bounds(&self, level: usize, seq: usize) -> (usize, usize) {
        self.check_level(level);
        assert!(seq < self.n, "step {seq} out of range 0..{}", self.n);
        let mut start = seq;
        while start > 0 && !self.bounds[level - 1].contains(start) {
            start -= 1;
        }
        (start, self.seg_end[level - 1][seq] as usize)
    }

    /// The breakpoint positions of a level, ascending.
    pub fn boundaries(&self, level: usize) -> Vec<usize> {
        self.check_level(level);
        self.bounds[level - 1].iter().collect()
    }

    /// The segments of a level, as `(start, end)` inclusive index pairs in
    /// ascending order.
    pub fn segments(&self, level: usize) -> Vec<(usize, usize)> {
        self.check_level(level);
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.n {
            let end = self.seg_end[level - 1][start] as usize;
            out.push((start, end));
            start = end + 1;
        }
        out
    }

    fn check_level(&self, level: usize) {
        assert!(
            level >= 1 && level <= self.k,
            "level {level} out of 1..={}",
            self.k
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's banking example (§4.2): steps `w1 w2 w3 d1 d2`; level 2
    /// has one breakpoint between the withdrawals and the deposits; levels
    /// 3 and 4 are singletons.
    fn transfer_bd() -> BreakpointDescription {
        BreakpointDescription::from_mid_levels(4, 5, &[vec![3], vec![1, 2, 3, 4]]).unwrap()
    }

    #[test]
    fn paper_banking_segments() {
        let b = transfer_bd();
        assert_eq!(b.segments(1), vec![(0, 4)]);
        assert_eq!(b.segments(2), vec![(0, 2), (3, 4)]);
        assert_eq!(b.segments(3), vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(b.segments(4), b.segments(3));
    }

    #[test]
    fn segment_end_queries() {
        let b = transfer_bd();
        assert_eq!(b.segment_end(1, 0), 4);
        assert_eq!(b.segment_end(2, 0), 2);
        assert_eq!(b.segment_end(2, 2), 2);
        assert_eq!(b.segment_end(2, 3), 4);
        assert_eq!(b.segment_end(3, 2), 2);
        assert_eq!(b.segment_bounds(2, 4), (3, 4));
        assert_eq!(b.segment_bounds(1, 2), (0, 4));
    }

    #[test]
    fn breakpoint_after_matches_boundaries() {
        let b = transfer_bd();
        assert!(!b.breakpoint_after(2, 0));
        assert!(!b.breakpoint_after(2, 1));
        assert!(b.breakpoint_after(2, 2), "between w3 and d1");
        assert!(!b.breakpoint_after(2, 3));
        assert!(b.breakpoint_after(2, 4), "after the final step");
        assert!(b.breakpoint_after(4, 0));
        assert!(!b.breakpoint_after(1, 0));
    }

    #[test]
    fn atomic_and_free_extremes() {
        let a = BreakpointDescription::atomic(4, 5);
        assert_eq!(a.segments(2), vec![(0, 4)]);
        assert_eq!(a.segments(3), vec![(0, 4)]);
        assert_eq!(a.segments(4).len(), 5);

        let f = BreakpointDescription::free(4, 5);
        assert_eq!(f.segments(2).len(), 5);
        assert_eq!(f.segments(3).len(), 5);
        assert_eq!(f.segments(1), vec![(0, 4)]);
    }

    #[test]
    fn k2_has_no_choices() {
        // With k = 2 there is "only one possible breakpoint specification"
        // (§4.3): level 1 groups all steps, level 2 is singletons.
        let b = BreakpointDescription::from_mid_levels(2, 3, &[]).unwrap();
        assert_eq!(b.segments(1), vec![(0, 2)]);
        assert_eq!(b.segments(2).len(), 3);
        assert_eq!(b, BreakpointDescription::atomic(2, 3));
        assert_eq!(b, BreakpointDescription::free(2, 3));
    }

    #[test]
    fn refinement_violation_detected() {
        // Level 2 has breakpoint at 2 but level 3 does not.
        let err = BreakpointDescription::from_mid_levels(4, 4, &[vec![2], vec![1]]).unwrap_err();
        assert_eq!(err, BreakpointError::NotRefining { level: 3, pos: 2 });
    }

    #[test]
    fn position_bounds_checked() {
        let err = BreakpointDescription::from_mid_levels(3, 4, &[vec![4]]).unwrap_err();
        assert_eq!(
            err,
            BreakpointError::PositionOutOfRange {
                level: 2,
                pos: 4,
                n: 4
            }
        );
        let err = BreakpointDescription::from_mid_levels(3, 4, &[vec![0]]).unwrap_err();
        assert!(matches!(err, BreakpointError::PositionOutOfRange { .. }));
    }

    #[test]
    fn level_count_checked() {
        let err = BreakpointDescription::from_mid_levels(4, 3, &[vec![1]]).unwrap_err();
        assert_eq!(
            err,
            BreakpointError::WrongLevelCount {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn single_step_and_empty_transactions() {
        let b = BreakpointDescription::atomic(3, 1);
        assert_eq!(b.segments(2), vec![(0, 0)]);
        assert!(b.breakpoint_after(1, 0), "past the end counts");
        let empty = BreakpointDescription::atomic(3, 0);
        assert_eq!(empty.segments(2), Vec::<(usize, usize)>::new());
        assert_eq!(empty.step_count(), 0);
    }
}
