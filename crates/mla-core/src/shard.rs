//! Sharding the closure engine by entity partition.
//!
//! Lynch's model is explicitly distributed: asynchronous processes touch
//! disjoint entities (§2), and decisions about steps on disjoint
//! partitions should not have to contend on one shared engine. A
//! [`ShardedClosureEngine`] partitions entities across `N` shards
//! (entity `x` belongs to shard `x mod N`) and keeps one partition-local
//! [`ClosureEngine`] per *shard group*, so each decision pays frontier
//! and eviction cost proportional to its own partition's window, not the
//! global one.
//!
//! # Why groups, and why the exchange is exact
//!
//! Every closure-generating rule is local to the entities a transaction
//! touches: base edges need a shared entity, intra edges and
//! condition-(b) lifts stay inside one transaction, and transitivity
//! composes pairs that already exist. Hence, **as long as every
//! transaction's steps live inside one shard group, the global coherent
//! closure is exactly the disjoint union of the per-group closures** —
//! every cross-group frontier entry is `NONE`, and a candidate is cyclic
//! globally iff it is cyclic in its own group. That is the second
//! sharding invariant (see DESIGN.md), and it is what the differential
//! harness in `tests/sharded_engine_equivalence.rs` pins.
//!
//! A transaction is routed to the group owning its first step's shard.
//! When a later step crosses into a different group — which §6's
//! breakpoint discipline puts at a segment boundary, the only place a
//! transaction's entity set can grow across partitions — the two groups
//! *coalesce*: each side hands over its **ordered mailbox** (the
//! stamp-ordered log of its committed live steps), the merged log is
//! replayed stamp-ascending into a fresh engine via
//! [`ClosureEngine::absorb_step`], and the union group continues. The
//! replay cannot fail: the two histories are acyclic and entity-disjoint,
//! so their union is acyclic. Merging is monotone (groups only grow), so
//! a fully partitioned workload never merges and keeps per-partition
//! cost, while an adversarial workload degrades gracefully to one group
//! — i.e. to the unsharded engine.
//!
//! # Window eviction as a per-shard projection
//!
//! Eviction eligibility of a transaction in group `G` only changes when
//! `G`'s own state changes (a step committed in `G`, or a `G`
//! transaction aborted): cross-group closure pairs do not exist, so
//! reachability from live transactions decomposes per group. The engine
//! therefore tracks which groups were touched since the last
//! [`evict_unreachable`](ShardedClosureEngine::evict_unreachable) call
//! and projects only those — the same evictions, at the same decisions,
//! as a global scan.
//!
//! [`EngineBackend`] is the routing API the §6 controls program against:
//! one enum over the unsharded engine and the sharded one, so `MlaDetect`
//! / `MlaPrevent` stay monomorphic and the shard count is a runtime
//! choice.

use std::collections::{BTreeSet, HashMap};

use mla_model::{Execution, Step, TxnId};

use crate::engine::{ClosureEngine, CycleWitness, EngineCounters};
use crate::nest::Nest;
use crate::parallel::{ParallelShardedEngine, ParallelStats};
use crate::spec::BreakpointSpecification;

/// One shard group: a partition-local engine plus its ordered mailbox.
struct Group<S> {
    engine: ClosureEngine<S>,
    /// The group's ordered mailbox: its committed live steps, stamped
    /// with the global commit order — what the group hands over when it
    /// coalesces with another.
    log: Vec<(u64, Step)>,
    /// Counters inherited from engines retired by merges, so the sum
    /// over groups accounts for all work ever done.
    carry: EngineCounters,
}

/// A tentative step pending resolution.
struct Pending {
    group: usize,
    step: Step,
    /// Whether the transaction was new to the engine (its group routing
    /// only persists on commit).
    new_txn: bool,
}

/// An entity-partitioned closure engine: N shards, dynamically coalesced
/// groups, exact equivalence with the unsharded [`ClosureEngine`]. See
/// the [module docs](self).
pub struct ShardedClosureEngine<S> {
    nest: Nest,
    spec: S,
    shards: usize,
    /// Shard -> owning group slot (updated eagerly on merge).
    shard_group: Vec<usize>,
    /// Group slots; merged-away slots become `None`.
    groups: Vec<Option<Group<S>>>,
    /// Transaction -> its group (every transaction's steps live in
    /// exactly one group — the grouping invariant).
    txn_group: HashMap<TxnId, usize>,
    /// Global commit stamp, totally ordering steps across groups.
    stamp: u64,
    pending: Option<Pending>,
    /// Groups whose state changed since the last eviction pass.
    touched: BTreeSet<usize>,
    merges: u64,
}

impl<S: BreakpointSpecification + Clone> ShardedClosureEngine<S> {
    /// An empty sharded engine with `shards >= 1` entity partitions.
    pub fn new(nest: Nest, spec: S, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        let groups = (0..shards)
            .map(|_| {
                Some(Group {
                    engine: ClosureEngine::new(nest.clone(), spec.clone()),
                    log: Vec::new(),
                    carry: EngineCounters::default(),
                })
            })
            .collect();
        ShardedClosureEngine {
            nest,
            spec,
            shards,
            shard_group: (0..shards).collect(),
            groups,
            txn_group: HashMap::new(),
            stamp: 0,
            pending: None,
            touched: BTreeSet::new(),
            merges: 0,
        }
    }

    /// Number of configured shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of live (non-coalesced) groups.
    pub fn group_count(&self) -> usize {
        self.groups.iter().flatten().count()
    }

    /// How many group coalescences have happened.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    fn shard_of(&self, step: &Step) -> usize {
        step.entity.0 as usize % self.shards
    }

    fn group_mut(&mut self, g: usize) -> &mut Group<S> {
        self.groups[g].as_mut().expect("group slot is live")
    }

    /// Offers one step tentatively — the sharded mirror of
    /// [`ClosureEngine::apply_step`]: route the step to its entity's
    /// group (coalescing with the transaction's current group first if
    /// they differ), and apply it there.
    pub fn apply_step(&mut self, step: Step) -> Result<(), CycleWitness> {
        assert!(
            self.pending.is_none(),
            "previous tentative step not resolved"
        );
        let home = self.shard_group[self.shard_of(&step)];
        let new_txn = !self.txn_group.contains_key(&step.txn);
        let group = match self.txn_group.get(&step.txn).copied() {
            Some(g) if g != home => self.merge(g, home),
            Some(g) => g,
            None => home,
        };
        match self.group_mut(group).engine.apply_step(step) {
            Ok(()) => {
                self.pending = Some(Pending {
                    group,
                    step,
                    new_txn,
                });
                Ok(())
            }
            Err(witness) => Err(witness),
        }
    }

    /// Makes the pending step permanent and appends it to its group's
    /// mailbox.
    pub fn commit_step(&mut self) {
        let p = self.pending.take().expect("no pending step to commit");
        let stamp = self.stamp;
        self.stamp += 1;
        let g = self.group_mut(p.group);
        g.engine.commit_step();
        g.log.push((stamp, p.step));
        if p.new_txn {
            self.txn_group.insert(p.step.txn, p.group);
        }
        self.touched.insert(p.group);
    }

    /// Undoes the pending step. A merge the attempt triggered stays — it
    /// is semantics-preserving (the merged engine maintains the same
    /// union closure) and merging is monotone anyway.
    pub fn rollback_step(&mut self) {
        let p = self.pending.take().expect("no pending step to roll back");
        self.group_mut(p.group).engine.rollback_step();
    }

    /// Whether a tentative step is pending resolution.
    pub fn pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Mirrors [`ClosureEngine::performed`]: backfills observed values in
    /// the owning group's engine and mailbox.
    pub fn performed(&mut self, step: &Step) {
        let Some(&g) = self.txn_group.get(&step.txn) else {
            return;
        };
        let grp = self.group_mut(g);
        grp.engine.performed(step);
        if let Some(entry) = grp
            .log
            .iter_mut()
            .rev()
            .find(|(_, s)| s.txn == step.txn && s.seq == step.seq)
        {
            entry.1.observed = step.observed;
            entry.1.wrote = step.wrote;
        }
    }

    /// Mirrors [`ClosureEngine::remove_txn`] in the owning group; the
    /// transaction's mailbox entries leave with it (a restarted
    /// incarnation routes afresh by its first new step).
    pub fn remove_txn(&mut self, t: TxnId) {
        assert!(
            self.pending.is_none(),
            "resolve the pending step before removal"
        );
        let Some(g) = self.txn_group.remove(&t) else {
            return;
        };
        let grp = self.group_mut(g);
        grp.engine.remove_txn(t);
        grp.log.retain(|(_, s)| s.txn != t);
        self.touched.insert(g);
    }

    /// The per-shard eviction projection: runs
    /// [`ClosureEngine::evict_unreachable`] on exactly the groups whose
    /// state changed since the last call (commits and aborts mark their
    /// group; untouched groups cannot have changed eligibility — see the
    /// module docs). Returns the union of evicted transactions,
    /// ascending.
    pub fn evict_unreachable(&mut self, is_source: impl Fn(TxnId) -> bool) -> Vec<TxnId> {
        assert!(
            self.pending.is_none(),
            "resolve the pending step before eviction"
        );
        let scope: Vec<usize> = std::mem::take(&mut self.touched).into_iter().collect();
        let mut evicted: Vec<TxnId> = Vec::new();
        for g in scope {
            let grp = self.groups[g].as_mut().expect("touched groups are live");
            let out = grp.engine.evict_unreachable(&is_source);
            if !out.is_empty() {
                grp.log.retain(|(_, s)| !out.contains(&s.txn));
                for &t in &out {
                    self.txn_group.remove(&t);
                }
                evicted.extend(out);
            }
        }
        evicted.sort_unstable_by_key(|t| t.0);
        evicted
    }

    /// Closure predecessors of the pending step (see
    /// [`ClosureEngine::pending_predecessors`]): answered entirely by
    /// the one group holding the candidate — other groups' transactions
    /// cannot be related to it.
    pub fn pending_predecessors(&self) -> Vec<TxnId> {
        let p = self.pending.as_ref().expect("no pending step to probe");
        self.groups[p.group]
            .as_ref()
            .expect("pending group is live")
            .engine
            .pending_predecessors()
    }

    /// Schedules a rebuild in every group (the A1 ablation hook).
    pub fn force_rebuild(&mut self) {
        for g in self.groups.iter_mut().flatten() {
            g.engine.force_rebuild();
        }
    }

    /// Flushes scheduled rebuilds in every group.
    pub fn flush_rebuild(&mut self) {
        for g in self.groups.iter_mut().flatten() {
            g.engine.flush_rebuild();
        }
    }

    /// Whether any group has a rebuild scheduled.
    pub fn rebuild_pending(&self) -> bool {
        self.groups
            .iter()
            .flatten()
            .any(|g| g.engine.rebuild_pending())
    }

    /// Total live steps across groups.
    pub fn live_count(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .map(|g| g.engine.live_count())
            .sum()
    }

    /// Work counters per live group (each including the counters of the
    /// engines it absorbed by merging). Their sum is the engine-wide
    /// total reported by [`counters`](Self::counters).
    pub fn shard_counters(&self) -> Vec<EngineCounters> {
        self.groups
            .iter()
            .flatten()
            .map(|g| g.carry + *g.engine.counters())
            .collect()
    }

    /// Engine-wide work counters: the sum of
    /// [`shard_counters`](Self::shard_counters). `steps_applied` counts
    /// each offered decision exactly once (merge replays are not offers),
    /// so per-decision ratios stay comparable to the unsharded engine.
    pub fn counters(&self) -> EngineCounters {
        self.shard_counters().into_iter().sum()
    }

    /// The live steps across all groups as one [`Execution`], in global
    /// commit-stamp order — identical to the unsharded engine's arena
    /// order for the same decision sequence.
    pub fn execution(&self) -> Execution {
        let mut stamped: Vec<(u64, Step)> = self
            .groups
            .iter()
            .flatten()
            .flat_map(|g| g.log.iter().copied())
            .collect();
        stamped.sort_unstable_by_key(|&(stamp, _)| stamp);
        Execution::new(stamped.into_iter().map(|(_, s)| s).collect::<Vec<_>>())
            .expect("group mailboxes preserve per-transaction order")
    }

    /// Whether step `u` precedes step `v` in the maintained (union)
    /// closure, by stable identity. Steps in different groups are never
    /// related — the disjoint-union invariant.
    pub fn related_steps(&self, u: (TxnId, u32), v: (TxnId, u32)) -> bool {
        let (Some(&gu), Some(&gv)) = (self.txn_group.get(&u.0), self.txn_group.get(&v.0)) else {
            return false;
        };
        if gu != gv {
            return false;
        }
        let engine = &self.groups[gu].as_ref().expect("group slot is live").engine;
        let row = |(t, s): (TxnId, u32)| -> Option<usize> {
            let lt = engine.local_of(t)?;
            engine.steps_of(lt).get(s as usize).copied()
        };
        match (row(u), row(v)) {
            (Some(ru), Some(rv)) => engine.related(ru, rv),
            _ => false,
        }
    }

    /// Coalesces two groups: merge the stamped mailboxes, replay into a
    /// fresh engine, repoint shards and transactions. Returns the
    /// surviving slot.
    fn merge(&mut self, a: usize, b: usize) -> usize {
        debug_assert_ne!(a, b);
        let (dst, src) = (a.min(b), a.max(b));
        let gs = self.groups[src].take().expect("merging a live group");
        let gd = self.groups[dst].take().expect("merging into a live group");
        let carry = gd.carry + *gd.engine.counters() + gs.carry + *gs.engine.counters();
        // Merge the two stamp-ascending mailboxes.
        let mut log: Vec<(u64, Step)> = Vec::with_capacity(gd.log.len() + gs.log.len());
        let (mut i, mut j) = (0, 0);
        while i < gd.log.len() || j < gs.log.len() {
            let from_dst = j >= gs.log.len() || (i < gd.log.len() && gd.log[i].0 < gs.log[j].0);
            if from_dst {
                log.push(gd.log[i]);
                i += 1;
            } else {
                log.push(gs.log[j]);
                j += 1;
            }
        }
        let mut engine = ClosureEngine::new(self.nest.clone(), self.spec.clone());
        for &(_, s) in &log {
            engine
                .absorb_step(s)
                .expect("disjoint acyclic shard histories merge acyclically");
        }
        for g in self.shard_group.iter_mut() {
            if *g == src {
                *g = dst;
            }
        }
        for g in self.txn_group.values_mut() {
            if *g == src {
                *g = dst;
            }
        }
        if self.touched.remove(&src) {
            self.touched.insert(dst);
        }
        self.groups[dst] = Some(Group { engine, log, carry });
        self.merges += 1;
        dst
    }
}

/// The engine-routing API the §6 controls program against: either one
/// global [`ClosureEngine`] or a [`ShardedClosureEngine`], behind one
/// monomorphic surface. The two are exactly equivalent decision for
/// decision (`tests/sharded_engine_equivalence.rs` is the oracle); the
/// sharded variant additionally reports per-shard counters.
// One backend exists per control, never in a collection, so the size
// spread between the inline engines is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum EngineBackend<S> {
    /// One global engine (the PR-1 behavior).
    Unsharded(ClosureEngine<S>),
    /// The entity-partitioned engine.
    Sharded(ShardedClosureEngine<S>),
    /// The entity-partitioned engine with its groups spread across a
    /// worker-thread pool (see [`crate::parallel`]).
    Parallel(ParallelShardedEngine<S>),
}

impl<S: BreakpointSpecification + Clone + Send + 'static> EngineBackend<S> {
    /// An unsharded backend.
    pub fn unsharded(nest: Nest, spec: S) -> Self {
        EngineBackend::Unsharded(ClosureEngine::new(nest, spec))
    }

    /// A backend with `shards` entity partitions.
    pub fn sharded(nest: Nest, spec: S, shards: usize) -> Self {
        EngineBackend::Sharded(ShardedClosureEngine::new(nest, spec, shards))
    }

    /// A thread-parallel backend with `shards` entity partitions spread
    /// over `workers` threads.
    pub fn parallel(nest: Nest, spec: S, shards: usize, workers: usize) -> Self {
        EngineBackend::Parallel(ParallelShardedEngine::new(nest, spec, shards, workers))
    }

    /// `shards == 0` selects the unsharded engine, otherwise the sharded
    /// one — the constructor controls expose as a runtime knob.
    pub fn with_shards(nest: Nest, spec: S, shards: usize) -> Self {
        if shards == 0 {
            Self::unsharded(nest, spec)
        } else {
            Self::sharded(nest, spec, shards)
        }
    }

    /// The full runtime knob: `workers == 0` selects the serial engine
    /// chosen by [`with_shards`](Self::with_shards); `workers >= 1`
    /// selects the thread-parallel engine (which requires `shards >= 1`).
    pub fn with_parallelism(nest: Nest, spec: S, shards: usize, workers: usize) -> Self {
        if workers == 0 {
            Self::with_shards(nest, spec, shards)
        } else {
            assert!(shards >= 1, "a parallel backend needs at least one shard");
            Self::parallel(nest, spec, shards, workers)
        }
    }

    /// Shard count (0 for the unsharded engine).
    pub fn shards(&self) -> usize {
        match self {
            EngineBackend::Unsharded(_) => 0,
            EngineBackend::Sharded(e) => e.shards(),
            EngineBackend::Parallel(e) => e.shards(),
        }
    }

    /// Worker threads (0 for the serial backends).
    pub fn workers(&self) -> usize {
        match self {
            EngineBackend::Parallel(e) => e.workers(),
            _ => 0,
        }
    }

    /// Worker-pool occupancy and barrier statistics (`None` for the
    /// serial backends).
    pub fn parallel_stats(&self) -> Option<ParallelStats> {
        match self {
            EngineBackend::Parallel(e) => Some(e.stats()),
            _ => None,
        }
    }

    /// See [`ClosureEngine::apply_step`].
    pub fn apply_step(&mut self, step: Step) -> Result<(), CycleWitness> {
        match self {
            EngineBackend::Unsharded(e) => e.apply_step(step),
            EngineBackend::Sharded(e) => e.apply_step(step),
            EngineBackend::Parallel(e) => e.apply_step(step),
        }
    }

    /// See [`ClosureEngine::commit_step`].
    pub fn commit_step(&mut self) {
        match self {
            EngineBackend::Unsharded(e) => e.commit_step(),
            EngineBackend::Sharded(e) => e.commit_step(),
            EngineBackend::Parallel(e) => e.commit_step(),
        }
    }

    /// See [`ClosureEngine::rollback_step`].
    pub fn rollback_step(&mut self) {
        match self {
            EngineBackend::Unsharded(e) => e.rollback_step(),
            EngineBackend::Sharded(e) => e.rollback_step(),
            EngineBackend::Parallel(e) => e.rollback_step(),
        }
    }

    /// Whether a tentative step is pending resolution.
    pub fn pending(&self) -> bool {
        match self {
            EngineBackend::Unsharded(e) => e.pending(),
            EngineBackend::Sharded(e) => e.pending(),
            EngineBackend::Parallel(e) => e.pending(),
        }
    }

    /// Decides a whole stream under the batch poison rule: grants
    /// auto-commit; a denial poisons its transaction for the rest of the
    /// batch (later steps are denied with the same witness, never
    /// applied — the transaction's `seq` chain is broken anyway). The
    /// serial backends run the reference loop below; the parallel
    /// backend pipelines it across its workers
    /// ([`ParallelShardedEngine::decide_batch`]) with identical
    /// observable behavior.
    pub fn decide_batch(&mut self, steps: &[Step]) -> Vec<Result<(), CycleWitness>> {
        if let EngineBackend::Parallel(e) = self {
            return e.decide_batch(steps);
        }
        let mut poisoned: HashMap<TxnId, CycleWitness> = HashMap::new();
        let mut verdicts = Vec::with_capacity(steps.len());
        for &step in steps {
            if let Some(w) = poisoned.get(&step.txn) {
                verdicts.push(Err(w.clone()));
                continue;
            }
            match self.apply_step(step) {
                Ok(()) => {
                    self.commit_step();
                    verdicts.push(Ok(()));
                }
                Err(w) => {
                    poisoned.insert(step.txn, w.clone());
                    verdicts.push(Err(w));
                }
            }
        }
        verdicts
    }

    /// See [`ClosureEngine::performed`].
    pub fn performed(&mut self, step: &Step) {
        match self {
            EngineBackend::Unsharded(e) => e.performed(step),
            EngineBackend::Sharded(e) => e.performed(step),
            EngineBackend::Parallel(e) => e.performed(step),
        }
    }

    /// See [`ClosureEngine::remove_txn`].
    pub fn remove_txn(&mut self, t: TxnId) {
        match self {
            EngineBackend::Unsharded(e) => e.remove_txn(t),
            EngineBackend::Sharded(e) => e.remove_txn(t),
            EngineBackend::Parallel(e) => e.remove_txn(t),
        }
    }

    /// See [`ClosureEngine::evict_unreachable`] /
    /// [`ShardedClosureEngine::evict_unreachable`].
    pub fn evict_unreachable(&mut self, is_source: impl Fn(TxnId) -> bool) -> Vec<TxnId> {
        match self {
            EngineBackend::Unsharded(e) => {
                let mut out = e.evict_unreachable(is_source);
                out.sort_unstable_by_key(|t| t.0);
                out
            }
            EngineBackend::Sharded(e) => e.evict_unreachable(is_source),
            EngineBackend::Parallel(e) => e.evict_unreachable(is_source),
        }
    }

    /// See [`ClosureEngine::pending_predecessors`].
    pub fn pending_predecessors(&self) -> Vec<TxnId> {
        match self {
            EngineBackend::Unsharded(e) => e.pending_predecessors(),
            EngineBackend::Sharded(e) => e.pending_predecessors(),
            EngineBackend::Parallel(e) => e.pending_predecessors(),
        }
    }

    /// See [`ClosureEngine::force_rebuild`].
    pub fn force_rebuild(&mut self) {
        match self {
            EngineBackend::Unsharded(e) => e.force_rebuild(),
            EngineBackend::Sharded(e) => e.force_rebuild(),
            EngineBackend::Parallel(e) => e.force_rebuild(),
        }
    }

    /// See [`ClosureEngine::flush_rebuild`].
    pub fn flush_rebuild(&mut self) {
        match self {
            EngineBackend::Unsharded(e) => e.flush_rebuild(),
            EngineBackend::Sharded(e) => e.flush_rebuild(),
            EngineBackend::Parallel(e) => e.flush_rebuild(),
        }
    }

    /// Whether a rebuild is scheduled (in any group).
    pub fn rebuild_pending(&self) -> bool {
        match self {
            EngineBackend::Unsharded(e) => e.rebuild_pending(),
            EngineBackend::Sharded(e) => e.rebuild_pending(),
            EngineBackend::Parallel(e) => e.rebuild_pending(),
        }
    }

    /// Total live steps.
    pub fn live_count(&self) -> usize {
        match self {
            EngineBackend::Unsharded(e) => e.live_count(),
            EngineBackend::Sharded(e) => e.live_count(),
            EngineBackend::Parallel(e) => e.live_count(),
        }
    }

    /// Total work counters (the sum over shards for the sharded engine).
    pub fn counters(&self) -> EngineCounters {
        match self {
            EngineBackend::Unsharded(e) => *e.counters(),
            EngineBackend::Sharded(e) => e.counters(),
            EngineBackend::Parallel(e) => e.counters(),
        }
    }

    /// Per-shard work counters — a single entry for the unsharded
    /// engine, one per live group for the sharded one. Always sums to
    /// [`counters`](Self::counters).
    pub fn shard_counters(&self) -> Vec<EngineCounters> {
        match self {
            EngineBackend::Unsharded(e) => vec![*e.counters()],
            EngineBackend::Sharded(e) => e.shard_counters(),
            EngineBackend::Parallel(e) => e.shard_counters(),
        }
    }

    /// Group coalescences so far (0 for the unsharded engine).
    pub fn merge_count(&self) -> u64 {
        match self {
            EngineBackend::Unsharded(_) => 0,
            EngineBackend::Sharded(e) => e.merge_count(),
            EngineBackend::Parallel(e) => e.merge_count(),
        }
    }

    /// The maintained live execution in performance order.
    pub fn execution(&self) -> Execution {
        match self {
            EngineBackend::Unsharded(e) => e.execution(),
            EngineBackend::Sharded(e) => e.execution(),
            EngineBackend::Parallel(e) => e.execution(),
        }
    }

    /// Whether step `u` precedes step `v` in the maintained closure, by
    /// stable `(transaction, seq)` identity; `false` if either step is
    /// not live.
    pub fn related_steps(&self, u: (TxnId, u32), v: (TxnId, u32)) -> bool {
        match self {
            EngineBackend::Unsharded(e) => {
                let row = |(t, s): (TxnId, u32)| -> Option<usize> {
                    let lt = e.local_of(t)?;
                    e.steps_of(lt).get(s as usize).copied()
                };
                match (row(u), row(v)) {
                    (Some(ru), Some(rv)) => e.related(ru, rv),
                    _ => false,
                }
            }
            EngineBackend::Sharded(e) => e.related_steps(u, v),
            EngineBackend::Parallel(e) => e.related_steps(u, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AtomicSpec;
    use mla_model::EntityId;

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    /// Drives the same step list through the unsharded engine and a
    /// sharded one, asserting verdict-by-verdict agreement, and returns
    /// both for further probing.
    fn drive(
        shards: usize,
        order: &[Step],
    ) -> (ClosureEngine<AtomicSpec>, ShardedClosureEngine<AtomicSpec>) {
        let nest = Nest::flat(8);
        let spec = AtomicSpec { k: 2 };
        let mut flat = ClosureEngine::new(nest.clone(), spec.clone());
        let mut sharded = ShardedClosureEngine::new(nest, spec, shards);
        for &s in order {
            let a = flat.apply_step(s);
            let b = sharded.apply_step(s);
            assert_eq!(a.is_ok(), b.is_ok(), "verdict diverged at {s:?}");
            if a.is_ok() {
                flat.commit_step();
                sharded.commit_step();
            }
        }
        (flat, sharded)
    }

    #[test]
    fn disjoint_partitions_never_merge() {
        // Entities 0/2 and 1/3 split cleanly across 2 shards.
        let order = [
            step(0, 0, 0),
            step(1, 0, 1),
            step(0, 1, 2),
            step(1, 1, 3),
            step(2, 0, 0),
            step(3, 0, 1),
        ];
        let (flat, sharded) = drive(2, &order);
        assert_eq!(sharded.merge_count(), 0);
        assert_eq!(sharded.group_count(), 2);
        assert_eq!(sharded.live_count(), flat.live_count());
        assert_eq!(sharded.execution().steps(), flat.execution().steps());
        // Cross-partition steps are unrelated; in-partition conflicts are.
        assert!(sharded.related_steps((TxnId(0), 0), (TxnId(2), 0)));
        assert!(!sharded.related_steps((TxnId(0), 0), (TxnId(1), 0)));
    }

    #[test]
    fn crossing_step_coalesces_groups_exactly() {
        // t0 starts on shard 0, t1 on shard 1, then t0 crosses onto
        // entity 1: the groups must merge and the conflict be seen.
        let order = [step(0, 0, 0), step(1, 0, 1), step(0, 1, 1)];
        let (flat, sharded) = drive(2, &order);
        assert_eq!(sharded.merge_count(), 1);
        assert_eq!(sharded.group_count(), 1);
        assert_eq!(sharded.execution().steps(), flat.execution().steps());
        assert!(sharded.related_steps((TxnId(1), 0), (TxnId(0), 1)));
    }

    #[test]
    fn cycle_rejected_identically_after_merge() {
        // The classic weave across two entities on different shards:
        // rejection must survive coalescing.
        let order = [step(0, 0, 0), step(1, 0, 0), step(1, 1, 1)];
        let nest = Nest::flat(4);
        let spec = AtomicSpec { k: 2 };
        let mut flat = ClosureEngine::new(nest.clone(), spec.clone());
        let mut sharded = ShardedClosureEngine::new(nest, spec, 2);
        for &s in &order {
            flat.apply_step(s).unwrap();
            flat.commit_step();
            sharded.apply_step(s).unwrap();
            sharded.commit_step();
        }
        let closing = step(0, 1, 1);
        let wf = flat.apply_step(closing).unwrap_err();
        let ws = sharded.apply_step(closing).unwrap_err();
        assert_eq!(wf.txns, ws.txns);
        assert!(!sharded.pending());
        assert_eq!(sharded.live_count(), flat.live_count());
    }

    #[test]
    fn one_shard_counters_match_unsharded_exactly() {
        let order = [
            step(0, 0, 0),
            step(1, 0, 1),
            step(0, 1, 1),
            step(2, 0, 2),
            step(1, 1, 2),
        ];
        let (flat, sharded) = drive(1, &order);
        assert_eq!(sharded.merge_count(), 0);
        assert_eq!(sharded.counters(), *flat.counters());
        assert_eq!(sharded.shard_counters(), vec![*flat.counters()]);
    }

    #[test]
    fn shard_counters_sum_to_total() {
        let order = [
            step(0, 0, 0),
            step(1, 0, 1),
            step(2, 0, 2),
            step(0, 1, 4),
            step(1, 1, 5),
            step(2, 1, 2),
        ];
        let (_, sharded) = drive(4, &order);
        let total: EngineCounters = sharded.shard_counters().into_iter().sum();
        assert_eq!(total, sharded.counters());
        assert_eq!(total.steps_applied, 6);
    }

    #[test]
    fn scoped_eviction_matches_global_rule() {
        // t0 committed and fully before t1 in shard 0; shard 1 untouched
        // by the abort machinery. The scoped pass must evict exactly what
        // a global scan would.
        let order = [
            step(0, 0, 0),
            step(0, 1, 2),
            step(1, 0, 0),
            step(1, 1, 2),
            step(2, 0, 1),
        ];
        let (mut flat, mut sharded) = drive(2, &order);
        let committed = |t: TxnId| t != TxnId(0);
        let mut ef = flat.evict_unreachable(&committed);
        ef.sort_unstable_by_key(|t| t.0);
        let es = sharded.evict_unreachable(&committed);
        assert_eq!(ef, vec![TxnId(0)]);
        assert_eq!(es, ef);
        assert_eq!(sharded.live_count(), flat.live_count());
    }

    #[test]
    fn rollback_leaves_routing_unpersisted() {
        let nest = Nest::flat(4);
        let spec = AtomicSpec { k: 2 };
        let mut sharded = ShardedClosureEngine::new(nest, spec, 2);
        sharded.apply_step(step(0, 0, 0)).unwrap();
        sharded.rollback_step();
        // The transaction never committed a step: it can route to a
        // different shard afresh.
        sharded.apply_step(step(0, 0, 1)).unwrap();
        sharded.commit_step();
        assert_eq!(sharded.merge_count(), 0);
        assert_eq!(sharded.live_count(), 1);
    }

    #[test]
    fn backend_routes_both_variants() {
        let nest = Nest::flat(4);
        let spec = AtomicSpec { k: 2 };
        for shards in [0usize, 2] {
            let mut b = EngineBackend::with_shards(nest.clone(), spec.clone(), shards);
            assert_eq!(b.shards(), shards);
            b.apply_step(step(0, 0, 0)).unwrap();
            b.commit_step();
            b.apply_step(step(1, 0, 0)).unwrap();
            assert_eq!(b.pending_predecessors(), vec![TxnId(0)]);
            b.commit_step();
            assert_eq!(b.live_count(), 2);
            assert_eq!(
                b.shard_counters().into_iter().sum::<EngineCounters>(),
                b.counters()
            );
            assert!(b.related_steps((TxnId(0), 0), (TxnId(1), 0)));
        }
    }
}
