//! Theorem 2: the characterization of correctable executions (§5.2).
//!
//! > Let `e` be an execution of `S`. Then `e` is correctable if and only
//! > if the coherent closure of `<=_e` with respect to `π` and `𝔍(𝔅, e)`
//! > is a partial order.
//!
//! [`decide`] is the decision procedure: it computes the coherent closure
//! in frontier form and returns either a multilevel-atomic *witness*
//! execution (via the constructive Lemma 1) or a concrete dependency
//! *cycle* explaining why no equivalent multilevel-atomic execution
//! exists. This mirrors the classical serializability pipeline — conflict
//! graph, acyclicity, topological serialization order — generalized to
//! arbitrary nests and breakpoints.

use mla_model::{Execution, TxnId};

use crate::closure::CoherentClosure;
use crate::extend::witness_execution;
use crate::nest::Nest;
use crate::spec::{BreakpointSpecification, ContextError, ExecContext};

/// A step reference in a cycle report: which transaction, which of its
/// steps, and where the step sat in the checked execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRef {
    /// The transaction.
    pub txn: TxnId,
    /// The step's sequence number within the transaction.
    pub seq: u32,
    /// The step's global index in the checked execution.
    pub global: usize,
}

/// Why an execution is not correctable: a cycle in the coherent closure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleReport {
    /// The steps on the cycle, in relation order (each is related before
    /// the next; the last is related before the first).
    pub steps: Vec<StepRef>,
}

impl std::fmt::Display for CycleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "coherent-closure cycle:")?;
        for s in &self.steps {
            write!(f, " {}#{}", s.txn, s.seq)?;
        }
        Ok(())
    }
}

/// The outcome of the Theorem 2 decision procedure.
pub enum Correctability {
    /// The execution is correctable; `witness` is an equivalent
    /// multilevel-atomic execution (Lemma 1's coherent total order).
    Correctable {
        /// The reordered, multilevel-atomic witness.
        witness: Execution,
    },
    /// The execution is not correctable; `cycle` is a coherent-closure
    /// cycle.
    NotCorrectable {
        /// The offending cycle.
        cycle: CycleReport,
    },
}

impl Correctability {
    /// Whether the verdict is "correctable".
    pub fn is_correctable(&self) -> bool {
        matches!(self, Correctability::Correctable { .. })
    }
}

/// Runs the full decision procedure on a prepared context.
pub fn decide_ctx(ctx: &ExecContext<'_>) -> Correctability {
    let closure = CoherentClosure::compute(ctx);
    if closure.is_partial_order() {
        let witness =
            witness_execution(ctx, &closure).expect("acyclic closure always extends (Lemma 1)");
        Correctability::Correctable { witness }
    } else {
        let cycle = closure
            .witness_cycle(ctx)
            .expect("cyclic closure yields a witness cycle");
        let steps = cycle
            .nodes()
            .iter()
            .map(|&v| {
                let v = v as usize;
                StepRef {
                    txn: ctx.txn_id(ctx.txn_of(v)),
                    seq: ctx.seq_of(v) as u32,
                    global: v,
                }
            })
            .collect();
        Correctability::NotCorrectable {
            cycle: CycleReport { steps },
        }
    }
}

/// Builds the context and runs the decision procedure.
pub fn decide(
    exec: &Execution,
    nest: &Nest,
    spec: &dyn BreakpointSpecification,
) -> Result<Correctability, ContextError> {
    let ctx = ExecContext::new(exec, nest, spec)?;
    Ok(decide_ctx(&ctx))
}

/// Boolean form of [`decide`], skipping witness construction: just the
/// acyclicity test. This is the hot path the schedulers and experiment
/// sweeps use.
pub fn is_correctable(
    exec: &Execution,
    nest: &Nest,
    spec: &dyn BreakpointSpecification,
) -> Result<bool, ContextError> {
    let ctx = ExecContext::new(exec, nest, spec)?;
    Ok(CoherentClosure::compute(&ctx).is_partial_order())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomicity::{is_multilevel_atomic, MlaCriterion};
    use crate::breakpoints::BreakpointDescription;
    use crate::spec::{AtomicSpec, FixedSpec};
    use mla_model::appdb::is_correctable_by_enumeration;
    use mla_model::{EntityId, Step};

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    fn exec(order: &[(u32, u32, u32)]) -> Execution {
        Execution::new(order.iter().map(|&(t, s, x)| step(t, s, x)).collect()).unwrap()
    }

    #[test]
    fn correctable_yields_atomic_witness() {
        let e = exec(&[(0, 0, 1), (1, 0, 2), (0, 1, 3), (1, 1, 4)]);
        let nest = Nest::flat(2);
        let spec = AtomicSpec { k: 2 };
        match decide(&e, &nest, &spec).unwrap() {
            Correctability::Correctable { witness } => {
                assert!(witness.is_serial());
                assert!(e.equivalent(&witness));
            }
            Correctability::NotCorrectable { cycle } => {
                panic!("unexpected cycle: {cycle}")
            }
        }
    }

    #[test]
    fn uncorrectable_yields_cycle_over_real_steps() {
        let e = exec(&[(0, 0, 7), (1, 0, 7), (1, 1, 8), (0, 1, 8)]);
        let nest = Nest::flat(2);
        let spec = AtomicSpec { k: 2 };
        match decide(&e, &nest, &spec).unwrap() {
            Correctability::Correctable { .. } => panic!("expected cycle"),
            Correctability::NotCorrectable { cycle } => {
                assert!(cycle.steps.len() >= 2);
                // Cycle involves both transactions.
                let txns: std::collections::HashSet<TxnId> =
                    cycle.steps.iter().map(|s| s.txn).collect();
                assert!(txns.contains(&TxnId(0)) && txns.contains(&TxnId(1)));
                assert!(!cycle.to_string().is_empty());
            }
        }
    }

    #[test]
    fn paper_5_2_correctable_and_uncorrectable_banking_orders() {
        // §5.2's worked example, with the entity assignments the paper
        // gives: transfers t1..t3 (5 steps: w1 w2 w3 d1 d2) and audit a
        // (3 steps), 4-nest; transfers have a level-2 breakpoint between
        // withdrawals and deposits.
        //
        //   w11:A  w21:A  w31:E'  a1:A
        //   w12:B  w22:C  w32:D   a2:B
        //   w13:C  w23:E  w33:F   a3:C
        //   d11:D  d21:G  d31:H
        //   d12:?  d22:?  d32:?
        //
        // (The OCR of the table is partly garbled; we use a faithful
        // realization that preserves its structure: the *correctable*
        // order interleaves audit steps only at points where an
        // equivalent reordering can pull the audit out whole; the
        // *uncorrectable* order wedges the audit between conflicting
        // transfer phases so no reordering works.)
        let nest = Nest::new(4, vec![vec![0, 0], vec![0, 1], vec![0, 2], vec![1, 3]]).unwrap();
        let tbd = |n: usize| {
            let l2: Vec<usize> = if n > 3 { vec![3] } else { Vec::new() };
            BreakpointDescription::from_mid_levels(4, n, &[l2, (1..n).collect()]).unwrap()
        };
        let spec = FixedSpec::new(4)
            .set(TxnId(0), tbd(5))
            .set(TxnId(1), tbd(5))
            .set(TxnId(2), tbd(5))
            .set(TxnId(3), BreakpointDescription::atomic(4, 3));

        // Correctable: audit reads A, B, C interleaved among transfer
        // steps that never conflict with it in opposing directions — all
        // audit reads happen before any transfer touches A, B, C.
        let correctable = exec(&[
            (3, 0, 0), // a1: A
            (3, 1, 1), // a2: B
            (0, 0, 0), // w11: A (after audit)
            (1, 0, 2), // w21
            (3, 2, 2), // a3 reads entity 2 AFTER w21 — potential conflict
            (0, 1, 3),
            (0, 2, 4),
            (1, 1, 5),
            (0, 3, 6),
            (0, 4, 7),
            (1, 2, 8),
            (1, 3, 9),
            (1, 4, 10),
        ]);
        // Audit saw entity 2 after w21 wrote it, and entities 0,1 before
        // transfers: the audit serializes after t1's withdrawal phase...
        // but the audit must be atomic wrt transfers as a whole. Is there
        // a reordering? Audit order constraints: a1 < w11 (entity 0),
        // w21 < a3 (entity 2). So audit must land between w21 and w11 —
        // but w11 < w21? No: w11 at position 2, w21 at 3, so w11 < w21 in
        // <=_e... then audit-before-w11 and audit-after-w21 conflict?
        // a1 < w11 constrains audit start before w11; a3 > w21 means
        // audit end after w21 — the audit STRADDLES w11 and w21, and
        // since t0 and t1 interrupt it, the whole-audit atomicity demands
        // all of t0 and t1 clear of [a1, a3] — impossible? Not quite:
        // t0's steps can move after a3 (only w11's entity-0 conflict
        // pins a1 < w11 — w11 can come after a3). t1: w21 < a3 pins w21
        // before a3; t1's remaining steps can move after a3 — but then
        // t1 is INTERRUPTED by the audit mid-withdrawals... withdrawals
        // of t1: w21 w22 w23, level(t1, audit) = 1, B_t1(1) is one
        // segment — t1 may not be interrupted by the audit at all. w21
        // before a3 and (rest of t1) after a3 violates that. UNLESS the
        // closure tolerates it — the lift forces all of t1 before a3,
        // and a1 < w11 forces audit before t0 — consistent: order
        // t1(all) < audit < t0(all)? Check: w21 < a3 OK; a1 < w11 OK;
        // does anything force t1 after the audit or t0 before it? a2
        // reads entity 1, untouched by transfers. No. So correctable,
        // with witness t1; audit; t0.
        match decide(&correctable, &nest, &spec).unwrap() {
            Correctability::Correctable { witness } => {
                assert!(is_multilevel_atomic(&witness, &nest, &spec).unwrap());
            }
            Correctability::NotCorrectable { cycle } => {
                panic!("expected correctable, got {cycle}")
            }
        }

        // Uncorrectable: audit reads A before t0 writes it AND reads C
        // after t0 writes C — the audit both precedes and follows t0.
        let uncorrectable = exec(&[
            (3, 0, 0),  // a1: A
            (0, 0, 0),  // w11: A  => audit < t0
            (0, 1, 1),  // w12: B
            (0, 2, 2),  // w13: C
            (3, 1, 10), // a2: (neutral)
            (3, 2, 2),  // a3: C after w13 => t0 < audit. Contradiction.
            (0, 3, 3),
            (0, 4, 4),
        ]);
        match decide(&uncorrectable, &nest, &spec).unwrap() {
            Correctability::Correctable { .. } => panic!("expected uncorrectable"),
            Correctability::NotCorrectable { cycle } => {
                let txns: std::collections::HashSet<TxnId> =
                    cycle.steps.iter().map(|s| s.txn).collect();
                assert!(txns.contains(&TxnId(0)) && txns.contains(&TxnId(3)));
            }
        }
    }

    #[test]
    fn theorem_matches_enumeration_oracle_randomized() {
        // The semantic ground truth: e is correctable iff some equivalent
        // execution is multilevel atomic. Cross-check Theorem 2 against
        // brute force on small random instances.
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4242);
        let mut agree_correctable = 0;
        let mut agree_not = 0;
        for trial in 0..250 {
            let txns = rng.gen_range(2..4usize);
            let entities = rng.gen_range(1..4u32);
            let k = rng.gen_range(2..4usize);
            let nest = Nest::new(
                k,
                (0..txns)
                    .map(|_| (0..k - 2).map(|_| rng.gen_range(0..2u32)).collect())
                    .collect(),
            )
            .unwrap();
            let lens: Vec<u32> = (0..txns).map(|_| rng.gen_range(1..4)).collect();
            let total: u32 = lens.iter().sum();
            let mut next_seq = vec![0u32; txns];
            let mut order = Vec::new();
            for _ in 0..total {
                loop {
                    let t = rng.gen_range(0..txns);
                    if next_seq[t] < lens[t] {
                        order.push((t as u32, next_seq[t], rng.gen_range(0..entities)));
                        next_seq[t] += 1;
                        break;
                    }
                }
            }
            let e = exec(&order);
            let mut spec = FixedSpec::new(k);
            for (t, &len) in lens.iter().enumerate() {
                let mut mid: Vec<Vec<usize>> = Vec::new();
                let mut prev: Vec<usize> = Vec::new();
                for _ in 0..k.saturating_sub(2) {
                    let mut cur = prev.clone();
                    for p in 1..len as usize {
                        if rng.gen_bool(0.4) && !cur.contains(&p) {
                            cur.push(p);
                        }
                    }
                    mid.push(cur.clone());
                    prev = cur;
                }
                spec = spec.set(
                    TxnId(t as u32),
                    BreakpointDescription::from_mid_levels(k, len as usize, &mid).unwrap(),
                );
            }
            let theorem = is_correctable(&e, &nest, &spec).unwrap();
            let oracle = is_correctable_by_enumeration(
                &e,
                &MlaCriterion {
                    nest: &nest,
                    spec: &spec,
                },
            );
            assert_eq!(
                theorem, oracle,
                "trial {trial}: Theorem 2 disagrees with enumeration on {e}"
            );
            if theorem {
                agree_correctable += 1;
            } else {
                agree_not += 1;
            }
        }
        assert!(agree_correctable > 10, "need both outcomes sampled");
        assert!(agree_not > 10, "need both outcomes sampled");
    }
}
