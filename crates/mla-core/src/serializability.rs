//! Classical serializability: the baseline criterion the paper weakens.
//!
//! In this model every step is a general atomic read-modify-write of one
//! entity, so two steps conflict exactly when they touch the same entity.
//! The \[EGLT\]/\[BG\] characterization then says: an execution is
//! serializable (equivalent to a serial one) iff its transaction-level
//! conflict graph is acyclic — which is also precisely Theorem 2
//! specialized to the flat 2-nest (a fact the test suite checks
//! exhaustively and at random).

use std::collections::HashMap;

use mla_graph::{topo_sort, DiGraph};
use mla_model::{Execution, TxnId};

/// The transaction-level conflict graph of an execution: node per
/// transaction (dense-local numbering in order of first appearance), edge
/// `t -> t'` iff some step of `t` precedes a step of `t'` on the same
/// entity. Returns the graph and the local-index-to-TxnId table.
pub fn conflict_graph(e: &Execution) -> (DiGraph, Vec<TxnId>) {
    let mut txns: Vec<TxnId> = Vec::new();
    let mut local: HashMap<TxnId, u32> = HashMap::new();
    for s in e.steps() {
        local.entry(s.txn).or_insert_with(|| {
            txns.push(s.txn);
            txns.len() as u32 - 1
        });
    }
    let mut g = DiGraph::new(txns.len());
    let mut last_on_entity: HashMap<mla_model::EntityId, Vec<u32>> = HashMap::new();
    // For edge purposes it suffices to connect each step's transaction to
    // every *distinct* transaction that previously touched the entity.
    for s in e.steps() {
        let me = local[&s.txn];
        let owners = last_on_entity.entry(s.entity).or_default();
        for &prev in owners.iter() {
            if prev != me {
                g.add_edge_unique(prev, me);
            }
        }
        if !owners.contains(&me) {
            owners.push(me);
        }
    }
    (g, txns)
}

/// Whether the execution is (conflict-)serializable. With general
/// read-modify-write steps this is exact, not conservative: conflict
/// equivalence and reordering equivalence coincide.
pub fn is_serializable(e: &Execution) -> bool {
    topo_sort(&conflict_graph(e).0).is_ok()
}

/// A serialization order (transactions in an order consistent with every
/// conflict), or `None` if the execution is not serializable.
pub fn serialization_order(e: &Execution) -> Option<Vec<TxnId>> {
    let (g, txns) = conflict_graph(e);
    topo_sort(&g)
        .ok()
        .map(|order| order.into_iter().map(|i| txns[i as usize]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::appdb::{is_correctable_by_enumeration, SerialCriterion};
    use mla_model::{EntityId, Step};

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    fn exec(order: &[(u32, u32, u32)]) -> Execution {
        Execution::new(order.iter().map(|&(t, s, x)| step(t, s, x)).collect()).unwrap()
    }

    #[test]
    fn serial_executions_are_serializable() {
        let e = exec(&[(0, 0, 1), (0, 1, 2), (1, 0, 1), (1, 1, 2)]);
        assert!(e.is_serial());
        assert!(is_serializable(&e));
        assert_eq!(serialization_order(&e), Some(vec![TxnId(0), TxnId(1)]));
    }

    #[test]
    fn opposing_conflicts_are_not_serializable() {
        let e = exec(&[(0, 0, 1), (1, 0, 1), (1, 1, 2), (0, 1, 2)]);
        assert!(!is_serializable(&e));
        assert!(serialization_order(&e).is_none());
    }

    #[test]
    fn disjoint_interleaving_is_serializable() {
        let e = exec(&[(0, 0, 1), (1, 0, 2), (0, 1, 3), (1, 1, 4)]);
        assert!(!e.is_serial());
        assert!(is_serializable(&e));
    }

    #[test]
    fn serialization_order_respects_conflicts() {
        let e = exec(&[(2, 0, 9), (0, 0, 9), (1, 0, 9)]);
        let order = serialization_order(&e).unwrap();
        assert_eq!(order, vec![TxnId(2), TxnId(0), TxnId(1)]);
    }

    #[test]
    fn three_way_cycle_detected() {
        // t0 -> t1 on x1, t1 -> t2 on x2, t2 -> t0 on x3.
        let e = exec(&[
            (0, 0, 1),
            (1, 0, 1),
            (1, 1, 2),
            (2, 0, 2),
            (2, 1, 3),
            (0, 1, 3),
        ]);
        assert!(!is_serializable(&e));
    }

    #[test]
    fn matches_enumeration_oracle_randomized() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31337);
        let mut yes = 0;
        let mut no = 0;
        for trial in 0..300 {
            let txns = rng.gen_range(2..4usize);
            let entities = rng.gen_range(1..4u32);
            let lens: Vec<u32> = (0..txns).map(|_| rng.gen_range(1..4)).collect();
            let total: u32 = lens.iter().sum();
            let mut next_seq = vec![0u32; txns];
            let mut order = Vec::new();
            for _ in 0..total {
                loop {
                    let t = rng.gen_range(0..txns);
                    if next_seq[t] < lens[t] {
                        order.push((t as u32, next_seq[t], rng.gen_range(0..entities)));
                        next_seq[t] += 1;
                        break;
                    }
                }
            }
            let e = exec(&order);
            let fast = is_serializable(&e);
            let slow = is_correctable_by_enumeration(&e, &SerialCriterion);
            assert_eq!(fast, slow, "trial {trial}: mismatch on {e}");
            if fast {
                yes += 1;
            } else {
                no += 1;
            }
        }
        assert!(yes > 10 && no > 10, "sampled both outcomes ({yes}/{no})");
    }

    #[test]
    fn empty_execution() {
        let e = Execution::empty();
        assert!(is_serializable(&e));
        assert_eq!(serialization_order(&e), Some(vec![]));
    }
}
