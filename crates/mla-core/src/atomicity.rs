//! Membership in `C(π, 𝔅)`: is an execution multilevel atomic? (§4.3)
//!
//! An execution `e` is multilevel atomic for nest `π` and specification `𝔅`
//! iff its total step order is *coherent* for `π` and the derived
//! interleaving specification `𝔍(𝔅, e)`. Coherence condition (a) — the
//! order contains each transaction's own step order — holds for any valid
//! execution; condition (b) reduces, for a total order, to a local check:
//!
//! > whenever a step `β` of `t'` is performed, every other transaction `t`
//! > must currently sit at the end of one of its `B_t(level(t,t'))`
//! > segments — i.e. `t`'s most recent step must be a segment end at the
//! > level `t` shares with `t'`.
//!
//! (If `t`'s latest step `α` were mid-segment, the segment's next step
//! `α'` would follow `β` in the order even though condition (b) demands
//! `(α, β) ∈ R ⟹ (α', β) ∈ R` — with `R` total, that means `α'` *before*
//! `β` — a contradiction.)

use mla_model::{Criterion, Execution, TxnId};

use crate::nest::Nest;
use crate::spec::{BreakpointSpecification, ContextError, ExecContext};

/// A witness that an execution is not multilevel atomic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicityViolation {
    /// Global index of the interrupting step `β`.
    pub at: usize,
    /// The transaction performing `β`.
    pub interrupter: TxnId,
    /// The transaction that was interrupted mid-segment.
    pub interrupted: TxnId,
    /// Global index of the interrupted transaction's most recent step `α`.
    pub last_step: usize,
    /// The level `level(t, t')` whose segment was violated.
    pub level: usize,
    /// The sequence number at which `α`'s segment actually ends.
    pub segment_end_seq: usize,
}

impl std::fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {} of {} interrupts {} mid-segment: its last step (index {}) \
             is not at a level-{} breakpoint (segment runs to seq {})",
            self.at,
            self.interrupter,
            self.interrupted,
            self.last_step,
            self.level,
            self.segment_end_seq
        )
    }
}

/// Checks whether the context's execution is multilevel atomic, returning
/// the first violation found (in execution order) otherwise.
pub fn check_multilevel_atomic(ctx: &ExecContext<'_>) -> Result<(), AtomicityViolation> {
    // last[t] = global index of local txn t's most recent step, if any.
    let mut last: Vec<Option<usize>> = vec![None; ctx.txn_count()];
    for j in 0..ctx.n() {
        let tj = ctx.txn_of(j);
        for t in 0..ctx.txn_count() {
            if t == tj {
                continue;
            }
            let Some(alpha) = last[t] else { continue };
            let level = ctx.level(t, tj);
            let seq = ctx.seq_of(alpha);
            let end = ctx.segment_end(t, level, seq);
            if seq != end {
                return Err(AtomicityViolation {
                    at: j,
                    interrupter: ctx.txn_id(tj),
                    interrupted: ctx.txn_id(t),
                    last_step: alpha,
                    level,
                    segment_end_seq: end,
                });
            }
        }
        last[tj] = Some(j);
    }
    Ok(())
}

/// Convenience wrapper: builds the context and checks atomicity.
pub fn is_multilevel_atomic(
    exec: &Execution,
    nest: &Nest,
    spec: &dyn BreakpointSpecification,
) -> Result<bool, ContextError> {
    let ctx = ExecContext::new(exec, nest, spec)?;
    Ok(check_multilevel_atomic(&ctx).is_ok())
}

/// `C(π, 𝔅)` as a [`Criterion`] for use with the brute-force
/// correctability oracle of `mla-model`.
pub struct MlaCriterion<'a, S: BreakpointSpecification> {
    /// The nest `π`.
    pub nest: &'a Nest,
    /// The specification `𝔅`.
    pub spec: &'a S,
}

impl<S: BreakpointSpecification> Criterion for MlaCriterion<'_, S> {
    fn is_correct(&self, e: &Execution) -> bool {
        is_multilevel_atomic(e, self.nest, self.spec).unwrap_or(false)
    }

    fn name(&self) -> &'static str {
        "multilevel-atomic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::BreakpointDescription;
    use crate::spec::{AtomicSpec, FixedSpec, FreeSpec};
    use mla_model::{EntityId, Step};

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    /// The paper's §4.3 multilevel-atomic banking execution:
    /// three transfers (5 steps each: w1 w2 w3 d1 d2, level-2 breakpoint
    /// between w3 and d1) and one audit (3 steps, atomic), 4-nest with
    /// `π(2)` = {transfers} | {audit}, `π(3)` singling out each transfer.
    ///
    /// The paper's order:
    /// a1, w11, w31, w21, w22, w12, d31, d32, w23, w13, d21, d22, w32,
    /// w33, d11, d12, a2, a3
    ///
    /// (subscripts: transfer index then step; entities are chosen so that
    /// everything is distinct — the atomicity check is order-based and
    /// ignores values.)
    fn banking_nest() -> Nest {
        // t0, t1, t2 = transfers (family-separated at level 3 by path[1]);
        // t3 = audit.
        Nest::new(4, vec![vec![0, 0], vec![0, 1], vec![0, 2], vec![1, 3]]).unwrap()
    }

    fn transfer_bd(n: usize) -> BreakpointDescription {
        // level 2: breakpoint between withdrawals (first 3) and deposits;
        // level 3: breakpoints everywhere (same-family txns interleave
        // freely). Truncated runs (n <= 3) never reach the deposit phase.
        let l2: Vec<usize> = if n > 3 { vec![3] } else { Vec::new() };
        BreakpointDescription::from_mid_levels(4, n, &[l2, (1..n).collect()]).unwrap()
    }

    fn banking_spec() -> FixedSpec {
        FixedSpec::new(4)
            .set(TxnId(0), transfer_bd(5))
            .set(TxnId(1), transfer_bd(5))
            .set(TxnId(2), transfer_bd(5))
            .set(TxnId(3), BreakpointDescription::atomic(4, 3))
    }

    fn paper_order() -> Execution {
        // (txn, seq) pairs in the paper's §4.3 order. Transfer i uses
        // entities 10i..10i+4; the audit reads 100..102.
        let order: Vec<(u32, u32)> = vec![
            (3, 0), // a1
            (0, 0), // w11
            (2, 0), // w31
            (1, 0), // w21
            (1, 1), // w22
            (0, 1), // w12
            (2, 1), // d31  -- wait: transfers have 3 withdrawals
            (2, 2),
            (1, 2), // w23
            (0, 2), // w13
            (1, 3), // d21
            (1, 4), // d22
            (2, 3),
            (2, 4),
            (0, 3), // d11
            (0, 4), // d12
            (3, 1), // a2
            (3, 2), // a3
        ];
        let steps = order
            .into_iter()
            .map(|(t, s)| step(t, s, t * 10 + s))
            .collect();
        Execution::new(steps).unwrap()
    }

    #[test]
    fn audit_step_interleaved_with_transfers_is_not_atomic() {
        // The audit is atomic with respect to transfers (level(transfer,
        // audit) = 1, and B_audit(1) has a single segment). An order in
        // which the audit performs a1, transfers run, and the audit then
        // resumes leaves the audit mid-segment while others step —
        // exactly the "money in transit" interruption §1 forbids. Such
        // orders may still be *correctable* (§5.2's example is); they are
        // not *multilevel atomic*.
        let e = paper_order();
        let nest = banking_nest();
        let spec = banking_spec();
        // a1 (audit, seq 0, mid-segment) is followed by transfer steps:
        // violation.
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        let v = check_multilevel_atomic(&ctx).unwrap_err();
        assert_eq!(v.interrupted, TxnId(3));
        assert_eq!(v.at, 1);
    }

    #[test]
    fn transfers_interleaving_at_phase_boundary_is_atomic() {
        // t0 completes withdrawals, t1 runs entirely, t0 deposits:
        // t1 interrupts t0 exactly at its level-2 breakpoint. Levels:
        // level(t0, t1) = 2 (different families).
        let order: Vec<(u32, u32)> = vec![
            (0, 0),
            (0, 1),
            (0, 2), // t0 withdrawals complete (segment end at level 2)
            (1, 0),
            (1, 1),
            (1, 2),
            (1, 3),
            (1, 4), // whole of t1
            (0, 3),
            (0, 4), // t0 deposits
        ];
        let steps = order
            .into_iter()
            .map(|(t, s)| step(t, s, t * 10 + s))
            .collect();
        let e = Execution::new(steps).unwrap();
        let nest = banking_nest();
        let spec = banking_spec();
        assert!(is_multilevel_atomic(&e, &nest, &spec).unwrap());
    }

    #[test]
    fn transfer_interrupted_mid_withdrawals_by_other_family_is_not_atomic() {
        let order: Vec<(u32, u32)> = vec![
            (0, 0),
            (1, 0), // t1 interrupts t0 after w1 — not a level-2 breakpoint
        ];
        let steps: Vec<Step> = order
            .into_iter()
            .map(|(t, s)| step(t, s, t * 10 + s))
            .collect();
        let e = Execution::new(steps).unwrap();
        let nest = banking_nest();
        let spec = FixedSpec::new(4)
            .set(TxnId(0), transfer_bd(1))
            .set(TxnId(1), transfer_bd(1));
        // With only 1 step performed, t0's single step IS a segment end
        // (truncated executions are interruptible at their frontier): this
        // is atomic.
        assert!(is_multilevel_atomic(&e, &nest, &spec).unwrap());

        // But with t0 continuing afterwards, the interruption is exposed:
        let order: Vec<(u32, u32)> = vec![(0, 0), (1, 0), (0, 1)];
        let steps: Vec<Step> = order
            .into_iter()
            .map(|(t, s)| step(t, s, t * 10 + s))
            .collect();
        let e = Execution::new(steps).unwrap();
        let spec = FixedSpec::new(4)
            .set(TxnId(0), transfer_bd(2))
            .set(TxnId(1), transfer_bd(1));
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        let v = check_multilevel_atomic(&ctx).unwrap_err();
        assert_eq!(v.interrupter, TxnId(1));
        assert_eq!(v.interrupted, TxnId(0));
        assert_eq!(v.level, 2);
    }

    #[test]
    fn same_family_interleaves_freely() {
        // Make t0 and t1 the same family (level 3): breakpoints everywhere
        // at level 3 allow arbitrary interleaving.
        let nest = Nest::new(4, vec![vec![0, 0], vec![0, 0]]).unwrap();
        let order: Vec<(u32, u32)> = vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)];
        let steps: Vec<Step> = order
            .into_iter()
            .map(|(t, s)| step(t, s, t * 10 + s))
            .collect();
        let e = Execution::new(steps).unwrap();
        let spec = FixedSpec::new(4)
            .set(TxnId(0), transfer_bd(3))
            .set(TxnId(1), transfer_bd(3));
        assert!(is_multilevel_atomic(&e, &nest, &spec).unwrap());
    }

    #[test]
    fn k2_atomicity_is_seriality() {
        // §4.3: with k = 2 the multilevel atomic executions are exactly
        // the serial executions.
        let nest = Nest::flat(3);
        let spec = AtomicSpec { k: 2 };
        let serial: Vec<(u32, u32)> = vec![(0, 0), (0, 1), (1, 0), (2, 0), (2, 1)];
        let interleaved: Vec<(u32, u32)> = vec![(0, 0), (1, 0), (0, 1)];
        let make = |v: Vec<(u32, u32)>| {
            Execution::new(
                v.into_iter()
                    .map(|(t, s)| step(t, s, t + 100 * s))
                    .collect(),
            )
            .unwrap()
        };
        let es = make(serial);
        let ei = make(interleaved);
        assert!(es.is_serial());
        assert!(is_multilevel_atomic(&es, &nest, &spec).unwrap());
        assert!(!ei.is_serial());
        assert!(!is_multilevel_atomic(&ei, &nest, &spec).unwrap());
    }

    #[test]
    fn free_spec_admits_everything_within_pi2() {
        let nest = Nest::new(3, vec![vec![0], vec![0], vec![0]]).unwrap();
        let spec = FreeSpec { k: 3 };
        let order: Vec<(u32, u32)> = vec![(0, 0), (1, 0), (2, 0), (0, 1), (2, 1), (1, 1), (0, 2)];
        let steps: Vec<Step> = order.into_iter().map(|(t, s)| step(t, s, 7)).collect();
        let e = Execution::new(steps).unwrap();
        assert!(is_multilevel_atomic(&e, &nest, &spec).unwrap());
    }

    #[test]
    fn free_spec_still_serializes_across_pi2_classes() {
        let nest = Nest::new(3, vec![vec![0], vec![1]]).unwrap();
        let spec = FreeSpec { k: 3 };
        let order: Vec<(u32, u32)> = vec![(0, 0), (1, 0), (0, 1)];
        let steps: Vec<Step> = order.into_iter().map(|(t, s)| step(t, s, 7)).collect();
        let e = Execution::new(steps).unwrap();
        assert!(!is_multilevel_atomic(&e, &nest, &spec).unwrap());
    }

    #[test]
    fn empty_and_single_step_atomic() {
        let nest = Nest::flat(1);
        let spec = AtomicSpec { k: 2 };
        assert!(is_multilevel_atomic(&Execution::empty(), &nest, &spec).unwrap());
        let e = Execution::new(vec![step(0, 0, 0)]).unwrap();
        assert!(is_multilevel_atomic(&e, &nest, &spec).unwrap());
    }

    #[test]
    fn k2_matches_is_serial_exhaustively() {
        // Every interleaving of two 2-step txns: multilevel atomicity at
        // k = 2 must coincide with seriality.
        let nest = Nest::flat(2);
        let spec = AtomicSpec { k: 2 };
        // All 6 orderings of t0:{0,1}, t1:{0,1} preserving seq order.
        let orders: Vec<Vec<(u32, u32)>> = vec![
            vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            vec![(0, 0), (1, 0), (0, 1), (1, 1)],
            vec![(0, 0), (1, 0), (1, 1), (0, 1)],
            vec![(1, 0), (0, 0), (0, 1), (1, 1)],
            vec![(1, 0), (0, 0), (1, 1), (0, 1)],
            vec![(1, 0), (1, 1), (0, 0), (0, 1)],
        ];
        for order in orders {
            let steps: Vec<Step> = order.iter().map(|&(t, s)| step(t, s, t * 2 + s)).collect();
            let e = Execution::new(steps).unwrap();
            assert_eq!(
                is_multilevel_atomic(&e, &nest, &spec).unwrap(),
                e.is_serial(),
                "mismatch for {e}"
            );
        }
    }
}
