//! Static safety certificates: the carrier type for `mla-lint`'s §5
//! certification pass.
//!
//! The lint crate analyzes a workload's may-conflict structure over
//! breakpoint-free segments and issues a [`StaticCert`] describing, per
//! **universe** (top-level nest class), whether any interleaving of the
//! workload can close a coherent-closure cycle through that universe's
//! transactions. The certificate records, per transaction, the
//! may-footprint the proof was carried out against, the transaction's
//! universe, and the per-universe verdict lattice; a scheduler holding
//! the certificate (`MlaDetect::with_static_cert` /
//! `MlaPrevent::with_static_cert` in `mla-cc`) may grant any step whose
//! entity lies inside its transaction's recorded footprint — provided
//! the transaction's universe is certified — without consulting the
//! closure engine at all. The theorem guarantees the resulting history
//! is correctable whatever the interleaving, *and* that omitting the
//! certified universes' steps from the runtime engine changes no
//! verdict: a realizable closure cycle can never pass through a
//! certified transaction, and per-entity order is directly transitive,
//! so the engine's sub-closure detects exactly the same cycles.
//!
//! A step *outside* its recorded footprint is evidence the run is not
//! the one that was certified. Voiding is per-universe: the straying
//! transaction's own universe plus every certified universe whose
//! recorded entity set contains the strayed entity are disarmed (their
//! proofs assumed the strayer's footprint), while unrelated universes
//! keep the fast path. The disarm/re-arm state machine lives in the
//! schedulers; the certificate itself is immutable.
//!
//! The type lives here rather than in `mla-lint` so schedulers can
//! consume certificates without depending on the analyzer. Constructing
//! one is a claim of proof: soundness rests entirely on the issuer.

use mla_model::{EntityId, TxnId};

/// A per-universe lattice of §5 certifications: for each universe
/// (top-level nest class), whether no coherent-closure cycle is
/// realizable through its transactions under any interleaving — the
/// paper's characterization discharged statically, at the grain the
/// nest actually has.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticCert {
    k: usize,
    /// Per-transaction may-footprints (sorted, deduplicated), indexed by
    /// dense [`TxnId`]. The proof covers exactly runs whose every step
    /// stays inside these sets.
    footprints: Vec<Vec<EntityId>>,
    /// Per-transaction universe ids, dense in `0..certified.len()`.
    universe: Vec<u32>,
    /// Per-universe verdicts: `certified[u]` means no mixed cycle can
    /// pass through any transaction of universe `u`.
    certified: Vec<bool>,
    /// Per-universe entity unions (sorted, deduplicated): the entities a
    /// universe's proof is sensitive to. Used by the schedulers to scope
    /// off-footprint voiding.
    entities: Vec<Vec<EntityId>>,
}

impl StaticCert {
    /// Wraps a verified analysis result with a single, certified
    /// universe — the pre-lattice shape, kept for callers that certify
    /// all-or-nothing. `footprints[t]` is transaction `t`'s
    /// may-footprint; sets are sorted and deduplicated here so
    /// [`StaticCert::covers`] can binary-search.
    ///
    /// Issuing a certificate asserts the §5 no-mixed-cycle property was
    /// actually proven for these footprints — callers other than
    /// `mla-lint`'s certification pass must bring their own proof.
    pub fn new(k: usize, footprints: Vec<Vec<EntityId>>) -> Self {
        let universe = vec![0; footprints.len()];
        StaticCert::per_universe(k, footprints, universe, vec![true])
    }

    /// Wraps a verified per-universe analysis result. `universe[t]` is
    /// transaction `t`'s universe id (dense, `< certified.len()`), and
    /// `certified[u]` is universe `u`'s verdict.
    pub fn per_universe(
        k: usize,
        mut footprints: Vec<Vec<EntityId>>,
        universe: Vec<u32>,
        certified: Vec<bool>,
    ) -> Self {
        assert_eq!(
            universe.len(),
            footprints.len(),
            "one universe id per transaction"
        );
        assert!(
            universe.iter().all(|&u| (u as usize) < certified.len()),
            "universe ids must be dense in 0..certified.len()"
        );
        for fp in &mut footprints {
            fp.sort_unstable();
            fp.dedup();
        }
        let mut entities: Vec<Vec<EntityId>> = vec![Vec::new(); certified.len()];
        for (t, fp) in footprints.iter().enumerate() {
            entities[universe[t] as usize].extend(fp.iter().copied());
        }
        for es in &mut entities {
            es.sort_unstable();
            es.dedup();
        }
        StaticCert {
            k,
            footprints,
            universe,
            certified,
            entities,
        }
    }

    /// The certified nest depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of transactions covered.
    pub fn txn_count(&self) -> usize {
        self.footprints.len()
    }

    /// Number of universes in the lattice.
    pub fn universe_count(&self) -> usize {
        self.certified.len()
    }

    /// The universe of `txn`, or `None` for out-of-range (foreign)
    /// transactions.
    pub fn universe_of(&self, txn: TxnId) -> Option<u32> {
        self.universe.get(txn.index()).copied()
    }

    /// Whether universe `u`'s no-mixed-cycle property was proven.
    pub fn is_certified(&self, u: u32) -> bool {
        self.certified.get(u as usize).copied().unwrap_or(false)
    }

    /// The certified universe ids, ascending.
    pub fn certified_universes(&self) -> Vec<u32> {
        (0..self.certified.len() as u32)
            .filter(|&u| self.certified[u as usize])
            .collect()
    }

    /// Whether every universe is certified (the pre-lattice global
    /// verdict).
    pub fn fully_certified(&self) -> bool {
        self.certified.iter().all(|&c| c)
    }

    /// Whether at least one universe is certified (the lattice is worth
    /// attaching).
    pub fn any_certified(&self) -> bool {
        self.certified.iter().any(|&c| c)
    }

    /// Whether a step of `txn` on `entity` is inside the certified
    /// footprint of a **certified** universe (false for out-of-range
    /// transactions). This is the O(log n) runtime guard on the
    /// certified fast path.
    pub fn covers(&self, txn: TxnId, entity: EntityId) -> bool {
        self.universe_of(txn).is_some_and(|u| self.is_certified(u))
            && self.footprint_contains(txn, entity)
    }

    /// Whether `entity` lies inside `txn`'s recorded may-footprint,
    /// regardless of its universe's verdict (false for out-of-range
    /// transactions). The schedulers use this to detect strays even from
    /// uncertified universes, whose conflicts the certified proofs still
    /// relied on.
    pub fn footprint_contains(&self, txn: TxnId, entity: EntityId) -> bool {
        self.footprints
            .get(txn.index())
            .is_some_and(|fp| fp.binary_search(&entity).is_ok())
    }

    /// The recorded may-footprint of `txn` (empty for out-of-range ids).
    pub fn footprint(&self, txn: TxnId) -> &[EntityId] {
        self.footprints
            .get(txn.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The entity union of universe `u` (empty for out-of-range ids):
    /// every entity some transaction of `u` may touch, i.e. the entities
    /// whose off-footprint use by a foreign transaction invalidates
    /// `u`'s proof.
    pub fn universe_entities(&self, u: u32) -> &[EntityId] {
        self.entities
            .get(u as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_checks_sorted_footprints() {
        let cert = StaticCert::new(3, vec![vec![EntityId(9), EntityId(3), EntityId(3)], vec![]]);
        assert_eq!(cert.k(), 3);
        assert_eq!(cert.txn_count(), 2);
        assert_eq!(cert.universe_count(), 1);
        assert!(cert.fully_certified());
        assert!(cert.covers(TxnId(0), EntityId(3)));
        assert!(cert.covers(TxnId(0), EntityId(9)));
        assert!(!cert.covers(TxnId(0), EntityId(4)));
        assert!(!cert.covers(TxnId(1), EntityId(3)), "empty footprint");
        assert!(!cert.covers(TxnId(7), EntityId(3)), "unknown transaction");
        assert_eq!(cert.footprint(TxnId(0)), &[EntityId(3), EntityId(9)]);
        assert_eq!(cert.footprint(TxnId(7)), &[] as &[EntityId]);
        assert_eq!(
            cert.universe_entities(0),
            &[EntityId(3), EntityId(9)],
            "single universe unions all footprints"
        );
    }

    #[test]
    fn per_universe_lattice_scopes_the_guard() {
        // Universe 0 (txns 0, 1) certified on {1, 2}; universe 1 (txn 2)
        // condemned on {7}.
        let cert = StaticCert::per_universe(
            3,
            vec![vec![EntityId(1)], vec![EntityId(2)], vec![EntityId(7)]],
            vec![0, 0, 1],
            vec![true, false],
        );
        assert_eq!(cert.universe_count(), 2);
        assert!(!cert.fully_certified());
        assert!(cert.any_certified());
        assert_eq!(cert.certified_universes(), vec![0]);
        assert!(cert.covers(TxnId(0), EntityId(1)));
        assert!(cert.covers(TxnId(1), EntityId(2)));
        assert!(
            !cert.covers(TxnId(2), EntityId(7)),
            "condemned universe never rides the fast path"
        );
        assert!(
            cert.footprint_contains(TxnId(2), EntityId(7)),
            "but its footprint is still recorded"
        );
        assert_eq!(cert.universe_of(TxnId(2)), Some(1));
        assert_eq!(cert.universe_of(TxnId(9)), None, "foreign transaction");
        assert_eq!(cert.universe_entities(0), &[EntityId(1), EntityId(2)]);
        assert_eq!(cert.universe_entities(1), &[EntityId(7)]);
        assert_eq!(cert.universe_entities(5), &[] as &[EntityId]);
    }
}
