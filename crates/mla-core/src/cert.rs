//! Static safety certificates: the carrier type for `mla-lint`'s §5
//! certification pass.
//!
//! The lint crate analyzes a workload's may-conflict structure over
//! breakpoint-free segments and, when **no** interleaving can produce a
//! coherent-closure cycle, issues a [`StaticCert`]. The certificate
//! records, per transaction, the may-footprint the proof was carried out
//! against; a scheduler holding the certificate
//! (`MlaDetect::with_static_cert` / `MlaPrevent::with_static_cert` in
//! `mla-cc`) may grant any step whose entity lies inside its
//! transaction's recorded footprint without consulting the closure
//! engine at all — the theorem guarantees the resulting history is
//! correctable whatever the interleaving. A step *outside* its recorded
//! footprint voids the certificate (the workload is not the one that was
//! certified) and the scheduler falls back to runtime checking.
//!
//! The type lives here rather than in `mla-lint` so schedulers can
//! consume certificates without depending on the analyzer. Constructing
//! one is a claim of proof: soundness rests entirely on the issuer.

use mla_model::{EntityId, TxnId};

/// A certificate that no coherent-closure cycle is realizable under any
/// interleaving of the certified transactions — §5's characterization
/// discharged statically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticCert {
    k: usize,
    /// Per-transaction may-footprints (sorted, deduplicated), indexed by
    /// dense [`TxnId`]. The proof covers exactly runs whose every step
    /// stays inside these sets.
    footprints: Vec<Vec<EntityId>>,
}

impl StaticCert {
    /// Wraps a verified analysis result. `footprints[t]` is transaction
    /// `t`'s may-footprint; sets are sorted and deduplicated here so
    /// [`StaticCert::covers`] can binary-search.
    ///
    /// Issuing a certificate asserts the §5 no-mixed-cycle property was
    /// actually proven for these footprints — callers other than
    /// `mla-lint`'s certification pass must bring their own proof.
    pub fn new(k: usize, mut footprints: Vec<Vec<EntityId>>) -> Self {
        for fp in &mut footprints {
            fp.sort_unstable();
            fp.dedup();
        }
        StaticCert { k, footprints }
    }

    /// The certified nest depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of transactions covered.
    pub fn txn_count(&self) -> usize {
        self.footprints.len()
    }

    /// Whether a step of `txn` on `entity` is inside the certified
    /// footprint (false for out-of-range transactions). This is the O(log
    /// n) runtime guard on the certified fast path.
    pub fn covers(&self, txn: TxnId, entity: EntityId) -> bool {
        self.footprints
            .get(txn.index())
            .is_some_and(|fp| fp.binary_search(&entity).is_ok())
    }

    /// The recorded may-footprint of `txn` (empty for out-of-range ids).
    pub fn footprint(&self, txn: TxnId) -> &[EntityId] {
        self.footprints
            .get(txn.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_checks_sorted_footprints() {
        let cert = StaticCert::new(3, vec![vec![EntityId(9), EntityId(3), EntityId(3)], vec![]]);
        assert_eq!(cert.k(), 3);
        assert_eq!(cert.txn_count(), 2);
        assert!(cert.covers(TxnId(0), EntityId(3)));
        assert!(cert.covers(TxnId(0), EntityId(9)));
        assert!(!cert.covers(TxnId(0), EntityId(4)));
        assert!(!cert.covers(TxnId(1), EntityId(3)), "empty footprint");
        assert!(!cert.covers(TxnId(7), EntityId(3)), "unknown transaction");
        assert_eq!(cert.footprint(TxnId(0)), &[EntityId(3), EntityId(9)]);
        assert_eq!(cert.footprint(TxnId(7)), &[] as &[EntityId]);
    }
}
