//! The coherent closure of the dependency relation `<=_e` (§4.2) and its
//! acyclicity test — the computational core of Theorem 2.
//!
//! # Definition
//!
//! The coherent closure of a relation `R` (containing each transaction's
//! own step order) is the smallest relation containing `R` that is closed
//! under transitivity and under condition (b):
//!
//! > if `level(t, t') = i`, `α <=_t α'` with `α, α'` in the same `B_t(i)`
//! > segment, and `(α, β) ∈ R` with `β ∈ X_t'`, then `(α', β) ∈ R`.
//!
//! `e` is correctable iff this closure of `<=_e` is a partial order
//! (Theorem 2) — equivalently, iff it is acyclic.
//!
//! # Two implementations
//!
//! * [`coherent_closure_exact`] follows the definition literally with one
//!   predecessor bitset per step and a global fixpoint. O(n³) time,
//!   O(n²) bits — the executable specification.
//! * [`CoherentClosure::compute`] exploits a structural invariant: the
//!   closure, restricted to predecessors from one transaction `t`, is
//!   always a *prefix* of `t`'s steps (if `(α, β)` is in the closure and
//!   `α'` precedes `α` in `t`, transitivity through `t`'s own chain puts
//!   `(α', β)` in too). So the full relation is captured by a *frontier
//!   matrix* `M[β][t]` = the largest sequence number of `t` related before
//!   `β`. Each closure axiom becomes a monotone update on `M`:
//!   - base: `M[β][txn(β)] >= seq(β) - 1`, and for each entity
//!     conflict edge `(α, β)`: `M[β][txn(α)] >= seq(α)`;
//!   - condition (b): `M[β][t] >= seg_end_t(level(t, txn(β)), M[β][t])`;
//!   - transitivity: with `u = t`'s step at `M[β][t]`, `M[β] >= M[u]`
//!     pointwise (the frontier step subsumes all earlier ones).
//!
//!   The fixpoint is reached in O(rounds · n · T²) with values bounded by
//!   per-transaction step counts; a cycle manifests as a step becoming its
//!   own predecessor (`M[β][txn(β)] >= seq(β)`).
//!
//! Both agree; the property tests in this module and in `tests/` check
//! them against each other and against the brute-force enumeration
//! oracle.

use mla_graph::topo::Cycle;
use mla_graph::{find_cycle, BitSet, DiGraph};

use crate::spec::ExecContext;

/// Sentinel for "no related predecessor from this transaction".
const NONE: i64 = -1;

/// `m[v] |= m[u]` pointwise (transitivity); returns whether `m[v]` grew.
#[allow(clippy::needless_range_loop)] // parallel indexing of two rows of `m`
fn union_row(m: &mut [Vec<i64>], v: usize, u: usize, tcount: usize) -> bool {
    let mut changed = false;
    for w in 0..tcount {
        let uw = m[u][w];
        if uw > m[v][w] {
            m[v][w] = uw;
            changed = true;
        }
    }
    changed
}

/// The coherent closure of `<=_e`, in frontier-matrix form.
pub struct CoherentClosure {
    /// `m[v][t]` = largest seq of local txn `t` related strictly before
    /// step `v`, or [`NONE`].
    m: Vec<Vec<i64>>,
    /// Whether the closure relates some step to itself (not a partial
    /// order).
    cyclic: bool,
}

impl CoherentClosure {
    /// Computes the coherent closure of `<=_e` for the context.
    pub fn compute(ctx: &ExecContext<'_>) -> Self {
        let n = ctx.n();
        let tcount = ctx.txn_count();
        let mut m = vec![vec![NONE; tcount]; n];

        // Base relation <=_e: intra-transaction order plus per-entity
        // access order (the generating edges; transitivity is restored by
        // the fixpoint).
        {
            let dep = ctx.exec().dependency_graph();
            for (u, v) in dep.edges() {
                let (u, v) = (u as usize, v as usize);
                let tu = ctx.txn_of(u);
                let su = ctx.seq_of(u) as i64;
                if m[v][tu] < su {
                    m[v][tu] = su;
                }
            }
        }

        // Monotone fixpoint. Values only grow and are bounded by each
        // transaction's step count, so this terminates; `changed` tracking
        // stops it as soon as a full pass is quiescent.
        let mut cyclic = false;
        loop {
            let mut changed = false;
            for v in 0..n {
                let tv = ctx.txn_of(v);
                let lim = ctx.steps_of(tv).len() as i64 - 1;
                for t in 0..tcount {
                    let s = m[v][t];
                    if s == NONE {
                        continue;
                    }
                    if t == tv {
                        // Own transaction. Always pull the immediate intra
                        // predecessor: this keeps rows monotone along each
                        // transaction's chain, which the cross-transaction
                        // frontier pulls below depend on (a frontier step
                        // must subsume every earlier step of its
                        // transaction).
                        let sv = ctx.seq_of(v) as i64;
                        if sv > 0 {
                            let u = ctx.global_of(t, (sv - 1) as usize);
                            changed |= union_row(&mut m, v, u, tcount);
                        }
                        // A frontier strictly beyond v (a cycle through v)
                        // contributes its row too.
                        if s > sv {
                            let u = ctx.global_of(t, s as usize);
                            changed |= union_row(&mut m, v, u, tcount);
                        }
                        continue;
                    }
                    // Condition (b): lift the frontier to its segment end
                    // at level(t, tv).
                    let level = ctx.level(t, tv);
                    let end = ctx.segment_end(t, level, s as usize) as i64;
                    if end > s {
                        m[v][t] = end;
                        changed = true;
                    }
                    // Transitivity through t's frontier step (which, by
                    // the intra-chain rule above, subsumes all earlier
                    // steps of t at fixpoint).
                    let u = ctx.global_of(t, end as usize);
                    if u != v {
                        changed |= union_row(&mut m, v, u, tcount);
                    }
                }
                // Cycle: v related before itself.
                if m[v][tv] >= ctx.seq_of(v) as i64 {
                    cyclic = true;
                    // Clamp so frontier indexing stays within the
                    // transaction's existing steps.
                    if m[v][tv] > lim {
                        m[v][tv] = lim;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        CoherentClosure { m, cyclic }
    }

    /// Whether the closure is a partial order (acyclic). By Theorem 2 this
    /// is exactly correctability of the underlying execution.
    pub fn is_partial_order(&self) -> bool {
        !self.cyclic
    }

    /// Whether step `u` is related strictly before step `v` in the
    /// closure.
    pub fn related(&self, ctx: &ExecContext<'_>, u: usize, v: usize) -> bool {
        self.m[v][ctx.txn_of(u)] >= ctx.seq_of(u) as i64
    }

    /// The frontier row of step `v` (largest related seq per local txn,
    /// `-1` if none).
    pub fn frontier(&self, v: usize) -> &[i64] {
        &self.m[v]
    }

    /// Materializes a graph whose reachability equals the closure
    /// relation: intra-transaction chains plus one edge per frontier
    /// entry. Used for witness-cycle extraction and by the Lemma 1
    /// construction.
    pub fn relation_graph(&self, ctx: &ExecContext<'_>) -> DiGraph {
        let n = ctx.n();
        let mut g = DiGraph::new(n);
        for t in 0..ctx.txn_count() {
            let steps = ctx.steps_of(t);
            for w in steps.windows(2) {
                g.add_edge_unique(w[0] as u32, w[1] as u32);
            }
        }
        for v in 0..n {
            for t in 0..ctx.txn_count() {
                let s = self.m[v][t];
                if s == NONE {
                    continue;
                }
                let u = ctx.global_of(t, s as usize);
                if u != v {
                    g.add_edge_unique(u as u32, v as u32);
                }
            }
        }
        g
    }

    /// Extracts a concrete dependency cycle (as global step indices) when
    /// the closure is not a partial order.
    ///
    /// The cycle is extracted from the *cross-transaction* witness graph
    /// (intra chains plus cross-transaction frontier edges): every cycle in
    /// the closure has a derivation through base and lift pairs alone, and
    /// those are all cross-transaction or forward-intra, so restricting the
    /// graph this way loses no cycles while guaranteeing the report spans
    /// at least two transactions — the shape a scheduler's victim picker
    /// and a human reader both want.
    pub fn witness_cycle(&self, ctx: &ExecContext<'_>) -> Option<Cycle> {
        if !self.cyclic {
            return None;
        }
        let n = ctx.n();
        let mut g = DiGraph::new(n);
        for t in 0..ctx.txn_count() {
            for w in ctx.steps_of(t).windows(2) {
                g.add_edge_unique(w[0] as u32, w[1] as u32);
            }
        }
        for v in 0..n {
            let tv = ctx.txn_of(v);
            for t in 0..ctx.txn_count() {
                if t == tv {
                    continue;
                }
                let s = self.m[v][t];
                if s != NONE {
                    g.add_edge_unique(ctx.global_of(t, s as usize) as u32, v as u32);
                }
            }
        }
        let cycle = find_cycle(&g);
        debug_assert!(
            cycle.is_some(),
            "cyclic closure must materialize a cyclic witness graph"
        );
        cycle
    }
}

/// The literal reference implementation: one predecessor bitset per step,
/// closed under transitivity and condition (b) until fixpoint.
///
/// `preds[v].contains(u)` iff `(u, v)` is in the coherent closure of
/// `<=_e`. Quadratic memory — intended for validation and the A1 ablation
/// bench, not production checking.
pub fn coherent_closure_exact(ctx: &ExecContext<'_>) -> Vec<BitSet> {
    let n = ctx.n();
    let mut preds: Vec<BitSet> = {
        // Transitive closure of the base dependency graph.
        mla_graph::reach::predecessor_sets(&ctx.exec().dependency_graph())
    };
    loop {
        let mut changed = false;
        for v in 0..n {
            let tv = ctx.txn_of(v);
            // Snapshot to avoid aliasing while we mutate preds[v].
            let current: Vec<usize> = preds[v].iter().collect();
            for u in current {
                // Transitivity: preds[v] |= preds[u].
                if u != v {
                    let pu = preds[u].clone();
                    changed |= preds[v].union_with_returning_changed(&pu);
                }
                // Condition (b): all of u's segment-mates after u join.
                let tu = ctx.txn_of(u);
                if tu != tv {
                    let level = ctx.level(tu, tv);
                    let su = ctx.seq_of(u);
                    let end = ctx.segment_end(tu, level, su);
                    for s in su + 1..=end {
                        changed |= preds[v].insert(ctx.global_of(tu, s));
                    }
                }
            }
        }
        if !changed {
            return preds;
        }
    }
}

/// Whether the exact closure is a partial order (no step precedes itself).
pub fn exact_is_partial_order(preds: &[BitSet]) -> bool {
    preds.iter().enumerate().all(|(v, p)| !p.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::BreakpointDescription;
    use crate::nest::Nest;
    use crate::spec::{AtomicSpec, ExecContext, FixedSpec, FreeSpec};
    use mla_model::{EntityId, Execution, Step, TxnId};

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    fn exec(order: &[(u32, u32, u32)]) -> Execution {
        Execution::new(order.iter().map(|&(t, s, x)| step(t, s, x)).collect()).unwrap()
    }

    /// Asserts frontier and exact closures agree pairwise, and returns
    /// acyclicity.
    fn check_agreement(ctx: &ExecContext<'_>) -> bool {
        let fast = CoherentClosure::compute(ctx);
        let slow = coherent_closure_exact(ctx);
        let n = ctx.n();
        for v in 0..n {
            for u in 0..n {
                if u == v {
                    continue;
                }
                assert_eq!(
                    fast.related(ctx, u, v),
                    slow[v].contains(u),
                    "closures disagree on ({u}, {v}) in {}",
                    ctx.exec()
                );
            }
        }
        assert_eq!(
            fast.is_partial_order(),
            exact_is_partial_order(&slow),
            "acyclicity disagreement"
        );
        fast.is_partial_order()
    }

    #[test]
    fn serializable_conflict_pattern_is_acyclic() {
        // t0 before t1 on both entities: acyclic under k=2.
        let e = exec(&[(0, 0, 7), (0, 1, 8), (1, 0, 7), (1, 1, 8)]);
        let nest = Nest::flat(2);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert!(check_agreement(&ctx));
    }

    #[test]
    fn classic_nonserializable_weave_is_cyclic_at_k2() {
        // t0 before t1 on x7, t1 before t0 on x8.
        let e = exec(&[(0, 0, 7), (1, 0, 7), (1, 1, 8), (0, 1, 8)]);
        let nest = Nest::flat(2);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert!(!check_agreement(&ctx));
        let c = CoherentClosure::compute(&ctx);
        let cycle = c.witness_cycle(&ctx).expect("cycle witness");
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn same_weave_is_acyclic_with_free_breakpoints() {
        // Identical step order, but the transactions are pi(2)-related
        // with breakpoints everywhere: no lift happens, closure = base
        // dependency order, which is acyclic.
        let e = exec(&[(0, 0, 7), (1, 0, 7), (1, 1, 8), (0, 1, 8)]);
        let nest = Nest::new(3, vec![vec![0], vec![0]]).unwrap();
        let ctx = ExecContext::new(&e, &nest, &FreeSpec { k: 3 }).unwrap();
        assert!(check_agreement(&ctx));
    }

    #[test]
    fn paper_4_2_example_r3_closure_is_cyclic() {
        // §4.2's R3: k = 3, T = {t1, t2, t3}, pi(2) classes {t1, t2} and
        // {t3}; each txn has 4 steps with a level-2 breakpoint after step
        // 2 (segments {a_i1, a_i2}, {a_i3, a_i4}).
        //
        // R3 = transitive closure of the per-transaction orders plus
        // (a11, a22), (a21, a13), (a31, a11), (a21, a33).
        //
        // The paper derives: (a31, a11) lifts to (a32, a11) [level(t3,t1)=1,
        // whole-txn segment]; (a11, a22) given; (a21, a33) lifts to
        // (a22, a33) [level(t2,t3)=1]; then a11 -> a22 -> a33, and
        // a31 <= a33 intra, a31 -> a11 ... closing a cycle through the
        // lifted pairs. We realize R3's cross pairs as entity conflicts at
        // exactly those order positions and confirm the closure is cyclic.
        //
        // Order construction: we need a total execution order whose
        // dependency relation includes exactly R3's cross pairs (as entity
        // conflicts). Steps in execution order with shared entities:
        //   a31 (e1), a11 (e1,e2), a21 (e3), a22 (e2? ...)
        // Pairs needed: (a11,a22): entity A; (a21,a13): entity B;
        // (a31,a11): entity C; (a21,a33): entity D.
        // Execution order: a31, a11, a12, a21, a22, a13, a14, a23, a24,
        //                  a32, a33, a34.
        // Entities: a31:C, a11:{C->? single entity per step!}
        // Each step touches ONE entity, so a11 cannot share C with a31
        // and A with a22 simultaneously. Use chains through intra order
        // instead: (a31, a11) via C on a31 and a11? Must be direct.
        //
        // Realizable alternative: (a31, a12) via C [implies (a31,a11)? no
        // -- implies only with transitivity via intra a11 -> a12, wrong
        // direction]. So instead give a11 entity C (conflict with a31),
        // a22 entity A with a12 (so (a12, a22) -- then (a11, a22) follows
        // by transitivity via a11 -> a12 -> a22). Similarly (a21, a13):
        // entity B on a21 and a13 directly. (a21, a33): via transitivity
        // (a21, a13)... no, a13 is t1. Put entity D on a24 and a33:
        // (a24, a33), and (a21, a24) intra: gives (a21, a33).
        let order = [
            (2u32, 0u32, 100u32), // a31: C
            (0, 0, 100),          // a11: C  -> (a31, a11)
            (0, 1, 101),          // a12: A
            (1, 0, 102),          // a21: B
            (1, 1, 101),          // a22: A  -> (a12, a22) => (a11, a22)
            (0, 2, 102),          // a13: B  -> (a21, a13)
            (0, 3, 103),          // a14
            (1, 2, 104),          // a23
            (1, 3, 105),          // a24: D
            (2, 1, 106),          // a32
            (2, 2, 105),          // a33: D  -> (a24, a33) => (a21, a33)
            (2, 3, 107),          // a34
        ];
        let e = exec(&order);
        let nest = Nest::new(3, vec![vec![0], vec![0], vec![1]]).unwrap();
        let bd = |n: usize| BreakpointDescription::from_mid_levels(3, n, &[vec![2]]).unwrap();
        let spec = FixedSpec::new(3)
            .set(TxnId(0), bd(4))
            .set(TxnId(1), bd(4))
            .set(TxnId(2), bd(4));
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        assert!(!check_agreement(&ctx), "R3's coherent closure has a cycle");
    }

    #[test]
    fn paper_4_2_example_r1_is_coherent() {
        // §4.2's R1 (coherent): cross pairs (a12, a22), (a22, a13),
        // (a14, a31), (a24, a33). t1, t2 in a common pi(2) class with a
        // breakpoint after step 2; t3 separate.
        // These pairs already respect segment ends, so the closure stays
        // acyclic. (Single-entity steps cannot realize (a22, a13) directly
        // alongside (a12, a22); (a23, a13) is the realizable stand-in and
        // the conclusion — acyclicity — is unchanged, as argued below.)
        let order = [
            (0u32, 0u32, 0u32), // a11
            (0, 1, 1),          // a12: P
            (1, 0, 2),          // a21
            (1, 1, 1),          // a22: P -> (a12, a22). a22 also... single
            (1, 2, 4),          // a23: R
            (0, 2, 4),          // a13: R -> (a23, a13)?? paper has (a22,a13)
            (0, 3, 5),          // a14: S
            (1, 3, 6),          // a24: T
            (2, 0, 5),          // a31: S -> (a14, a31)
            (2, 1, 7),          // a32
            (2, 2, 6),          // a33: T -> (a24, a33)
            (2, 3, 8),          // a34
        ];
        // (a23, a13) is a legal stand-in for (a22, a13): both lie in t2's
        // second... no: a22/a23 are in different level-2 segments (break
        // after step 2 means segments {0,1} and {2,3}). (a23, a13) has
        // a23 in segment 2. Coherence demands a13's predecessors from t2
        // extend to segment ends only when lifted; (a23, a13) lifts to
        // (a24, a13)? a24 occurs before... a24 is at position 7, a13 at 5:
        // (a24, a13) would contradict the execution order -- but closure
        // pairs need not follow execution order; cyclicity is what we
        // test. Lift of (a23, a13) at level(t2,t1)=2: segment of a23 is
        // {a23, a24}, so (a24, a13) joins. Then does (a13, ..., a24)
        // exist to close a cycle? a13 -> a14 (intra) -> a31 (S) ... t3
        // only; no path back to t2. Acyclic.
        let e = exec(&order);
        let nest = Nest::new(3, vec![vec![0], vec![0], vec![1]]).unwrap();
        let bd = |n: usize| BreakpointDescription::from_mid_levels(3, n, &[vec![2]]).unwrap();
        let spec = FixedSpec::new(3)
            .set(TxnId(0), bd(4))
            .set(TxnId(1), bd(4))
            .set(TxnId(2), bd(4));
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        assert!(check_agreement(&ctx));
    }

    #[test]
    fn lift_propagates_through_transitivity() {
        // t0 (atomic wrt t2, level 1) conflicts into t1, which conflicts
        // into t2 — the (b)-lift of the *derived* pair (t0, t2) matters:
        // the whole remainder of t0 must precede t2's step, pulling t0's
        // later steps (which occur after t2's step) before it => cycle.
        let order = [
            (0u32, 0u32, 1u32), // t0 step 0 touches x1
            (1, 0, 1),          // t1 touches x1 -> (t0#0, t1#0)
            (1, 1, 2),          // t1 touches x2
            (2, 0, 2),          // t2 touches x2 -> (t1#1, t2#0)
            (0, 1, 3),          // t0 step 1 (after t2's step!)
        ];
        let e = exec(&order);
        // All transactions mutually at level 1 (atomic): k=2 flat nest.
        let nest = Nest::flat(3);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        // (t0#0, t2#0) by transitivity; lift at level 1 gives
        // (t0#1, t2#0); but t2#0 precedes t0#1 in execution and they...
        // t2#0 -> nothing to t0. Cycle needs (t2#0, t0#1) in relation:
        // not present (no shared entity, no transitive path). So this is
        // ACYCLIC?! t0#1 after t2#0 in time is fine unless related the
        // other way. Indeed serializable: t0 -> t1 -> t2 with t0's tail
        // reordered before t2. Serialization order t0, t1, t2 works.
        assert!(check_agreement(&ctx));

        // Now force the cycle: t2's second step conflicts back into t0's
        // tail.
        let order = [
            (0u32, 0u32, 1u32),
            (1, 0, 1),
            (1, 1, 2),
            (2, 0, 2),
            (2, 1, 3),
            (0, 1, 3), // (t2#1, t0#1): t2 before t0 on x3, t0 ->* t2 => cycle
        ];
        let e = exec(&order);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert!(!check_agreement(&ctx));
    }

    #[test]
    fn empty_and_single_step() {
        let nest = Nest::flat(1);
        let e = Execution::empty();
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert!(check_agreement(&ctx));
        let e = exec(&[(0, 0, 0)]);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert!(check_agreement(&ctx));
    }

    #[test]
    fn relation_graph_reachability_matches_relation() {
        let e = exec(&[(0, 0, 7), (1, 0, 7), (1, 1, 8), (0, 1, 9), (0, 2, 8)]);
        let nest = Nest::flat(2);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        let c = CoherentClosure::compute(&ctx);
        let g = c.relation_graph(&ctx);
        let preds = mla_graph::reach::predecessor_sets(&g);
        for v in 0..ctx.n() {
            for u in 0..ctx.n() {
                if u == v {
                    continue;
                }
                assert_eq!(
                    c.related(&ctx, u, v),
                    preds[v].contains(u),
                    "graph reachability mismatch at ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn randomized_agreement_small() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for trial in 0..150 {
            let txns = rng.gen_range(2..4usize);
            let entities = rng.gen_range(1..4u32);
            let k = rng.gen_range(2..4usize);
            let nest = Nest::new(
                k,
                (0..txns)
                    .map(|_| (0..k - 2).map(|_| rng.gen_range(0..2u32)).collect())
                    .collect(),
            )
            .unwrap();
            // Random interleaving of 2-3 steps per txn.
            let mut remaining: Vec<(u32, u32, u32)> = Vec::new();
            let mut next_seq = vec![0u32; txns];
            let lens: Vec<u32> = (0..txns).map(|_| rng.gen_range(1..4)).collect();
            let total: u32 = lens.iter().sum();
            for _ in 0..total {
                loop {
                    let t = rng.gen_range(0..txns);
                    if next_seq[t] < lens[t] {
                        remaining.push((t as u32, next_seq[t], rng.gen_range(0..entities)));
                        next_seq[t] += 1;
                        break;
                    }
                }
            }
            let e = exec(&remaining);
            // Random mid-level breakpoints, refining.
            let mut spec = FixedSpec::new(k);
            for (t, &len) in lens.iter().enumerate() {
                let mut mid: Vec<Vec<usize>> = Vec::new();
                let mut prev: Vec<usize> = Vec::new();
                for _ in 0..k.saturating_sub(2) {
                    let mut cur = prev.clone();
                    for p in 1..len as usize {
                        if rng.gen_bool(0.4) && !cur.contains(&p) {
                            cur.push(p);
                        }
                    }
                    mid.push(cur.clone());
                    prev = cur;
                }
                spec = spec.set(
                    TxnId(t as u32),
                    BreakpointDescription::from_mid_levels(k, len as usize, &mid).unwrap(),
                );
            }
            let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
            let _ = check_agreement(&ctx);
            let _ = trial;
        }
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::nest::Nest;
    use crate::spec::{AtomicSpec, ExecContext};
    use mla_model::{EntityId, Execution, Step, TxnId};

    /// Regression: in a *cyclic* closure the frontier of a step's own
    /// transaction can jump to (or past) the step itself; an early version
    /// then skipped the transitivity pull entirely, losing the intra
    /// prefix's contributions and under-approximating the relation. The
    /// fix always pulls the immediate intra predecessor. This instance
    /// (all seven steps on one entity, conflicting directions between t0
    /// and t1) exposed it.
    #[test]
    fn cyclic_frontier_keeps_intra_prefix_contributions() {
        let mk = |t: u32, s: u32| Step {
            txn: TxnId(t),
            seq: s,
            entity: EntityId(0),
            observed: 0,
            wrote: 0,
        };
        let e = Execution::new(vec![
            mk(1, 0),
            mk(2, 0),
            mk(0, 0),
            mk(1, 1),
            mk(1, 2),
            mk(0, 1),
            mk(0, 2),
        ])
        .unwrap();
        let nest = Nest::flat(3);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        let fast = CoherentClosure::compute(&ctx);
        let slow = coherent_closure_exact(&ctx);
        assert!(!fast.is_partial_order());
        assert!(!exact_is_partial_order(&slow));
        for v in 0..ctx.n() {
            for u in 0..ctx.n() {
                if u == v {
                    continue;
                }
                assert_eq!(
                    fast.related(&ctx, u, v),
                    slow[v].contains(u),
                    "closures disagree on ({u}, {v})"
                );
            }
        }
        // In this fully entangled instance every step relates to every
        // other (the cycle spreads through lifts and transitivity).
        assert!(fast.related(&ctx, 1, 3), "t2#0 must precede t1#1");
    }
}
