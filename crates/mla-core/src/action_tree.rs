//! Nested action trees: multilevel atomicity in the nested transaction
//! model (§7).
//!
//! The paper shows any multilevel-atomic execution can be described by a
//! *nested action tree* in which logical transactions are regrouped into
//! "actions": enumerate tree levels with the root at level 1; then
//!
//! * all steps below a level-`i` node belong to `π(i)`-equivalent
//!   transactions, and
//! * (for `i > 1`) those steps carry each involved transaction to a
//!   level-`i-1` breakpoint.
//!
//! [`build_action_tree`] constructs the tree for a multilevel-atomic
//! execution by greedy segmentation: a level-`i` node's children are the
//! minimal contiguous blocks such that each block closes with every
//! transaction inside it at a level-`i-1` breakpoint, and blocks never
//! mix transactions from different `π(i)`-classes. The regrouping is
//! execution-dependent ("not statically determined", §7) — the same
//! transactions may combine into different actions in different
//! executions.

use mla_model::TxnId;

use crate::atomicity::check_multilevel_atomic;
use crate::spec::ExecContext;

/// A node of a nested action tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActionNode {
    /// Tree level (root = 1). Leaves sit at level `k`.
    pub level: usize,
    /// Global step indices covered (contiguous in the execution).
    pub steps: std::ops::Range<usize>,
    /// Child actions (empty at level `k`, where each node is one step).
    pub children: Vec<ActionNode>,
}

impl ActionNode {
    /// Transactions whose steps appear below this node.
    pub fn txns(&self, ctx: &ExecContext<'_>) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = Vec::new();
        for i in self.steps.clone() {
            let t = ctx.txn_id(ctx.txn_of(i));
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// Total number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ActionNode::node_count)
            .sum::<usize>()
    }
}

/// Errors from [`build_action_tree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ActionTreeError {
    /// The execution is not multilevel atomic; the paper's tree property
    /// cannot hold.
    NotMultilevelAtomic,
}

impl std::fmt::Display for ActionTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionTreeError::NotMultilevelAtomic => {
                write!(
                    f,
                    "execution is not multilevel atomic; no action tree exists"
                )
            }
        }
    }
}

impl std::error::Error for ActionTreeError {}

/// Builds the nested action tree of a multilevel-atomic execution.
pub fn build_action_tree(ctx: &ExecContext<'_>) -> Result<ActionNode, ActionTreeError> {
    if check_multilevel_atomic(ctx).is_err() {
        return Err(ActionTreeError::NotMultilevelAtomic);
    }
    Ok(split(ctx, 1, 0..ctx.n()))
}

/// Recursively splits `range` (all of whose transactions are pairwise
/// `π(level)`-equivalent, by induction) into level-`level + 1` blocks.
fn split(ctx: &ExecContext<'_>, level: usize, range: std::ops::Range<usize>) -> ActionNode {
    let k = ctx.nest().k();
    let mut node = ActionNode {
        level,
        steps: range.clone(),
        children: Vec::new(),
    };
    if level >= k || range.is_empty() {
        return node;
    }
    let child_level = level + 1;
    // Minimal blocks: close the current block as soon as every transaction
    // inside it sits at a level-`level` breakpoint — the finest split the
    // paper's tree property allows, matching its worked example where each
    // leaf is a single step. Because the execution is multilevel atomic, a
    // pi(child_level)-inequivalent transaction can only step when every
    // member is at a suitable (coarser, hence included) breakpoint, so the
    // block is always closed before inequivalent steps arrive.
    let mut block_start = range.start;
    let mut members: Vec<usize> = Vec::new(); // local txn indices in block
    let mut last_seq: Vec<Option<usize>> = vec![None; ctx.txn_count()];
    for i in range.clone() {
        let t = ctx.txn_of(i);
        debug_assert!(
            members.iter().all(|&m| ctx.level(m, t) >= child_level),
            "atomic execution stepped an inequivalent txn into an open block"
        );
        if !members.contains(&t) {
            members.push(t);
        }
        last_seq[t] = Some(ctx.seq_of(i));
        let all_at_breakpoint = members
            .iter()
            .all(|&m| last_seq[m].is_none_or(|s| ctx.bd(m).breakpoint_after(level, s)));
        if all_at_breakpoint {
            node.children
                .push(split(ctx, child_level, block_start..i + 1));
            for &m in &members {
                last_seq[m] = None;
            }
            members.clear();
            block_start = i + 1;
        }
    }
    if block_start < range.end {
        node.children
            .push(split(ctx, child_level, block_start..range.end));
    }
    node
}

/// Checks the paper's §7 tree property: all steps below a level-`i` node
/// belong to `π(i)`-equivalent transactions.
pub fn validate_tree(ctx: &ExecContext<'_>, node: &ActionNode) -> bool {
    let txns = node.txns(ctx);
    for a in &txns {
        for b in &txns {
            if ctx.nest().level(*a, *b) < node.level {
                return false;
            }
        }
    }
    node.children.iter().all(|c| validate_tree(ctx, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::BreakpointDescription;
    use crate::nest::Nest;
    use crate::spec::{ExecContext, FixedSpec};
    use mla_model::{EntityId, Execution, Step};

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    fn exec(order: &[(u32, u32, u32)]) -> Execution {
        Execution::new(order.iter().map(|&(t, s, x)| step(t, s, x)).collect()).unwrap()
    }

    /// §7's example: transfers t0, t1 (w then d each, same pi(2) class
    /// with within-class free interleaving) and an isolated audit txn.
    /// Execution w0 d0' pattern combining t0, t1 into one "action".
    fn setup() -> (Execution, Nest, FixedSpec) {
        // k = 3: pi(2) = {t0, t1} | {t2=audit}.
        let nest = Nest::new(3, vec![vec![0], vec![0], vec![1]]).unwrap();
        let free2 =
            |n: usize| BreakpointDescription::from_mid_levels(3, n, &[(1..n).collect()]).unwrap();
        let spec = FixedSpec::new(3)
            .set(TxnId(0), free2(2))
            .set(TxnId(1), free2(2))
            .set(TxnId(2), BreakpointDescription::atomic(3, 2));
        // w1 d1' interleaved transfers, then the audit.
        let e = exec(&[
            (0, 0, 1), // w of t0
            (1, 0, 2), // w of t1
            (1, 1, 3), // d of t1
            (0, 1, 4), // d of t0
            (2, 0, 5), // audit step 1
            (2, 1, 6), // audit step 2
        ]);
        (e, nest, spec)
    }

    #[test]
    fn combined_transfers_form_one_action() {
        let (e, nest, spec) = setup();
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        let tree = build_action_tree(&ctx).unwrap();
        assert_eq!(tree.level, 1);
        assert_eq!(tree.steps, 0..6);
        // Level 2: {t0, t1} combined into one action, audit its own.
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].steps, 0..4);
        assert_eq!(tree.children[0].txns(&ctx), vec![TxnId(0), TxnId(1)]);
        assert_eq!(tree.children[1].steps, 4..6);
        assert_eq!(tree.children[1].txns(&ctx), vec![TxnId(2)]);
        assert!(validate_tree(&ctx, &tree));
    }

    #[test]
    fn leaf_level_is_singleton_steps() {
        let (e, nest, spec) = setup();
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        let tree = build_action_tree(&ctx).unwrap();
        // k = 3: level-3 nodes are the leaves. Under the transfers'
        // action, level 3 splits into per-step singletons? Level-3 blocks
        // group pi(3)-equivalent txns = single transactions, closing at
        // level-2 breakpoints (everywhere for transfers): each maximal
        // same-txn run is one block.
        let transfers = &tree.children[0];
        assert_eq!(
            transfers.children.len(),
            4,
            "w0 | w1 d1 | d0 split: {:?}",
            transfers
                .children
                .iter()
                .map(|c| c.steps.clone())
                .collect::<Vec<_>>()
        );
        for c in &transfers.children {
            assert_eq!(c.txns(&ctx).len(), 1);
        }
        assert!(validate_tree(&ctx, &tree));
    }

    #[test]
    fn non_atomic_execution_rejected() {
        let (_, nest, spec) = setup();
        // Audit interleaves into the transfers: not atomic.
        let e = exec(&[(0, 0, 1), (2, 0, 5), (0, 1, 4), (2, 1, 6)]);
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        assert_eq!(
            build_action_tree(&ctx).unwrap_err(),
            ActionTreeError::NotMultilevelAtomic
        );
    }

    #[test]
    fn serial_execution_tree_is_per_txn() {
        let (_, nest, spec) = setup();
        let e = exec(&[
            (0, 0, 1),
            (0, 1, 2),
            (2, 0, 3),
            (2, 1, 4),
            (1, 0, 5),
            (1, 1, 6),
        ]);
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        let tree = build_action_tree(&ctx).unwrap();
        // Audit separates the transfers, so level 2 has three actions.
        assert_eq!(tree.children.len(), 3);
        assert!(validate_tree(&ctx, &tree));
        assert!(tree.node_count() > 4);
    }

    #[test]
    fn empty_execution_tree() {
        let nest = Nest::flat(1);
        let spec = FixedSpec::new(2);
        let e = Execution::empty();
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        let tree = build_action_tree(&ctx).unwrap();
        assert_eq!(tree.steps, 0..0);
        assert!(tree.children.is_empty());
    }
}
