//! Constructive Lemma 1: extending a coherent partial order to a coherent
//! total order (§5.1 and the Appendix).
//!
//! The Appendix proof is algorithmic and we implement it operationally.
//! Starting from the coherent closure `<(1)` of `<=_e`, stages `i = 2..=k`
//! each insert additional pairs:
//!
//! 1. partition all steps into segments — the equivalence classes of
//!    `B_t(i-1)` for each transaction `t`;
//! 2. build the segment digraph `G` (an edge `S1 -> S2` iff some step of
//!    `S1` precedes some step of `S2` in `<(i-1)`);
//! 3. condense `G` into strongly connected components and order the
//!    components topologically;
//! 4. add to the relation every pair `(α, β)` with `α`'s segment in an
//!    earlier component than `β`'s.
//!
//! After stage `k`, every pair of steps from distinct transactions is
//! comparable (every cross pair has `level < k`), so the relation is a
//! coherent *total* order — an execution in `C(π, 𝔅)` equivalent to the
//! input. That witness is what [`extend_to_total_order`] returns.
//!
//! The proof's Lemma 5 invariant — segments sharing a component belong to
//! `π(i)`-equivalent transactions — is asserted (in debug builds) at every
//! stage; it is what guarantees the added pairs never conflict with
//! coherence.
//!
//! Like [`crate::closure::CoherentClosure`], the relation is carried in
//! frontier-matrix form (`m[v][t]` = largest seq of `t` ordered before
//! `v`), which every stage preserves: the components earlier than a step's
//! component contain a *prefix* of each transaction's segments, because
//! each transaction's segment chain is monotone in component order.

use mla_graph::{tarjan, DiGraph};
use mla_model::Execution;

use crate::closure::CoherentClosure;
use crate::spec::ExecContext;

/// Errors from [`extend_to_total_order`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtendError {
    /// The input closure is not a partial order (the execution is not
    /// correctable): Lemma 1 does not apply.
    NotAPartialOrder,
}

impl std::fmt::Display for ExtendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtendError::NotAPartialOrder => {
                write!(
                    f,
                    "coherent closure is cyclic; no coherent extension exists"
                )
            }
        }
    }
}

impl std::error::Error for ExtendError {}

/// Extends the coherent closure to a coherent total order, returning the
/// global step indices in witness order.
pub fn extend_to_total_order(
    ctx: &ExecContext<'_>,
    closure: &CoherentClosure,
) -> Result<Vec<usize>, ExtendError> {
    if !closure.is_partial_order() {
        return Err(ExtendError::NotAPartialOrder);
    }
    let n = ctx.n();
    let tcount = ctx.txn_count();
    let k = ctx.nest().k();

    // Working frontier matrix <(i), initialized to <(1) = the closure.
    let mut m: Vec<Vec<i64>> = (0..n).map(|v| closure.frontier(v).to_vec()).collect();

    for stage in 2..=k {
        let level = stage - 1;

        // Segment table: per txn, its B_t(level) segments in order.
        // seg_of[t][seq] -> global segment id; seg ids are dense.
        let mut seg_of: Vec<Vec<usize>> = Vec::with_capacity(tcount);
        let mut seg_txn: Vec<usize> = Vec::new();
        let mut seg_end_seq: Vec<usize> = Vec::new();
        let mut txn_segs: Vec<Vec<usize>> = vec![Vec::new(); tcount];
        for t in 0..tcount {
            let len = ctx.steps_of(t).len();
            let mut of = vec![0usize; len];
            if len > 0 {
                for (start, end) in ctx.bd(t).segments(level) {
                    let id = seg_txn.len();
                    seg_txn.push(t);
                    seg_end_seq.push(end);
                    txn_segs[t].push(id);
                    for item in of.iter_mut().take(end + 1).skip(start) {
                        *item = id;
                    }
                }
            }
            seg_of.push(of);
        }
        let seg_count = seg_txn.len();

        // Segment digraph: intra-transaction chains plus one edge per
        // frontier entry (the frontier subsumes all earlier steps of the
        // same transaction, whose segments chain into the frontier's).
        let mut g = DiGraph::new(seg_count);
        for segs in &txn_segs {
            for w in segs.windows(2) {
                g.add_edge_unique(w[0] as u32, w[1] as u32);
            }
        }
        for v in 0..n {
            let tv = ctx.txn_of(v);
            let sv = ctx.seq_of(v);
            let target = seg_of[tv][sv];
            for t in 0..tcount {
                if t == tv {
                    continue;
                }
                let s = m[v][t];
                if s < 0 {
                    continue;
                }
                let source = seg_of[t][s as usize];
                if source != target {
                    g.add_edge_unique(source as u32, target as u32);
                }
            }
        }

        // Condense and order components. Tarjan numbers components in
        // reverse topological order (edges go from higher to lower ids),
        // so position = (count - 1 - id) increases along edges.
        let cond = tarjan(&g);
        let comp_count = cond.len();
        let pos_of_comp = |c: u32| (comp_count - 1) as i64 - c as i64;

        // Lemma 5: same-component segments belong to pi(stage)-equivalent
        // transactions. For a coherent input this always holds.
        #[cfg(debug_assertions)]
        for members in &cond.members {
            for w in members.windows(2) {
                let (ta, tb) = (seg_txn[w[0] as usize], seg_txn[w[1] as usize]);
                debug_assert!(
                    ctx.level(ta, tb) >= stage,
                    "Lemma 5 violated at stage {stage}: segments of {} and {} share a component",
                    ctx.txn_id(ta),
                    ctx.txn_id(tb)
                );
            }
        }

        // Per transaction: (component position, segment end seq) per
        // segment, in segment order. Positions are nondecreasing along
        // the chain, so "latest segment with position < p" is a suffix
        // boundary found by scanning (or binary search; chains are short).
        let seg_pos: Vec<i64> = (0..seg_count)
            .map(|s| pos_of_comp(cond.comp_of[s]))
            .collect();

        // Add the cross-component pairs, folding them into the frontier:
        // for step v at component position p, each transaction t
        // contributes its latest segment strictly before p.
        for v in 0..n {
            let tv = ctx.txn_of(v);
            let sv = ctx.seq_of(v);
            let p = seg_pos[seg_of[tv][sv]];
            for t in 0..tcount {
                if t == tv {
                    continue;
                }
                // Find the last segment of t with position < p.
                let segs = &txn_segs[t];
                let idx = segs.partition_point(|&s| seg_pos[s] < p);
                if idx > 0 {
                    let s = segs[idx - 1];
                    let end = seg_end_seq[s] as i64;
                    if end > m[v][t] {
                        m[v][t] = end;
                    }
                }
            }
        }
    }

    // The relation is now total: rank every step by the number of steps
    // ordered before it. In a total order the ranks are exactly 0..n-1.
    let mut rank: Vec<(usize, usize)> = (0..n)
        .map(|v| {
            let tv = ctx.txn_of(v);
            let mut r = ctx.seq_of(v);
            for t in 0..tcount {
                if t != tv {
                    r += (m[v][t] + 1) as usize;
                }
            }
            (r, v)
        })
        .collect();
    rank.sort_unstable();
    debug_assert!(
        rank.iter().enumerate().all(|(i, &(r, _))| i == r),
        "Lemma 1 output is not a total order — input was not coherent"
    );
    Ok(rank.into_iter().map(|(_, v)| v).collect())
}

/// Extends the closure and materializes the witness [`Execution`]: a
/// multilevel-atomic execution equivalent to the context's execution.
pub fn witness_execution(
    ctx: &ExecContext<'_>,
    closure: &CoherentClosure,
) -> Result<Execution, ExtendError> {
    let order = extend_to_total_order(ctx, closure)?;
    let steps = order.iter().map(|&v| ctx.exec().steps()[v]).collect();
    Ok(Execution::new(steps).expect("witness preserves per-transaction step order"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomicity::is_multilevel_atomic;
    use crate::breakpoints::BreakpointDescription;
    use crate::nest::Nest;
    use crate::spec::{AtomicSpec, BreakpointSpecification, ExecContext, FixedSpec, FreeSpec};
    use mla_model::{EntityId, Execution, Step, TxnId};

    fn step(txn: u32, seq: u32, entity: u32) -> Step {
        Step {
            txn: TxnId(txn),
            seq,
            entity: EntityId(entity),
            observed: 0,
            wrote: 0,
        }
    }

    fn exec(order: &[(u32, u32, u32)]) -> Execution {
        Execution::new(order.iter().map(|&(t, s, x)| step(t, s, x)).collect()).unwrap()
    }

    /// Full pipeline assertion: closure acyclic -> witness exists, is a
    /// permutation, is equivalent to the input, and is multilevel atomic.
    fn assert_witness_ok(
        e: &Execution,
        nest: &Nest,
        spec: &dyn BreakpointSpecification,
    ) -> Execution {
        let ctx = ExecContext::new(e, nest, spec).unwrap();
        let closure = CoherentClosure::compute(&ctx);
        assert!(closure.is_partial_order(), "expected correctable input");
        let w = witness_execution(&ctx, &closure).unwrap();
        assert_eq!(w.len(), e.len());
        assert!(
            e.equivalent(&w),
            "witness not equivalent to input\n  input:   {e}\n  witness: {w}"
        );
        assert!(
            is_multilevel_atomic(&w, nest, spec).unwrap(),
            "witness not multilevel atomic: {w}"
        );
        w
    }

    #[test]
    fn serializable_input_yields_serial_witness_at_k2() {
        // Interleaved but serializable: the witness must be serial.
        let e = exec(&[(0, 0, 1), (1, 0, 2), (0, 1, 3), (1, 1, 4)]);
        let nest = Nest::flat(2);
        let w = assert_witness_ok(&e, &nest, &AtomicSpec { k: 2 });
        assert!(w.is_serial());
    }

    #[test]
    fn conflicting_but_serializable_respects_conflict_order() {
        // t1 -> t0 on entity 5: witness must serialize t1 first.
        let e = exec(&[(1, 0, 5), (0, 0, 5), (1, 1, 6), (0, 1, 7)]);
        let nest = Nest::flat(2);
        let w = assert_witness_ok(&e, &nest, &AtomicSpec { k: 2 });
        assert!(w.is_serial());
        assert_eq!(w.steps()[0].txn, TxnId(1));
    }

    #[test]
    fn cyclic_closure_is_rejected() {
        let e = exec(&[(0, 0, 7), (1, 0, 7), (1, 1, 8), (0, 1, 8)]);
        let nest = Nest::flat(2);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        let closure = CoherentClosure::compute(&ctx);
        assert_eq!(
            extend_to_total_order(&ctx, &closure).unwrap_err(),
            ExtendError::NotAPartialOrder
        );
    }

    #[test]
    fn free_spec_witness_can_remain_interleaved() {
        // Everything pi(2)-related with free breakpoints: the input order
        // itself is coherent, so the witness is equivalent (and the
        // identity reordering is acceptable).
        let e = exec(&[(0, 0, 7), (1, 0, 7), (0, 1, 8), (1, 1, 8)]);
        let nest = Nest::new(3, vec![vec![0], vec![0]]).unwrap();
        assert_witness_ok(&e, &nest, &FreeSpec { k: 3 });
    }

    #[test]
    fn banking_phase_interleaving_witness() {
        // Transfers of different families with a level-2 breakpoint after
        // the withdrawal phase; an interleaving that is correctable but
        // not multilevel atomic must produce a reordered atomic witness.
        let nest = Nest::new(4, vec![vec![0, 0], vec![0, 1]]).unwrap();
        let bd = |n: usize| {
            let l2: Vec<usize> = if n > 2 { vec![2] } else { Vec::new() };
            BreakpointDescription::from_mid_levels(4, n, &[l2.clone(), l2]).unwrap()
        };
        // t0: w w d d (breakpoint after 2 steps); t1 same; disjoint
        // entities so every reordering is equivalent.
        let e = exec(&[
            (0, 0, 1),
            (1, 0, 11),
            (0, 1, 2),
            (1, 1, 12),
            (0, 2, 3),
            (1, 2, 13),
            (0, 3, 4),
            (1, 3, 14),
        ]);
        let spec = FixedSpec::new(4).set(TxnId(0), bd(4)).set(TxnId(1), bd(4));
        let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
        assert!(
            crate::atomicity::check_multilevel_atomic(&ctx).is_err(),
            "the fine-grained weave itself is not atomic"
        );
        let w = assert_witness_ok(&e, &nest, &spec);
        // Witness interleaves only at phase boundaries.
        assert!(is_multilevel_atomic(&w, &nest, &spec).unwrap());
    }

    #[test]
    fn paper_5_1_example_two_coherent_total_orders() {
        // §5.1's example: R1's coherent extensions keep t3 last and order
        // the {t1, t2} segments. Our algorithm returns one of the two
        // coherent total orders the paper lists (which one depends on
        // tie-breaking); we verify it is coherent and equivalent.
        let order = [
            (0u32, 0u32, 0u32),
            (0, 1, 1),
            (1, 0, 2),
            (1, 1, 1), // (a12, a22)
            (1, 2, 4),
            (0, 2, 4), // (a23, a13)
            (0, 3, 5),
            (1, 3, 6),
            (2, 0, 5), // (a14, a31)
            (2, 1, 7),
            (2, 2, 6), // (a24, a33)
            (2, 3, 8),
        ];
        let e = exec(&order);
        let nest = Nest::new(3, vec![vec![0], vec![0], vec![1]]).unwrap();
        let bd = |n: usize| BreakpointDescription::from_mid_levels(3, n, &[vec![2]]).unwrap();
        let spec = FixedSpec::new(3)
            .set(TxnId(0), bd(4))
            .set(TxnId(1), bd(4))
            .set(TxnId(2), bd(4));
        let w = assert_witness_ok(&e, &nest, &spec);
        // t3 (local t2) must come after both others: its steps conflict
        // into... in our realization t3 reads entities 5 and 6 after t0
        // and t1 wrote them, so it must be last in any coherent order.
        let last_four: Vec<TxnId> = w.steps()[8..].iter().map(|s| s.txn).collect();
        assert_eq!(last_four, vec![TxnId(2); 4]);
    }

    #[test]
    fn witness_is_stable_for_already_atomic_input() {
        // An input that is already multilevel atomic stays equivalent
        // (though not necessarily identical) after extension.
        let e = exec(&[(0, 0, 1), (0, 1, 2), (1, 0, 1), (1, 1, 3)]);
        let nest = Nest::flat(2);
        let w = assert_witness_ok(&e, &nest, &AtomicSpec { k: 2 });
        assert!(w.is_serial());
    }

    #[test]
    fn empty_execution_extends_trivially() {
        let e = Execution::empty();
        let nest = Nest::flat(1);
        let ctx = ExecContext::new(&e, &nest, &AtomicSpec { k: 2 }).unwrap();
        let closure = CoherentClosure::compute(&ctx);
        let order = extend_to_total_order(&ctx, &closure).unwrap();
        assert!(order.is_empty());
    }

    #[test]
    fn randomized_witness_pipeline() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        let mut correctable_seen = 0;
        for _ in 0..200 {
            let txns = rng.gen_range(2..4usize);
            let entities = rng.gen_range(1..5u32);
            let k = rng.gen_range(2..5usize);
            let nest = Nest::new(
                k,
                (0..txns)
                    .map(|_| (0..k - 2).map(|_| rng.gen_range(0..2u32)).collect())
                    .collect(),
            )
            .unwrap();
            let lens: Vec<u32> = (0..txns).map(|_| rng.gen_range(1..4)).collect();
            let total: u32 = lens.iter().sum();
            let mut next_seq = vec![0u32; txns];
            let mut order = Vec::new();
            for _ in 0..total {
                loop {
                    let t = rng.gen_range(0..txns);
                    if next_seq[t] < lens[t] {
                        order.push((t as u32, next_seq[t], rng.gen_range(0..entities)));
                        next_seq[t] += 1;
                        break;
                    }
                }
            }
            let e = exec(&order);
            let mut spec = FixedSpec::new(k);
            for (t, &len) in lens.iter().enumerate() {
                let mut mid: Vec<Vec<usize>> = Vec::new();
                let mut prev: Vec<usize> = Vec::new();
                for _ in 0..k.saturating_sub(2) {
                    let mut cur = prev.clone();
                    for p in 1..len as usize {
                        if rng.gen_bool(0.5) && !cur.contains(&p) {
                            cur.push(p);
                        }
                    }
                    mid.push(cur.clone());
                    prev = cur;
                }
                spec = spec.set(
                    TxnId(t as u32),
                    BreakpointDescription::from_mid_levels(k, len as usize, &mid).unwrap(),
                );
            }
            let ctx = ExecContext::new(&e, &nest, &spec).unwrap();
            let closure = CoherentClosure::compute(&ctx);
            if closure.is_partial_order() {
                correctable_seen += 1;
                let w = witness_execution(&ctx, &closure).unwrap();
                assert!(e.equivalent(&w));
                assert!(is_multilevel_atomic(&w, &nest, &spec).unwrap());
            } else {
                assert_eq!(
                    extend_to_total_order(&ctx, &closure).unwrap_err(),
                    ExtendError::NotAPartialOrder
                );
            }
        }
        assert!(
            correctable_seen > 20,
            "sampling should hit correctable cases"
        );
    }
}
