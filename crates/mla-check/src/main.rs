//! The `mla-check` binary: check recorded histories, or generate a
//! seeded corpus.

use std::path::{Path, PathBuf};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use mla_check::{check, check_weak, format_history, generate, mutate, parse, GenConfig, MUTATIONS};

const USAGE: &str = "mla-check: black-box multilevel-atomicity history checker

USAGE: mla-check <COMMAND>

  check FILE...                  decide each history (mla-history v1)
    --json                       machine-readable diagnostics
    --weak                       constrained-linearization mode: trust
                                 values, search the interleaving
    --budget N                   weak-mode node budget        [200000]
    --expect pass|fail           exit 1 unless every file matches [pass]

  gen                            write a seeded corpus, verdict-sorted
                                 into <out>/valid and <out>/invalid
    --out DIR                    output directory             [corpus]
    --seed N                     RNG seed                     [1]
    --count N                    histories to draw            [16]
    --txns N --entities N --k N  generator dimensions         [4 3 3]
    --min-len N --max-len N      steps per transaction        [1 4]
    --density PCT                breakpoint density           [40]
    --mutate                     also emit each mutation of each draw

Exit status: 0 all verdicts match expectation, 1 otherwise, 2 on
usage/IO/parse errors.
";

fn parse_or_die<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("bad or missing value for {flag}\n\n{USAGE}");
        std::process::exit(2);
    })
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

fn cmd_check(mut args: std::env::Args) -> i32 {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut weak = false;
    let mut budget = 200_000usize;
    let mut expect_pass = true;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--weak" => weak = true,
            "--budget" => budget = parse_or_die(&a, args.next()),
            "--expect" => {
                expect_pass = match args.next().as_deref() {
                    Some("pass") => true,
                    Some("fail") => false,
                    other => {
                        eprintln!("--expect takes pass|fail, got {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if files.is_empty() {
        eprintln!("no history files given\n\n{USAGE}");
        return 2;
    }

    let mut mismatches = 0usize;
    let mut objects: Vec<String> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                return 2;
            }
        };
        let history = match parse(&text) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                return 2;
            }
        };
        let (passed, line, obj) = if weak {
            let v = check_weak(&history, budget);
            let obj = format!(
                "{{\"file\":\"{}\",\"mode\":\"weak\",\"verdict\":\"{}\"}}",
                json_escape(&file.display().to_string()),
                match &v {
                    mla_check::WeakVerdict::Realizable { .. } => "pass",
                    mla_check::WeakVerdict::Unrealizable => "fail",
                    mla_check::WeakVerdict::BudgetExhausted => "undecided",
                }
            );
            (v.realizable(), v.render(), obj)
        } else {
            let v = check(&history);
            let obj = format!(
                "{{\"file\":\"{}\",\"mode\":\"strong\",\"report\":{}}}",
                json_escape(&file.display().to_string()),
                v.to_json()
            );
            (v.passed(), v.render(), obj)
        };
        if !json {
            println!("{}: {line}", file.display());
        }
        objects.push(obj);
        if passed != expect_pass {
            mismatches += 1;
        }
    }
    if json {
        println!("[{}]", objects.join(","));
    }
    if mismatches > 0 {
        eprintln!(
            "{mismatches}/{} histories did not {} the check",
            files.len(),
            if expect_pass { "pass" } else { "fail" }
        );
        1
    } else {
        0
    }
}

fn write_sorted(out: &Path, name: &str, h: &mla_check::History) -> std::io::Result<&'static str> {
    let bucket = if check(h).passed() {
        "valid"
    } else {
        "invalid"
    };
    let dir = out.join(bucket);
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("{name}.hist")), format_history(h))?;
    Ok(bucket)
}

fn cmd_gen(mut args: std::env::Args) -> i32 {
    let mut out = PathBuf::from("corpus");
    let mut seed = 1u64;
    let mut count = 16usize;
    let mut cfg = GenConfig::default();
    let mut mutate_too = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = parse_or_die(&a, args.next()),
            "--seed" => seed = parse_or_die(&a, args.next()),
            "--count" => count = parse_or_die(&a, args.next()),
            "--txns" => cfg.txns = parse_or_die(&a, args.next()),
            "--entities" => cfg.entities = parse_or_die(&a, args.next()),
            "--k" => cfg.k = parse_or_die(&a, args.next()),
            "--min-len" => cfg.min_len = parse_or_die(&a, args.next()),
            "--max-len" => cfg.max_len = parse_or_die(&a, args.next()),
            "--density" => cfg.break_pct = parse_or_die(&a, args.next()),
            "--mutate" => mutate_too = true,
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let (mut valid, mut invalid) = (0usize, 0usize);
    let mut bump = |bucket: &str| {
        if bucket == "valid" {
            valid += 1;
        } else {
            invalid += 1;
        }
    };
    for i in 0..count {
        let h = generate(&cfg, &mut rng);
        match write_sorted(&out, &format!("h{i:03}"), &h) {
            Ok(bucket) => bump(bucket),
            Err(e) => {
                eprintln!("{}: {e}", out.display());
                return 2;
            }
        }
        if mutate_too {
            for m in MUTATIONS {
                if let Some(mutant) = mutate(&h, m, &mut rng) {
                    match write_sorted(&out, &format!("h{i:03}-{}", m.tag()), &mutant) {
                        Ok(bucket) => bump(bucket),
                        Err(e) => {
                            eprintln!("{}: {e}", out.display());
                            return 2;
                        }
                    }
                }
            }
        }
    }
    drop(bump);
    println!(
        "wrote {valid} valid + {invalid} invalid histories under {}",
        out.display()
    );
    0
}

fn main() {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let code = match args.next().as_deref() {
        Some("check") => cmd_check(args),
        Some("gen") => cmd_gen(args),
        Some("--help") | Some("-h") => {
            print!("{USAGE}");
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}
