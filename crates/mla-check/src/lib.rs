//! `mla-check` — a black-box multilevel-atomicity history checker.
//!
//! Everything else in this workspace *schedules*; this crate *audits*.
//! It takes a recorded history — steps, entities, a nest, and a
//! breakpoint specification, either captured from the in-tree harnesses
//! or parsed from the line-oriented text format in [`format`] — and
//! decides multilevel atomicity after the fact, the MLA analogue of
//! dbcop (Biswas & Enea, "On the Complexity of Checking Transactional
//! Consistency", PAPERS.md 1908.04509):
//!
//! * [`history`] — the [`History`](history::History) record: nest,
//!   per-transaction breakpoint marks, declared entities, execution.
//!   Implements [`BreakpointSpecification`] directly (restricting marks
//!   to whatever step prefix it is asked about), so the same record
//!   drives the full check, projections, and the weak-mode search.
//! * [`format`] — parser and writer for the `mla-history v1` text
//!   format, with `parse(format(h)) == h` pinned by proptest.
//! * [`decompose`] — the communication-graph decomposition: transactions
//!   sharing no entity (even transitively) cannot constrain each other,
//!   so each connected component is checked separately.
//! * [`checker`] — the polynomial saturation pass per component: grow
//!   the coherent closure to fixpoint ([`CoherentClosure`]), then either
//!   extend to a witness total order (`mla-core::extend`, Lemma 1) or
//!   report a concrete violation cycle with the offending steps named.
//! * [`weak`] — the constrained-linearization fallback for
//!   weaker-than-recorded dependency info: when only the read-from
//!   values are trusted (not the recorded interleaving), deciding
//!   whether *some* value-consistent ordering is correctable mirrors
//!   dbcop's NP-complete side, searched with prefix-closure pruning.
//! * [`gen`] — a `testgen`-style seeded random history generator plus
//!   the three mutation operators the differential suite uses (adjacent
//!   step swap, breakpoint drop, read-from rewrite).
//!
//! The `mla-check` binary exposes all of it: `mla-check check FILE...`
//! exits nonzero on violation (`--json` for machine-readable
//! diagnostics), `mla-check gen` writes a seeded corpus.
//!
//! [`BreakpointSpecification`]: mla_core::spec::BreakpointSpecification
//! [`CoherentClosure`]: mla_core::closure::CoherentClosure

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod decompose;
pub mod format;
pub mod gen;
pub mod history;
pub mod weak;

pub use checker::{check, Verdict, Violation};
pub use decompose::communication_clusters;
pub use format::{parse, write as format_history, FormatError};
pub use gen::{generate, mutate, GenConfig, Mutation, MUTATIONS};
pub use history::{History, HistoryError};
pub use weak::{check_weak, WeakVerdict};
