//! The checkable history record.
//!
//! A [`History`] is everything Theorem 2 needs, captured black-box: the
//! nest, each transaction's breakpoint marks, the set of entities the
//! system declared, and the recorded execution. It is *canonical* —
//! marks sorted and deduplicated, declared entities reduced to the ones
//! no step uses — so structural equality is format round-trip equality.

use mla_core::breakpoints::BreakpointDescription;
use mla_core::nest::Nest;
use mla_core::spec::BreakpointSpecification;
use mla_model::{EntityId, Execution, Step, TxnId};

/// Why a history record is malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryError {
    /// A step names a transaction outside the nest.
    TxnOutsideNest {
        /// The offending transaction.
        txn: TxnId,
        /// Transactions the nest covers.
        nest_txns: usize,
    },
    /// Breakpoint marks were given for a transaction outside the nest.
    MarksOutsideNest {
        /// The offending transaction index.
        txn: usize,
        /// Transactions the nest covers.
        nest_txns: usize,
    },
    /// A transaction's marks list the wrong number of mid levels.
    WrongLevelCount {
        /// The transaction.
        txn: TxnId,
        /// Expected mid levels (`k - 2`).
        expected: usize,
        /// Levels given.
        found: usize,
    },
    /// A mark position is invalid for the transaction's recorded steps
    /// (out of `1..=len-1`, or the levels do not refine).
    BadMarks {
        /// The transaction.
        txn: TxnId,
        /// The underlying breakpoint error, rendered.
        detail: String,
    },
    /// A transaction has breakpoint marks but no recorded steps.
    MarksWithoutSteps {
        /// The transaction.
        txn: TxnId,
    },
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::TxnOutsideNest { txn, nest_txns } => {
                write!(f, "step transaction {txn} outside nest of {nest_txns}")
            }
            HistoryError::MarksOutsideNest { txn, nest_txns } => {
                write!(f, "marks for t{txn} outside nest of {nest_txns}")
            }
            HistoryError::WrongLevelCount {
                txn,
                expected,
                found,
            } => {
                write!(f, "{txn}: {found} mark levels, nest needs {expected}")
            }
            HistoryError::BadMarks { txn, detail } => write!(f, "{txn}: {detail}"),
            HistoryError::MarksWithoutSteps { txn } => {
                write!(f, "{txn} has breakpoint marks but no steps")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// A recorded history: the checker's sole input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct History {
    nest: Nest,
    /// `marks[t][j]` — level-`j+2` breakpoint positions of transaction
    /// `t`, ascending. Dense over the nest; `k - 2` levels per txn.
    marks: Vec<Vec<Vec<usize>>>,
    /// Entities declared by the system but touched by no step,
    /// ascending. (Used entities are implicit in the execution.)
    extra_entities: Vec<EntityId>,
    exec: Execution,
}

impl History {
    /// Builds and canonicalizes a history. `marks` may be shorter than
    /// the nest (missing transactions get no mid-level breakpoints) and
    /// entries may be empty (normalized to `k - 2` empty levels), but a
    /// transaction with any marks must have recorded steps that the
    /// positions fit.
    pub fn new(
        nest: Nest,
        marks: Vec<Vec<Vec<usize>>>,
        extra_entities: Vec<EntityId>,
        exec: Execution,
    ) -> Result<Self, HistoryError> {
        let k = nest.k();
        let nest_txns = nest.txn_count();
        if marks.len() > nest_txns {
            return Err(HistoryError::MarksOutsideNest {
                txn: marks.len() - 1,
                nest_txns,
            });
        }
        for s in exec.steps() {
            if s.txn.index() >= nest_txns {
                return Err(HistoryError::TxnOutsideNest {
                    txn: s.txn,
                    nest_txns,
                });
            }
        }
        let mut dense = vec![vec![Vec::new(); k - 2]; nest_txns];
        for (t, levels) in marks.into_iter().enumerate() {
            let txn = TxnId(t as u32);
            if levels.is_empty() {
                continue;
            }
            if levels.len() != k - 2 {
                return Err(HistoryError::WrongLevelCount {
                    txn,
                    expected: k - 2,
                    found: levels.len(),
                });
            }
            let mut canon: Vec<Vec<usize>> = levels
                .into_iter()
                .map(|mut l| {
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            if canon.iter().all(|l| l.is_empty()) {
                continue;
            }
            let len = exec.txn_steps(txn).len();
            if len == 0 {
                return Err(HistoryError::MarksWithoutSteps { txn });
            }
            BreakpointDescription::from_mid_levels(k, len, &canon).map_err(|e| {
                HistoryError::BadMarks {
                    txn,
                    detail: e.to_string(),
                }
            })?;
            std::mem::swap(&mut dense[t], &mut canon);
        }
        let mut used: Vec<EntityId> = exec.steps().iter().map(|s| s.entity).collect();
        used.sort_unstable();
        used.dedup();
        let mut extra = extra_entities;
        extra.sort_unstable();
        extra.dedup();
        extra.retain(|e| used.binary_search(e).is_err());
        Ok(History {
            nest,
            marks: dense,
            extra_entities: extra,
            exec,
        })
    }

    /// Captures a history from a harness run: reads each transaction's
    /// breakpoint description off `spec` for the steps it actually
    /// performed.
    pub fn from_execution(
        exec: &Execution,
        nest: &Nest,
        spec: &dyn BreakpointSpecification,
    ) -> Result<Self, HistoryError> {
        let k = nest.k();
        let mut marks = vec![Vec::new(); nest.txn_count()];
        for t in exec.txns() {
            let steps: Vec<Step> = exec.txn_steps(t).iter().map(|&i| exec.steps()[i]).collect();
            let bd = spec.describe(t, &steps);
            assert_eq!(bd.k(), k, "spec depth must match nest depth");
            marks[t.index()] = (2..k).map(|lvl| bd.boundaries(lvl)).collect();
        }
        History::new(nest.clone(), marks, Vec::new(), exec.clone())
    }

    /// The nest.
    pub fn nest(&self) -> &Nest {
        &self.nest
    }

    /// The recorded execution.
    pub fn exec(&self) -> &Execution {
        &self.exec
    }

    /// A transaction's mid-level marks (`k - 2` ascending position
    /// lists; level `j + 2` at index `j`).
    pub fn marks(&self, t: TxnId) -> &[Vec<usize>] {
        &self.marks[t.index()]
    }

    /// Entities declared but never touched.
    pub fn extra_entities(&self) -> &[EntityId] {
        &self.extra_entities
    }
}

impl BreakpointSpecification for History {
    fn k(&self) -> usize {
        self.nest.k()
    }

    /// Describes `steps.len()` steps of `t` from the recorded marks.
    /// Positions past the prefix are dropped, so the same history
    /// record soundly describes any step *prefix* — which is exactly
    /// what the weak-mode search and cluster projections ask about.
    fn describe(&self, t: TxnId, steps: &[Step]) -> BreakpointDescription {
        let k = self.nest.k();
        let n = steps.len();
        let mids: Vec<Vec<usize>> = match self.marks.get(t.index()) {
            Some(levels) => levels
                .iter()
                .map(|l| l.iter().copied().filter(|&p| p < n).collect())
                .collect(),
            None => vec![Vec::new(); k - 2],
        };
        BreakpointDescription::from_mid_levels(k, n, &mids)
            .expect("restricting validated marks preserves well-formedness")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::spec::AtomicSpec;

    fn step(t: u32, seq: u32, e: u32) -> Step {
        Step {
            txn: TxnId(t),
            seq,
            entity: EntityId(e),
            observed: 0,
            wrote: 0,
        }
    }

    #[test]
    fn canonicalizes_marks_and_entities() {
        let exec = Execution::new(vec![step(0, 0, 3), step(0, 1, 3), step(0, 2, 4)]).unwrap();
        let h = History::new(
            Nest::new(3, vec![vec![0]]).unwrap(),
            vec![vec![vec![2, 1, 2]]],
            vec![EntityId(3), EntityId(9), EntityId(9)],
            exec,
        )
        .unwrap();
        assert_eq!(h.marks(TxnId(0)), &[vec![1, 2]]);
        assert_eq!(h.extra_entities(), &[EntityId(9)]);
    }

    #[test]
    fn rejects_marks_out_of_range() {
        let exec = Execution::new(vec![step(0, 0, 0), step(0, 1, 0)]).unwrap();
        let err = History::new(
            Nest::new(3, vec![vec![0]]).unwrap(),
            vec![vec![vec![2]]],
            vec![],
            exec,
        )
        .unwrap_err();
        assert!(matches!(err, HistoryError::BadMarks { .. }));
    }

    #[test]
    fn describe_restricts_to_prefixes() {
        let exec = Execution::new((0..4).map(|s| step(0, s, 0)).collect()).unwrap();
        let h = History::new(
            Nest::new(3, vec![vec![0]]).unwrap(),
            vec![vec![vec![1, 3]]],
            vec![],
            exec,
        )
        .unwrap();
        let steps: Vec<Step> = (0..2).map(|s| step(0, s, 0)).collect();
        let bd = h.describe(TxnId(0), &steps);
        assert_eq!(bd.boundaries(2), vec![1]);
        assert_eq!(bd.step_count(), 2);
    }

    #[test]
    fn from_execution_round_trips_the_spec() {
        let exec = Execution::new(vec![
            step(0, 0, 0),
            step(1, 0, 1),
            step(0, 1, 1),
            step(1, 1, 0),
        ])
        .unwrap();
        let nest = Nest::flat(2);
        let h = History::from_execution(&exec, &nest, &AtomicSpec { k: 2 }).unwrap();
        assert_eq!(h.exec(), &exec);
        assert_eq!(h.marks(TxnId(0)), &[] as &[Vec<usize>]);
    }
}
