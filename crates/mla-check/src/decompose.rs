//! Communication-graph decomposition.
//!
//! Two transactions constrain each other in the coherent closure only
//! through chains of shared entities: every generator of `<=_e` is
//! either a program-order edge (within one transaction) or an
//! entity-access edge (between steps on one entity), and condition-(b)
//! lifts only ever connect steps already related. So the *communication
//! graph* — transactions as nodes, an edge when two transactions touch
//! a common entity — splits the history into connected components that
//! can be checked independently: each entity's whole access sequence
//! lives inside exactly one component, hence the closure of the full
//! history is the disjoint union of the component closures, and
//! concatenating per-component witnesses yields a witness for the whole
//! history (transactions of different components never interleave in
//! it, which every breakpoint description permits).

use std::collections::HashMap;

use mla_model::{EntityId, Execution, TxnId};

/// The connected components of a history's communication graph, in
/// order of first step appearance.
#[derive(Clone, Debug)]
pub struct Clusters {
    /// Member transactions per cluster, in order of first appearance.
    pub members: Vec<Vec<TxnId>>,
    /// Original step indices per cluster, ascending.
    pub step_indices: Vec<Vec<usize>>,
}

impl Clusters {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the history had no steps at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Computes the communication-graph components of `exec`. Transactions
/// with no steps do not appear.
pub fn communication_clusters(exec: &Execution) -> Clusters {
    // Local ids for the transactions present, in first-appearance order.
    let mut local: HashMap<TxnId, usize> = HashMap::new();
    let mut txns: Vec<TxnId> = Vec::new();
    for s in exec.steps() {
        local.entry(s.txn).or_insert_with(|| {
            txns.push(s.txn);
            txns.len() - 1
        });
    }
    let mut uf = UnionFind::new(txns.len());
    let mut entity_owner: HashMap<EntityId, usize> = HashMap::new();
    for s in exec.steps() {
        let lt = local[&s.txn];
        match entity_owner.get(&s.entity) {
            Some(&owner) => uf.union(owner, lt),
            None => {
                entity_owner.insert(s.entity, lt);
            }
        }
    }
    // Clusters keyed by root, ordered by the root class's first step.
    let mut cluster_of_root: HashMap<usize, usize> = HashMap::new();
    let mut members: Vec<Vec<TxnId>> = Vec::new();
    let mut step_indices: Vec<Vec<usize>> = Vec::new();
    let mut seen_txn: Vec<bool> = vec![false; txns.len()];
    for (i, s) in exec.steps().iter().enumerate() {
        let lt = local[&s.txn];
        let root = uf.find(lt);
        let c = *cluster_of_root.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            step_indices.push(Vec::new());
            members.len() - 1
        });
        if !seen_txn[lt] {
            seen_txn[lt] = true;
            members[c].push(s.txn);
        }
        step_indices[c].push(i);
    }
    Clusters {
        members,
        step_indices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::Step;

    fn step(t: u32, seq: u32, e: u32) -> Step {
        Step {
            txn: TxnId(t),
            seq,
            entity: EntityId(e),
            observed: 0,
            wrote: 0,
        }
    }

    #[test]
    fn splits_disjoint_entity_sets() {
        // t0,t2 share x0; t1 alone on x1; t3 bridges x1 and x2 with t4.
        let exec = Execution::new(vec![
            step(0, 0, 0),
            step(1, 0, 1),
            step(2, 0, 0),
            step(3, 0, 1),
            step(3, 1, 2),
            step(4, 0, 2),
        ])
        .unwrap();
        let c = communication_clusters(&exec);
        assert_eq!(c.len(), 2);
        assert_eq!(c.members[0], vec![TxnId(0), TxnId(2)]);
        assert_eq!(c.members[1], vec![TxnId(1), TxnId(3), TxnId(4)]);
        assert_eq!(c.step_indices[0], vec![0, 2]);
        assert_eq!(c.step_indices[1], vec![1, 3, 4, 5]);
    }

    #[test]
    fn empty_execution_has_no_clusters() {
        assert!(communication_clusters(&Execution::empty()).is_empty());
    }
}
