//! The `mla-history v1` text format.
//!
//! Line-oriented, `#` comments, blank lines ignored:
//!
//! ```text
//! mla-history v1
//! nest k 3                     # nest depth (k >= 2)
//! txn t0 path 0                # one per transaction, dense ids, k-2 path classes
//! txn t1 path 1
//! break t0 2 1 3               # level-2 breakpoints of t0 after steps 1 and 3
//! entity x9                    # declared entity no step touches (optional)
//! step t0 0 x4 0 5             # txn, seq, entity, observed, wrote — in recorded order
//! step t1 0 x4 5 5
//! ```
//!
//! The writer emits the canonical form — transactions in id order,
//! `break` lines only for non-empty levels, `entity` lines only for
//! declared-but-unused entities, steps in execution order — and the
//! parser canonicalizes on construction, so `parse(write(h)) == h`
//! structurally (pinned by proptest in `tests/format_roundtrip.rs`).

use mla_core::nest::Nest;
use mla_model::{EntityId, Execution, Step, TxnId};

use crate::history::History;

/// The header every history file starts with.
pub const HEADER: &str = "mla-history v1";

/// A parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line of the offending input (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for FormatError {}

/// Renders a history in canonical `mla-history v1` form.
pub fn write(h: &History) -> String {
    let nest = h.nest();
    let k = nest.k();
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("nest k {k}\n"));
    for t in 0..nest.txn_count() {
        let txn = TxnId(t as u32);
        if k == 2 {
            out.push_str(&format!("txn t{t}\n"));
        } else {
            let path: Vec<String> = nest.path(txn).iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("txn t{t} path {}\n", path.join(" ")));
        }
    }
    for t in 0..nest.txn_count() {
        for (j, level) in h.marks(TxnId(t as u32)).iter().enumerate() {
            if level.is_empty() {
                continue;
            }
            let pos: Vec<String> = level.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!("break t{t} {} {}\n", j + 2, pos.join(" ")));
        }
    }
    for e in h.extra_entities() {
        out.push_str(&format!("entity x{}\n", e.0));
    }
    for s in h.exec().steps() {
        out.push_str(&format!(
            "step t{} {} x{} {} {}\n",
            s.txn.0, s.seq, s.entity.0, s.observed, s.wrote
        ));
    }
    out
}

fn err(line: usize, msg: impl Into<String>) -> FormatError {
    FormatError {
        line,
        msg: msg.into(),
    }
}

fn ident(tok: &str, prefix: char, line: usize) -> Result<u32, FormatError> {
    tok.strip_prefix(prefix)
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| err(line, format!("expected {prefix}<id>, got `{tok}`")))
}

fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str, line: usize) -> Result<T, FormatError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| err(line, format!("expected {what}")))
}

/// Parses `mla-history v1` text into a canonical [`History`].
pub fn parse(src: &str) -> Result<History, FormatError> {
    let mut lines = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    match lines.next() {
        Some((_, l)) if l == HEADER => {}
        Some((n, l)) => return Err(err(n, format!("expected `{HEADER}`, got `{l}`"))),
        None => return Err(err(0, format!("empty input, expected `{HEADER}`"))),
    }

    let mut k: Option<usize> = None;
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut marks: Vec<Vec<Vec<usize>>> = Vec::new();
    let mut extra: Vec<EntityId> = Vec::new();
    let mut steps: Vec<Step> = Vec::new();

    for (n, line) in lines {
        let mut tok = line.split_whitespace();
        let key = tok.next().expect("non-empty line has a first token");
        match key {
            "nest" => {
                if k.is_some() {
                    return Err(err(n, "duplicate nest line"));
                }
                if tok.next() != Some("k") {
                    return Err(err(n, "expected `nest k <depth>`"));
                }
                let depth: usize = num(tok.next(), "nest depth", n)?;
                if depth < 2 {
                    return Err(err(n, format!("nest depth {depth} < 2")));
                }
                k = Some(depth);
            }
            "txn" => {
                let k = k.ok_or_else(|| err(n, "txn before nest line"))?;
                let t = ident(tok.next().unwrap_or(""), 't', n)? as usize;
                if t != paths.len() {
                    return Err(err(
                        n,
                        format!(
                            "transactions must be declared densely: got t{t}, expected t{}",
                            paths.len()
                        ),
                    ));
                }
                let mut path = Vec::new();
                match tok.next() {
                    None => {}
                    Some("path") => {
                        for p in tok.by_ref() {
                            path.push(num(Some(p), "path class", n)?);
                        }
                    }
                    Some(other) => return Err(err(n, format!("expected `path`, got `{other}`"))),
                }
                if path.len() != k - 2 {
                    return Err(err(
                        n,
                        format!(
                            "t{t} path has {} classes, nest k {k} needs {}",
                            path.len(),
                            k - 2
                        ),
                    ));
                }
                paths.push(path);
            }
            "break" => {
                let k = k.ok_or_else(|| err(n, "break before nest line"))?;
                let t = ident(tok.next().unwrap_or(""), 't', n)? as usize;
                if t >= paths.len() {
                    return Err(err(n, format!("break for undeclared t{t}")));
                }
                let level: usize = num(tok.next(), "break level", n)?;
                if !(2..k).contains(&level) {
                    return Err(err(n, format!("break level {level} outside 2..={}", k - 1)));
                }
                if marks.len() < paths.len() {
                    marks.resize(paths.len(), Vec::new());
                }
                if marks[t].is_empty() {
                    marks[t] = vec![Vec::new(); k - 2];
                }
                let mut any = false;
                for p in tok {
                    marks[t][level - 2].push(num(Some(p), "break position", n)?);
                    any = true;
                }
                if !any {
                    return Err(err(n, "break line lists no positions"));
                }
            }
            "entity" => {
                let e = ident(tok.next().unwrap_or(""), 'x', n)?;
                extra.push(EntityId(e));
            }
            "step" => {
                if k.is_none() {
                    return Err(err(n, "step before nest line"));
                }
                let t = ident(tok.next().unwrap_or(""), 't', n)?;
                if t as usize >= paths.len() {
                    return Err(err(n, format!("step for undeclared t{t}")));
                }
                let seq: u32 = num(tok.next(), "step seq", n)?;
                let e = ident(tok.next().unwrap_or(""), 'x', n)?;
                let observed: i64 = num(tok.next(), "observed value", n)?;
                let wrote: i64 = num(tok.next(), "wrote value", n)?;
                steps.push(Step {
                    txn: TxnId(t),
                    seq,
                    entity: EntityId(e),
                    observed,
                    wrote,
                });
            }
            other => return Err(err(n, format!("unknown directive `{other}`"))),
        }
        if let Some(extra_tok) = line.split_whitespace().nth(match key {
            // Directives with fixed arity; variable-arity ones
            // consumed their tail above.
            "nest" => 3,
            "entity" => 2,
            "step" => 6,
            _ => continue,
        }) {
            return Err(err(n, format!("trailing `{extra_tok}`")));
        }
    }

    let k = k.ok_or_else(|| err(0, "missing nest line"))?;
    let nest = Nest::new(k, paths).map_err(|e| err(0, e.to_string()))?;
    let exec = Execution::new(steps).map_err(|e| err(0, e.to_string()))?;
    History::new(nest, marks, extra, exec).map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_doc_example() {
        let src = "\
mla-history v1
nest k 3
txn t0 path 0
txn t1 path 1
break t0 2 1   # after step 1
entity x9
step t0 0 x4 0 5
step t0 1 x4 5 6
step t1 0 x4 6 6
";
        let h = parse(src).unwrap();
        assert_eq!(h.nest().k(), 3);
        assert_eq!(h.nest().txn_count(), 2);
        assert_eq!(h.marks(TxnId(0)), &[vec![1]]);
        assert_eq!(h.extra_entities(), &[EntityId(9)]);
        assert_eq!(h.exec().len(), 3);
        assert_eq!(parse(&write(&h)).unwrap(), h);
    }

    #[test]
    fn empty_nest_round_trips() {
        let h = History::new(
            Nest::new(2, vec![]).unwrap(),
            vec![],
            vec![],
            Execution::empty(),
        )
        .unwrap();
        let text = write(&h);
        assert_eq!(parse(&text).unwrap(), h);
    }

    #[test]
    fn rejects_sparse_txn_ids() {
        let src = "mla-history v1\nnest k 2\ntxn t1\n";
        assert!(parse(src).unwrap_err().msg.contains("densely"));
    }

    #[test]
    fn rejects_bad_header_and_reports_lines() {
        let e = parse("mla-history v2\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("mla-history v1\nnest k 2\nwat\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_discontiguous_seq() {
        let src = "mla-history v1\nnest k 2\ntxn t0\nstep t0 1 x0 0 0\n";
        assert!(parse(src).is_err());
    }
}
