//! Seeded random history generation and the differential mutation
//! operators — the `testgen` analogue.
//!
//! [`generate`] draws a random nest, breakpoint marks (refining by
//! construction: each mid level is a subset of the one above), entity
//! scripts, and a random value-consistent interleaving, so the
//! resulting [`History`] is exactly what a black-box system under test
//! would log. Verdicts are *not* biased: the draw produces both
//! correctable and non-correctable histories, which is what the
//! differential suite wants.
//!
//! [`mutate`] applies one of the three corruption operators the
//! differential suite cross-checks against the Theorem 2 oracle:
//!
//! * [`Mutation::SwapAdjacent`] — swap two adjacent steps of different
//!   transactions (biased toward same-entity pairs, which flip a
//!   dependency edge);
//! * [`Mutation::DropBreakpoint`] — remove one breakpoint position from
//!   every mid level of one transaction (strictly stricter, so a
//!   correctable history can become non-correctable but never the
//!   reverse);
//! * [`Mutation::ReadFromRewrite`] — move one step to a different legal
//!   slot so it reads from a different predecessor on its entity
//!   (program order preserved, per-entity access order changed).

use rand::rngs::SmallRng;
use rand::Rng;

use mla_core::nest::Nest;
use mla_model::{EntityId, Execution, Step, TxnId, Value};

use crate::history::History;

/// Generator dimensions. All draws come from the caller's RNG, so one
/// seed pins the whole corpus.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Transactions in the nest.
    pub txns: usize,
    /// Entity pool size.
    pub entities: usize,
    /// Nest depth (`>= 2`).
    pub k: usize,
    /// Minimum steps per transaction.
    pub min_len: usize,
    /// Maximum steps per transaction.
    pub max_len: usize,
    /// Percent chance each eligible position carries a top-mid-level
    /// breakpoint.
    pub break_pct: u32,
    /// Percent chance a step writes back the value it observed
    /// (duplicate values are what make weak-mode search branch).
    pub dup_pct: u32,
    /// Percent chance the history declares an entity no step touches.
    pub extra_entity_pct: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            txns: 4,
            entities: 3,
            k: 3,
            min_len: 1,
            max_len: 4,
            break_pct: 40,
            dup_pct: 25,
            extra_entity_pct: 20,
        }
    }
}

fn pct(rng: &mut SmallRng, p: u32) -> bool {
    rng.gen_range(0..100u32) < p
}

/// Draws one random history.
pub fn generate(cfg: &GenConfig, rng: &mut SmallRng) -> History {
    assert!(cfg.k >= 2, "nest depth must be at least 2");
    assert!(
        cfg.min_len >= 1 && cfg.min_len <= cfg.max_len,
        "step-count bounds must satisfy 1 <= min <= max"
    );
    let paths: Vec<Vec<u32>> = (0..cfg.txns)
        .map(|_| (0..cfg.k - 2).map(|_| rng.gen_range(0..2u32)).collect())
        .collect();
    let nest = Nest::new(cfg.k, paths).expect("generated paths match the depth");

    let programs: Vec<Vec<EntityId>> = (0..cfg.txns)
        .map(|_| {
            let len = rng.gen_range(cfg.min_len..=cfg.max_len);
            (0..len)
                .map(|_| EntityId(rng.gen_range(0..cfg.entities.max(1) as u32)))
                .collect()
        })
        .collect();

    // Mid-level marks, drawn top-down so each level refines the one
    // above: mid[k-3] is level k-1 (the loosest), mid[0] is level 2.
    let mut marks: Vec<Vec<Vec<usize>>> = Vec::with_capacity(cfg.txns);
    for program in &programs {
        let mut levels = vec![Vec::new(); cfg.k - 2];
        if cfg.k > 2 {
            let top: Vec<usize> = (1..program.len())
                .filter(|_| pct(rng, cfg.break_pct))
                .collect();
            levels[cfg.k - 3] = top;
            for j in (0..cfg.k.saturating_sub(3)).rev() {
                levels[j] = levels[j + 1]
                    .iter()
                    .copied()
                    .filter(|_| pct(rng, 50))
                    .collect();
            }
        }
        marks.push(levels);
    }

    // A random interleaving with simulated values: observed is the
    // entity's current value, wrote bumps it (or repeats it, for
    // weak-mode ambiguity).
    let mut store: Vec<Value> = vec![0; cfg.entities.max(1)];
    let mut next = vec![0usize; cfg.txns];
    let mut steps = Vec::new();
    let mut live: Vec<usize> = (0..cfg.txns).filter(|&t| !programs[t].is_empty()).collect();
    while !live.is_empty() {
        let pick = rng.gen_range(0..live.len());
        let t = live[pick];
        let entity = programs[t][next[t]];
        let observed = store[entity.index()];
        let wrote = if pct(rng, cfg.dup_pct) {
            observed
        } else {
            observed + 1
        };
        store[entity.index()] = wrote;
        steps.push(Step {
            txn: TxnId(t as u32),
            seq: next[t] as u32,
            entity,
            observed,
            wrote,
        });
        next[t] += 1;
        if next[t] == programs[t].len() {
            live.swap_remove(pick);
        }
    }

    let extra = if pct(rng, cfg.extra_entity_pct) {
        vec![EntityId(cfg.entities as u32 + rng.gen_range(0..2u32))]
    } else {
        Vec::new()
    };

    let exec = Execution::new(steps).expect("interleaving respects program order");
    History::new(nest, marks, extra, exec).expect("generated marks fit the programs")
}

/// The corruption operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Swap two adjacent steps of different transactions.
    SwapAdjacent,
    /// Remove one breakpoint position from every mid level of one
    /// transaction.
    DropBreakpoint,
    /// Move one step so it reads from a different predecessor on its
    /// entity.
    ReadFromRewrite,
}

impl Mutation {
    /// Short stable name, used in corpus file names.
    pub fn tag(self) -> &'static str {
        match self {
            Mutation::SwapAdjacent => "swap",
            Mutation::DropBreakpoint => "drop",
            Mutation::ReadFromRewrite => "rfw",
        }
    }
}

/// All operators, in a fixed order.
pub const MUTATIONS: [Mutation; 3] = [
    Mutation::SwapAdjacent,
    Mutation::DropBreakpoint,
    Mutation::ReadFromRewrite,
];

fn rebuild(h: &History, steps: Vec<Step>, marks: Vec<Vec<Vec<usize>>>) -> Option<History> {
    History::new(
        h.nest().clone(),
        marks,
        h.extra_entities().to_vec(),
        Execution::new(steps).ok()?,
    )
    .ok()
}

fn all_marks(h: &History) -> Vec<Vec<Vec<usize>>> {
    (0..h.nest().txn_count())
        .map(|t| h.marks(TxnId(t as u32)).to_vec())
        .collect()
}

/// Per-entity access orders, for detecting semantic no-op moves.
fn entity_orders(steps: &[Step]) -> Vec<(EntityId, Vec<(TxnId, u32)>)> {
    let mut orders: Vec<(EntityId, Vec<(TxnId, u32)>)> = Vec::new();
    for s in steps {
        match orders.iter_mut().find(|(e, _)| *e == s.entity) {
            Some((_, v)) => v.push((s.txn, s.seq)),
            None => orders.push((s.entity, vec![(s.txn, s.seq)])),
        }
    }
    orders.sort_by_key(|(e, _)| *e);
    orders
}

/// Applies one mutation, or `None` when the history offers no site for
/// it (no adjacent cross-transaction pair, no breakpoints, no
/// reorderable read).
pub fn mutate(h: &History, m: Mutation, rng: &mut SmallRng) -> Option<History> {
    let steps = h.exec().steps();
    match m {
        Mutation::SwapAdjacent => {
            let cross: Vec<usize> = (0..steps.len().saturating_sub(1))
                .filter(|&i| steps[i].txn != steps[i + 1].txn)
                .collect();
            if cross.is_empty() {
                return None;
            }
            let conflicting: Vec<usize> = cross
                .iter()
                .copied()
                .filter(|&i| steps[i].entity == steps[i + 1].entity)
                .collect();
            let pool = if conflicting.is_empty() {
                &cross
            } else {
                &conflicting
            };
            let i = pool[rng.gen_range(0..pool.len())];
            let mut out = steps.to_vec();
            out.swap(i, i + 1);
            rebuild(h, out, all_marks(h))
        }
        Mutation::DropBreakpoint => {
            let mut sites: Vec<(usize, usize)> = Vec::new();
            for t in 0..h.nest().txn_count() {
                let mut positions: Vec<usize> =
                    h.marks(TxnId(t as u32)).iter().flatten().copied().collect();
                positions.sort_unstable();
                positions.dedup();
                sites.extend(positions.into_iter().map(|p| (t, p)));
            }
            if sites.is_empty() {
                return None;
            }
            let (t, pos) = sites[rng.gen_range(0..sites.len())];
            let mut marks = all_marks(h);
            for level in &mut marks[t] {
                level.retain(|&p| p != pos);
            }
            rebuild(h, steps.to_vec(), marks)
        }
        Mutation::ReadFromRewrite => {
            // Every (remove at i, reinsert at p) move that keeps the
            // execution well-formed and changes some entity's access
            // order — i.e. the moved step reads from someone new.
            let original_orders = entity_orders(steps);
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for i in 0..steps.len() {
                let mut rest = steps.to_vec();
                let s = rest.remove(i);
                for p in 0..=rest.len() {
                    if p == i {
                        continue;
                    }
                    let mut moved = rest.clone();
                    moved.insert(p, s);
                    if Execution::new(moved.clone()).is_ok()
                        && entity_orders(&moved) != original_orders
                    {
                        candidates.push((i, p));
                    }
                }
            }
            if candidates.is_empty() {
                return None;
            }
            let (i, p) = candidates[rng.gen_range(0..candidates.len())];
            let mut out = steps.to_vec();
            let s = out.remove(i);
            out.insert(p, s);
            rebuild(h, out, all_marks(h))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, &mut SmallRng::seed_from_u64(7));
        let b = generate(&cfg, &mut SmallRng::seed_from_u64(7));
        let c = generate(&cfg, &mut SmallRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mutations_produce_wellformed_distinct_histories() {
        let cfg = GenConfig {
            txns: 3,
            break_pct: 80,
            ..GenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut applied = [0usize; 3];
        for _ in 0..40 {
            let h = generate(&cfg, &mut rng);
            for (mi, &m) in MUTATIONS.iter().enumerate() {
                if let Some(mutant) = mutate(&h, m, &mut rng) {
                    assert_ne!(mutant, h, "{m:?} must change the history");
                    applied[mi] += 1;
                }
            }
        }
        for (mi, &m) in MUTATIONS.iter().enumerate() {
            assert!(applied[mi] > 0, "{m:?} never applied across 40 draws");
        }
    }

    #[test]
    fn swap_preserves_program_order() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let h = generate(&cfg, &mut rng);
            if let Some(m) = mutate(&h, Mutation::SwapAdjacent, &mut rng) {
                // Execution::new inside rebuild already validated seq
                // contiguity; spot-check the step multiset survived.
                let mut a: Vec<Step> = h.exec().steps().to_vec();
                let mut b: Vec<Step> = m.exec().steps().to_vec();
                a.sort_by_key(|s| (s.txn, s.seq));
                b.sort_by_key(|s| (s.txn, s.seq));
                assert_eq!(a, b);
            }
        }
    }
}
