//! The polynomial saturation check.
//!
//! Per communication-graph cluster ([`communication_clusters`]), grow
//! the coherent closure of the recorded dependency order to fixpoint
//! (`mla-core`'s [`CoherentClosure`](mla_core::closure::CoherentClosure)
//! frontier saturation — the polynomial side of dbcop's split) and
//! apply Theorem 2: acyclic means correctable, and Lemma 1's
//! constructive extension (`mla-core::extend`) yields the witness — an
//! equivalent multilevel-atomic total order. A cycle means the history
//! violates multilevel atomicity, and the cycle itself, mapped back to
//! the recorded step indices, is the diagnostic.
//!
//! Per-cluster witnesses are concatenated into one global witness:
//! clusters share no entities, so the concatenation is equivalent to
//! the recorded execution, and transactions of different clusters do
//! not interleave in it — an arrangement every breakpoint description
//! permits.

use mla_core::theorem::{decide, Correctability, StepRef};
use mla_model::{Execution, Step, TxnId};

use crate::decompose::communication_clusters;
use crate::history::History;

/// Why a history fails: a coherent-closure cycle, located.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The communication cluster (transactions) containing the cycle.
    pub cluster: Vec<TxnId>,
    /// The cycle: each step is related before the next, the last before
    /// the first. `global` indexes the *recorded* execution.
    pub cycle: Vec<StepRef>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "coherent-closure cycle")?;
        for s in &self.cycle {
            write!(f, " {}#{}(@{})", s.txn, s.seq, s.global)?;
        }
        write!(f, " in cluster {{")?;
        for (i, t) in self.cluster.iter().enumerate() {
            write!(f, "{}{t}", if i == 0 { "" } else { " " })?;
        }
        write!(f, "}}")
    }
}

/// The checker's verdict on one history.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Correctable: `witness` is an equivalent multilevel-atomic
    /// execution, assembled from `clusters` independent components.
    Pass {
        /// Lemma 1's witness total order.
        witness: Execution,
        /// How many communication clusters were checked.
        clusters: usize,
    },
    /// Not correctable.
    Fail {
        /// The located cycle.
        violation: Violation,
    },
}

impl Verdict {
    /// Whether the history passed.
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass { .. })
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self {
            Verdict::Pass { witness, clusters } => format!(
                "pass: witness total order over {} steps ({clusters} cluster{})",
                witness.len(),
                if *clusters == 1 { "" } else { "s" }
            ),
            Verdict::Fail { violation } => format!("FAIL: {violation}"),
        }
    }

    /// Machine-readable rendering (one JSON object, no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Verdict::Pass { witness, clusters } => {
                let order: Vec<String> = witness
                    .steps()
                    .iter()
                    .map(|s| format!("{{\"txn\":{},\"seq\":{}}}", s.txn.0, s.seq))
                    .collect();
                format!(
                    "{{\"verdict\":\"pass\",\"clusters\":{clusters},\"witness\":[{}]}}",
                    order.join(",")
                )
            }
            Verdict::Fail { violation } => {
                let cycle: Vec<String> = violation
                    .cycle
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"txn\":{},\"seq\":{},\"global\":{}}}",
                            s.txn.0, s.seq, s.global
                        )
                    })
                    .collect();
                let cluster: Vec<String> =
                    violation.cluster.iter().map(|t| t.0.to_string()).collect();
                format!(
                    "{{\"verdict\":\"fail\",\"cluster\":[{}],\"cycle\":[{}]}}",
                    cluster.join(","),
                    cycle.join(",")
                )
            }
        }
    }
}

/// Checks a recorded history for multilevel atomicity (Theorem 2),
/// cluster by cluster. Returns the first violating cluster's cycle, or
/// the concatenated witness.
pub fn check(h: &History) -> Verdict {
    let clusters = communication_clusters(h.exec());
    let mut witness_steps: Vec<Step> = Vec::with_capacity(h.exec().len());
    for (members, indices) in clusters.members.iter().zip(&clusters.step_indices) {
        let projected: Vec<Step> = indices.iter().map(|&i| h.exec().steps()[i]).collect();
        let proj = Execution::new(projected)
            .expect("cluster projection keeps whole transactions in order");
        let verdict = decide(&proj, h.nest(), h)
            .expect("History validation guarantees a well-formed context");
        match verdict {
            Correctability::Correctable { witness } => witness_steps.extend(witness.steps()),
            Correctability::NotCorrectable { cycle } => {
                let cycle = cycle
                    .steps
                    .into_iter()
                    .map(|s| StepRef {
                        global: indices[s.global],
                        ..s
                    })
                    .collect();
                return Verdict::Fail {
                    violation: Violation {
                        cluster: members.clone(),
                        cycle,
                    },
                };
            }
        }
    }
    Verdict::Pass {
        witness: Execution::new(witness_steps)
            .expect("concatenating disjoint-transaction witnesses preserves step order"),
        clusters: clusters.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::atomicity::is_multilevel_atomic;
    use mla_core::nest::Nest;
    use mla_model::EntityId;

    fn step(t: u32, seq: u32, e: u32) -> Step {
        Step {
            txn: TxnId(t),
            seq,
            entity: EntityId(e),
            observed: 0,
            wrote: 0,
        }
    }

    fn history(
        k: usize,
        paths: Vec<Vec<u32>>,
        marks: Vec<Vec<Vec<usize>>>,
        steps: Vec<Step>,
    ) -> History {
        History::new(
            Nest::new(k, paths).unwrap(),
            marks,
            vec![],
            Execution::new(steps).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn serial_weave_passes_with_atomic_witness() {
        let h = history(
            2,
            vec![vec![], vec![]],
            vec![],
            vec![step(0, 0, 0), step(1, 0, 0), step(0, 1, 1), step(1, 1, 1)],
        );
        match check(&h) {
            Verdict::Pass { witness, clusters } => {
                assert_eq!(clusters, 1);
                assert!(witness.equivalent(h.exec()));
                assert!(is_multilevel_atomic(&witness, h.nest(), &h).unwrap());
            }
            v => panic!("expected pass, got {}", v.render()),
        }
    }

    #[test]
    fn crossed_weave_fails_with_located_cycle() {
        let h = history(
            2,
            vec![vec![], vec![]],
            vec![],
            vec![step(0, 0, 0), step(1, 0, 0), step(1, 1, 1), step(0, 1, 1)],
        );
        match check(&h) {
            Verdict::Fail { violation } => {
                assert!(violation.cycle.len() >= 2);
                let mut txns: Vec<TxnId> = violation.cycle.iter().map(|s| s.txn).collect();
                txns.sort_unstable();
                txns.dedup();
                assert!(txns.len() >= 2, "a closure cycle spans transactions");
                for s in &violation.cycle {
                    assert_eq!(h.exec().steps()[s.global].txn, s.txn);
                    assert_eq!(h.exec().steps()[s.global].seq, s.seq);
                }
            }
            v => panic!("expected fail, got {}", v.render()),
        }
    }

    #[test]
    fn violation_is_located_in_the_right_cluster() {
        // Cluster {t0,t1} on x0/x1 is clean; cluster {t2,t3} on x2/x3
        // carries the crossed weave. Globals must point at the latter.
        let h = history(
            2,
            vec![vec![]; 4],
            vec![],
            vec![
                step(0, 0, 0),
                step(2, 0, 2),
                step(1, 0, 0),
                step(3, 0, 2),
                step(3, 1, 3),
                step(2, 1, 3),
                step(0, 1, 1),
                step(1, 1, 1),
            ],
        );
        match check(&h) {
            Verdict::Fail { violation } => {
                assert_eq!(violation.cluster, vec![TxnId(2), TxnId(3)]);
                for s in &violation.cycle {
                    assert!(matches!(s.txn, TxnId(2) | TxnId(3)));
                    assert_eq!(h.exec().steps()[s.global].txn, s.txn);
                }
            }
            v => panic!("expected fail, got {}", v.render()),
        }
    }

    #[test]
    fn empty_history_passes() {
        let h = History::new(
            Nest::new(2, vec![]).unwrap(),
            vec![],
            vec![],
            Execution::empty(),
        )
        .unwrap();
        assert!(check(&h).passed());
    }
}
