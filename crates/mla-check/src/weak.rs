//! The constrained-linearization fallback.
//!
//! The saturation pass in [`checker`](crate::checker) trusts the
//! recorded interleaving: the per-entity access sequences *are* the
//! dependency order, and Theorem 2 is graph-polynomial. A black-box
//! checker is not always handed that much — often only the *values*
//! each step observed and wrote are trustworthy, and the recorded order
//! is an artifact of logging. Checking against that
//! weaker-than-recorded dependency information asks: **is there any
//! global ordering, consistent with per-transaction program order and
//! with every observed value, whose coherent closure is acyclic?** That
//! is dbcop's NP-complete side (reads pin writers, but the version
//! order must be *searched*), and this module mirrors its
//! constrained-linearization approach: a budgeted backtracking search
//! over linear extensions of program order, placing a step only when
//! the entity currently holds the value it observed, and pruning any
//! prefix whose coherent closure is already cyclic.
//!
//! The prune is sound: the closure of a prefix (with each
//! transaction's breakpoint marks restricted to the steps in the
//! prefix, which [`History`]'s `describe` does) embeds in the closure
//! of every completion — extending an execution only ever adds related
//! pairs and never removes condition-(b) lift obligations already
//! incurred — so a cyclic prefix cannot complete to an acyclic order.
//!
//! Clusters ([`communication_clusters`]) are searched independently
//! (each with the full node budget): values never cross entities, so a
//! cluster-wise realization concatenates exactly as witnesses do.

use std::collections::HashMap;

use mla_core::theorem::is_correctable;
use mla_model::{EntityId, Execution, Step, TxnId, Value};

use crate::decompose::communication_clusters;
use crate::history::History;

/// The weak-mode verdict.
#[derive(Clone, Debug)]
pub enum WeakVerdict {
    /// Some value-consistent ordering is correctable; here is one.
    Realizable {
        /// A program-order- and value-consistent execution whose
        /// coherent closure is acyclic.
        order: Execution,
    },
    /// No value-consistent ordering is correctable.
    Unrealizable,
    /// The search hit the node budget before deciding.
    BudgetExhausted,
}

impl WeakVerdict {
    /// Whether a realization was found.
    pub fn realizable(&self) -> bool {
        matches!(self, WeakVerdict::Realizable { .. })
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self {
            WeakVerdict::Realizable { order } => {
                format!("pass (weak): realizable in {} steps", order.len())
            }
            WeakVerdict::Unrealizable => {
                "FAIL (weak): no value-consistent ordering is correctable".to_string()
            }
            WeakVerdict::BudgetExhausted => "UNDECIDED (weak): node budget exhausted".to_string(),
        }
    }
}

enum SearchOutcome {
    Found(Vec<Step>),
    NotFound,
    Exhausted,
}

struct Search<'a> {
    h: &'a History,
    /// Steps of each cluster transaction, in program order.
    programs: Vec<Vec<Step>>,
    initial: &'a HashMap<EntityId, Value>,
    nodes: usize,
    budget: usize,
}

impl Search<'_> {
    fn run(&mut self) -> SearchOutcome {
        let total: usize = self.programs.iter().map(Vec::len).sum();
        let mut next = vec![0usize; self.programs.len()];
        let mut placed: Vec<Step> = Vec::with_capacity(total);
        let mut store: HashMap<EntityId, Value> = HashMap::new();
        self.dfs(total, &mut next, &mut placed, &mut store)
    }

    fn dfs(
        &mut self,
        total: usize,
        next: &mut Vec<usize>,
        placed: &mut Vec<Step>,
        store: &mut HashMap<EntityId, Value>,
    ) -> SearchOutcome {
        if placed.len() == total {
            return SearchOutcome::Found(placed.clone());
        }
        for i in 0..self.programs.len() {
            let seq = next[i];
            if seq >= self.programs[i].len() {
                continue;
            }
            let s = self.programs[i][seq];
            let cur = store
                .get(&s.entity)
                .or_else(|| self.initial.get(&s.entity))
                .copied()
                .unwrap_or_default();
            if cur != s.observed {
                continue;
            }
            self.nodes += 1;
            if self.nodes > self.budget {
                return SearchOutcome::Exhausted;
            }
            let prev = store.insert(s.entity, s.wrote);
            next[i] += 1;
            placed.push(s);
            if self.prefix_acyclic(placed) {
                match self.dfs(total, next, placed, store) {
                    SearchOutcome::NotFound => {}
                    found_or_exhausted => return found_or_exhausted,
                }
            }
            placed.pop();
            next[i] -= 1;
            match prev {
                Some(v) => {
                    store.insert(s.entity, v);
                }
                None => {
                    store.remove(&s.entity);
                }
            }
        }
        SearchOutcome::NotFound
    }

    fn prefix_acyclic(&self, placed: &[Step]) -> bool {
        let exec =
            Execution::new(placed.to_vec()).expect("placements respect per-transaction step order");
        is_correctable(&exec, self.h.nest(), self.h)
            .expect("History validation guarantees a well-formed context")
    }
}

/// Initial value of every entity, as the recorded history implies it:
/// what the first recorded access observed.
fn initial_values(exec: &Execution) -> HashMap<EntityId, Value> {
    let mut initial = HashMap::new();
    for s in exec.steps() {
        initial.entry(s.entity).or_insert(s.observed);
    }
    initial
}

/// Decides whether *some* program-order- and value-consistent ordering
/// of the recorded steps is correctable, searching each communication
/// cluster independently with `budget` backtracking nodes.
pub fn check_weak(h: &History, budget: usize) -> WeakVerdict {
    let initial = initial_values(h.exec());
    let clusters = communication_clusters(h.exec());
    let mut realized: Vec<Step> = Vec::with_capacity(h.exec().len());
    let mut exhausted = false;
    for (members, indices) in clusters.members.iter().zip(&clusters.step_indices) {
        let mut by_txn: HashMap<TxnId, usize> = HashMap::new();
        let mut programs: Vec<Vec<Step>> = Vec::with_capacity(members.len());
        for (li, &t) in members.iter().enumerate() {
            by_txn.insert(t, li);
            programs.push(Vec::new());
        }
        for &i in indices {
            let s = h.exec().steps()[i];
            programs[by_txn[&s.txn]].push(s);
        }
        let mut search = Search {
            h,
            programs,
            initial: &initial,
            nodes: 0,
            budget,
        };
        match search.run() {
            SearchOutcome::Found(order) => realized.extend(order),
            SearchOutcome::NotFound => return WeakVerdict::Unrealizable,
            SearchOutcome::Exhausted => exhausted = true,
        }
    }
    if exhausted {
        WeakVerdict::BudgetExhausted
    } else {
        WeakVerdict::Realizable {
            order: Execution::new(realized)
                .expect("cluster realizations concatenate in program order"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use mla_core::nest::Nest;

    fn step(t: u32, seq: u32, e: u32, observed: Value, wrote: Value) -> Step {
        Step {
            txn: TxnId(t),
            seq,
            entity: EntityId(e),
            observed,
            wrote,
        }
    }

    fn history(steps: Vec<Step>, txns: usize) -> History {
        History::new(
            Nest::new(2, vec![vec![]; txns]).unwrap(),
            vec![],
            vec![],
            Execution::new(steps).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn recorded_correctable_history_is_realizable() {
        let h = history(
            vec![
                step(0, 0, 0, 0, 1),
                step(1, 0, 0, 1, 2),
                step(0, 1, 1, 0, 1),
                step(1, 1, 1, 1, 2),
            ],
            2,
        );
        assert!(check(&h).passed());
        match check_weak(&h, 10_000) {
            WeakVerdict::Realizable { order } => {
                let back = History::new(h.nest().clone(), vec![], vec![], order).unwrap();
                assert!(check(&back).passed());
            }
            v => panic!("expected realizable, got {}", v.render()),
        }
    }

    #[test]
    fn value_pinned_cycle_is_unrealizable() {
        // Values force t0 < t1 on x0 and t1 < t0 on x1: no consistent
        // ordering is acyclic, whatever the interleaving.
        let h = history(
            vec![
                step(0, 0, 0, 0, 1),
                step(1, 0, 0, 1, 2),
                step(1, 1, 1, 0, 1),
                step(0, 1, 1, 1, 2),
            ],
            2,
        );
        assert!(!check(&h).passed());
        assert!(matches!(check_weak(&h, 10_000), WeakVerdict::Unrealizable));
    }

    #[test]
    fn duplicate_values_admit_a_reordering_the_record_lacks() {
        // The recorded interleaving is the crossed (non-correctable)
        // weave, but every step observes and writes 0, so the serial
        // order is value-consistent: weak mode realizes what the
        // strong check rightly rejects.
        let h = history(
            vec![
                step(0, 0, 0, 0, 0),
                step(1, 0, 0, 0, 0),
                step(1, 1, 1, 0, 0),
                step(0, 1, 1, 0, 0),
            ],
            2,
        );
        assert!(!check(&h).passed());
        assert!(check_weak(&h, 10_000).realizable());
    }

    #[test]
    fn zero_budget_reports_exhaustion() {
        let h = history(vec![step(0, 0, 0, 0, 1)], 1);
        assert!(matches!(check_weak(&h, 0), WeakVerdict::BudgetExhausted));
    }

    #[test]
    fn empty_history_is_trivially_realizable() {
        let h = History::new(
            Nest::new(2, vec![]).unwrap(),
            vec![],
            vec![],
            Execution::empty(),
        )
        .unwrap();
        assert!(check_weak(&h, 0).realizable());
    }
}
