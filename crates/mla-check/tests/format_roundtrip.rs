//! Round-trip pin for the `mla-history v1` text format:
//! `parse(write(h)) == h` over generator-produced histories — random
//! depths, single-step transactions, duplicate values, declared-unused
//! entities — plus the degenerate shapes the generator cannot reach
//! (empty nest, transactionless entities-only files) and every mutant
//! the differential suite feeds the parser.

use mla_check::{format_history, generate, mutate, parse, GenConfig, History, MUTATIONS};
use mla_core::nest::Nest;
use mla_model::{EntityId, Execution};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_config(rng: &mut SmallRng) -> GenConfig {
    GenConfig {
        txns: rng.gen_range(0..=6usize),
        entities: rng.gen_range(1..=4usize),
        k: rng.gen_range(2..=4usize),
        min_len: 1,
        max_len: rng.gen_range(1..=5usize),
        break_pct: rng.gen_range(0..=100u32),
        dup_pct: rng.gen_range(0..=100u32),
        extra_entity_pct: 50,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parse_inverts_write(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = random_config(&mut rng);
        let h = generate(&cfg, &mut rng);
        let text = format_history(&h);
        let back = parse(&text).expect("writer output must parse");
        prop_assert_eq!(&back, &h);
        // Idempotence: the canonical form is a fixpoint.
        prop_assert_eq!(format_history(&back), text);
    }

    #[test]
    fn mutants_round_trip_too(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let cfg = GenConfig { break_pct: 70, ..GenConfig::default() };
        let h = generate(&cfg, &mut rng);
        for m in MUTATIONS {
            if let Some(mutant) = mutate(&h, m, &mut rng) {
                let back = parse(&format_history(&mutant)).expect("mutant must parse");
                prop_assert_eq!(back, mutant);
            }
        }
    }
}

#[test]
fn empty_nest_round_trips() {
    for k in 2..=4 {
        let h = History::new(
            Nest::new(k, vec![]).unwrap(),
            vec![],
            vec![],
            Execution::empty(),
        )
        .unwrap();
        assert_eq!(parse(&format_history(&h)).unwrap(), h);
    }
}

#[test]
fn transactionless_declared_entities_round_trip() {
    let h = History::new(
        Nest::new(3, vec![]).unwrap(),
        vec![],
        vec![EntityId(4), EntityId(0)],
        Execution::empty(),
    )
    .unwrap();
    assert_eq!(h.extra_entities(), &[EntityId(0), EntityId(4)]);
    assert_eq!(parse(&format_history(&h)).unwrap(), h);
}

#[test]
fn single_step_transactions_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xA11);
    let cfg = GenConfig {
        txns: 5,
        min_len: 1,
        max_len: 1,
        ..GenConfig::default()
    };
    for _ in 0..8 {
        let h = generate(&cfg, &mut rng);
        assert_eq!(parse(&format_history(&h)).unwrap(), h);
    }
}
