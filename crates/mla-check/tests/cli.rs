//! Black-box pins for the `mla-check` binary.
//!
//! * **Corpus determinism.** `gen --seed N` is a reproducibility
//!   contract: two runs with the same seed must produce byte-identical
//!   corpora (same file names, same bucket split, same bytes), so a
//!   corpus can be regenerated from its seed instead of checked in.
//! * **Diagnostic snapshot.** `check --json` output is machine-read by
//!   CI tooling; the object shape — field names, verdict strings, the
//!   witness/cycle step encoding — and the human rendering's
//!   `t<txn>#<seq>(@<global>)` cycle naming are pinned exactly, so any
//!   drift is a deliberate format bump, not an accident.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mla-check"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mla-check-cli-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(args: &[&str], cwd: &Path) -> Output {
    bin()
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("mla-check runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// Every `.hist` file under `dir`, keyed by path relative to it.
fn corpus_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for bucket in ["valid", "invalid"] {
        let sub = dir.join(bucket);
        if !sub.is_dir() {
            continue;
        }
        let mut entries: Vec<_> = std::fs::read_dir(&sub)
            .expect("read bucket dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for path in entries {
            assert_eq!(
                path.extension().and_then(|e| e.to_str()),
                Some("hist"),
                "unexpected corpus file {}",
                path.display()
            );
            let rel = format!(
                "{bucket}/{}",
                path.file_name().expect("file name").to_string_lossy()
            );
            files.insert(rel, std::fs::read(&path).expect("read corpus file"));
        }
    }
    files
}

#[test]
fn gen_corpus_is_byte_identical_across_reruns() {
    let root = scratch("gen-determinism");
    let args = |out: &str| {
        vec![
            "gen".to_string(),
            "--out".to_string(),
            out.to_string(),
            "--seed".to_string(),
            "42".to_string(),
            "--count".to_string(),
            "12".to_string(),
            "--mutate".to_string(),
        ]
    };
    for out in ["a", "b"] {
        let argv = args(out);
        let argv: Vec<&str> = argv.iter().map(|s| s.as_str()).collect();
        let run = run(&argv, &root);
        assert!(run.status.success(), "gen failed: {run:?}");
        // The summary line is part of the contract (counts are seed-
        // determined); only the directory differs.
        assert_eq!(
            stdout(&run),
            format!("wrote 5 valid + 42 invalid histories under {out}\n")
        );
    }

    let a = corpus_files(&root.join("a"));
    let b = corpus_files(&root.join("b"));
    assert!(!a.is_empty(), "corpus came out empty");
    assert!(
        a.keys().any(|p| p.starts_with("valid/")) && a.keys().any(|p| p.starts_with("invalid/")),
        "seed 42 must populate both buckets"
    );
    assert!(
        a.keys().any(|p| p.contains('-')),
        "--mutate must emit tagged mutant files"
    );
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "rerun changed the corpus file set"
    );
    for (path, bytes) in &a {
        assert_eq!(bytes, &b[path], "rerun changed the bytes of {path}");
    }

    // A different seed must actually move the corpus — otherwise the
    // comparison above is vacuous.
    let argv = [
        "gen", "--out", "c", "--seed", "43", "--count", "12", "--mutate",
    ];
    assert!(run(&argv, &root).status.success());
    let c = corpus_files(&root.join("c"));
    assert!(
        a.keys().collect::<Vec<_>>() != c.keys().collect::<Vec<_>>()
            || a.iter().any(|(p, bytes)| bytes != &c[p]),
        "seed 43 reproduced the seed-42 corpus"
    );

    std::fs::remove_dir_all(&root).expect("clean scratch dir");
}

const PASS_HIST: &str = "\
mla-history v1
nest k 2
txn t0
txn t1
step t0 0 x0 0 1
step t0 1 x0 1 2
step t1 0 x0 2 3
";

/// Two atomic (k=2) transactions weaving on one entity: the coherent
/// closure forces t0 < t1 (t1's first read) and t1 < t0 (t0's second),
/// a cycle.
const FAIL_HIST: &str = "\
mla-history v1
nest k 2
txn t0
txn t1
step t0 0 x0 0 1
step t1 0 x0 1 2
step t0 1 x0 2 3
step t1 1 x0 3 4
";

#[test]
fn check_json_diagnostics_match_the_snapshot() {
    let root = scratch("json-snapshot");
    std::fs::write(root.join("pass.hist"), PASS_HIST).expect("write fixture");
    std::fs::write(root.join("fail.hist"), FAIL_HIST).expect("write fixture");

    // Strong pass: file/mode/report envelope, pass verdict, witness as
    // {"txn","seq"} pairs. The serial history admits exactly one
    // equivalent order, so the witness is pinned too.
    let out = run(&["check", "--json", "pass.hist"], &root);
    assert!(out.status.success(), "pass fixture rejected: {out:?}");
    assert_eq!(
        stdout(&out),
        "[{\"file\":\"pass.hist\",\"mode\":\"strong\",\"report\":{\
         \"verdict\":\"pass\",\"clusters\":1,\"witness\":[\
         {\"txn\":0,\"seq\":0},{\"txn\":0,\"seq\":1},{\"txn\":1,\"seq\":0}]}}]\n"
    );

    // Strong fail: fail verdict, offending cluster, cycle steps as
    // {"txn","seq","global"} with global indexing the recorded
    // execution.
    let out = run(&["check", "--json", "--expect", "fail", "fail.hist"], &root);
    assert!(out.status.success(), "--expect fail not honored: {out:?}");
    assert_eq!(
        stdout(&out),
        "[{\"file\":\"fail.hist\",\"mode\":\"strong\",\"report\":{\
         \"verdict\":\"fail\",\"cluster\":[0,1],\"cycle\":[\
         {\"txn\":1,\"seq\":1,\"global\":3},{\"txn\":0,\"seq\":1,\"global\":2}]}}]\n"
    );

    // Weak mode keeps its distinct envelope.
    let out = run(&["check", "--json", "--weak", "pass.hist"], &root);
    assert!(out.status.success());
    assert_eq!(
        stdout(&out),
        "[{\"file\":\"pass.hist\",\"mode\":\"weak\",\"verdict\":\"pass\"}]\n"
    );

    // Human rendering: the cycle is named t<txn>#<seq>(@<global>) and
    // the overall run exits 1 when a file misses its expectation.
    let out = run(&["check", "pass.hist", "fail.hist"], &root);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stdout(&out),
        "pass.hist: pass: witness total order over 3 steps (1 cluster)\n\
         fail.hist: FAIL: coherent-closure cycle t1#1(@3) t0#1(@2) in cluster {t0 t1}\n"
    );

    std::fs::remove_dir_all(&root).expect("clean scratch dir");
}
