//! Runtime transactions: programs paired with *online* breakpoint
//! structure, ready to be driven by a §6 concurrency control.
//!
//! The offline theory (`mla-core`) describes breakpoints per completed
//! execution. A scheduler needs them *online*: after each performed step
//! it must know, immediately, at which levels the transaction now sits at
//! a breakpoint. §6 makes this well-defined via the **compatibility
//! condition**: if two executions of a transaction share a prefix, either
//! both have a breakpoint right after that prefix or neither does. The
//! [`RuntimeBreakpoints`] trait enforces compatibility *by construction* —
//! its only input is the performed prefix.
//!
//! Because each level's breakpoint set refines the previous level's, the
//! breakpoint structure after a given prefix is fully described by one
//! number: the *minimum* level at which a breakpoint occurs there (it then
//! occurs at every deeper level too). [`RuntimeBreakpoints::min_level_after`]
//! returns exactly that.
//!
//! [`TxnInstance`] is the runtime object schedulers drive: program state,
//! performed steps, breakpoint queries, and reset-for-retry after an
//! abort. [`RuntimeSpec`] adapts a set of runtime breakpoint definitions
//! back into an offline [`BreakpointSpecification`], which is how every
//! simulation's final history is re-checked against Theorem 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use mla_core::breakpoints::BreakpointDescription;
use mla_core::spec::BreakpointSpecification;
use mla_model::{EntityId, LocalState, Program, Step, TxnId, Value};

/// Online breakpoint structure for one transaction. Implementations see
/// only the performed prefix, so the §6 compatibility condition holds by
/// construction.
pub trait RuntimeBreakpoints: Send + Sync {
    /// The nest depth `k`.
    fn k(&self) -> usize;

    /// The minimum level (in `2 ..= k-1`) at which a breakpoint follows
    /// the given performed prefix, or `None` if no mid-level breakpoint
    /// occurs there. (Level `k` trivially has breakpoints everywhere and
    /// level 1 nowhere; neither is reported.)
    fn min_level_after(&self, prefix: &[Step]) -> Option<usize>;

    /// Static introspection: the minimum breakpoint level **guaranteed**
    /// after a prefix of length `pos` in *every* run, or `None` when no
    /// level is guaranteed there (including value-dependent structures,
    /// which place breakpoints at run-dependent positions). Position-based
    /// implementations report exactly their [`min_level_after`]
    /// (which ignores values); the conservative default guarantees
    /// nothing, which is always sound for static analyses.
    ///
    /// [`min_level_after`]: RuntimeBreakpoints::min_level_after
    fn guaranteed_level_after(&self, pos: usize) -> Option<usize> {
        let _ = pos;
        None
    }

    /// Static introspection: a level `l` such that after **every**
    /// non-final prefix, every run has a breakpoint of level `<= l` —
    /// a uniform density guarantee. `None` when some prefix may lack a
    /// mid-level breakpoint entirely. The banking transfer's breakpoints
    /// are the motivating case: the level-2 phase boundary floats with
    /// observed values, but levels `<= 3` break after every step in
    /// every run.
    fn uniform_guarantee(&self) -> Option<usize> {
        None
    }

    /// Builds the offline description of a completed run.
    fn to_description(&self, steps: &[Step]) -> BreakpointDescription {
        let k = self.k();
        let n = steps.len();
        let mut mid: Vec<Vec<usize>> = vec![Vec::new(); k.saturating_sub(2)];
        for p in 1..n {
            if let Some(level) = self.min_level_after(&steps[..p]) {
                debug_assert!((2..k).contains(&level), "mid level out of range");
                for (j, level_bounds) in mid.iter_mut().enumerate() {
                    if j + 2 >= level {
                        level_bounds.push(p);
                    }
                }
            }
        }
        BreakpointDescription::from_mid_levels(k, n, &mid)
            .expect("prefix-derived breakpoints are well-formed and refining")
    }
}

/// No mid-level breakpoints: the transaction is atomic with respect to
/// everything but itself.
#[derive(Clone, Copy, Debug)]
pub struct NoBreakpoints {
    /// Nest depth.
    pub k: usize,
}

impl RuntimeBreakpoints for NoBreakpoints {
    fn k(&self) -> usize {
        self.k
    }

    fn min_level_after(&self, _prefix: &[Step]) -> Option<usize> {
        None
    }
}

/// A breakpoint at `level` (and deeper) after every step.
#[derive(Clone, Copy, Debug)]
pub struct EveryStep {
    /// Nest depth.
    pub k: usize,
    /// The minimum level broken after each step (`2 ..= k-1`).
    pub level: usize,
}

impl RuntimeBreakpoints for EveryStep {
    fn k(&self) -> usize {
        self.k
    }

    fn min_level_after(&self, _prefix: &[Step]) -> Option<usize> {
        Some(self.level)
    }

    fn guaranteed_level_after(&self, pos: usize) -> Option<usize> {
        (pos > 0).then_some(self.level)
    }

    fn uniform_guarantee(&self) -> Option<usize> {
        Some(self.level)
    }
}

/// Breakpoints at fixed step positions: `boundaries[p] = level` places a
/// breakpoint of that minimum level after the `p`-th performed step
/// (1-based position = prefix length).
#[derive(Clone, Debug, Default)]
pub struct PhaseTable {
    /// Nest depth.
    pub k: usize,
    /// Position (prefix length) -> minimum broken level.
    pub boundaries: HashMap<usize, usize>,
}

impl PhaseTable {
    /// Builds a phase table.
    pub fn new(k: usize, boundaries: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let boundaries: HashMap<usize, usize> = boundaries.into_iter().collect();
        assert!(
            boundaries.values().all(|&l| (2..k).contains(&l)),
            "phase levels must lie in 2..k"
        );
        PhaseTable { k, boundaries }
    }
}

impl RuntimeBreakpoints for PhaseTable {
    fn k(&self) -> usize {
        self.k
    }

    fn min_level_after(&self, prefix: &[Step]) -> Option<usize> {
        self.boundaries.get(&prefix.len()).copied()
    }

    fn guaranteed_level_after(&self, pos: usize) -> Option<usize> {
        // Purely position-based, so the runtime answer is the guarantee.
        self.boundaries.get(&pos).copied()
    }
}

/// A running transaction: program, local state, performed steps, and
/// breakpoint structure. Schedulers drive it step by step and reset it on
/// abort.
///
/// ```
/// use std::sync::Arc;
/// use mla_model::program::{ScriptOp, ScriptProgram};
/// use mla_model::{EntityId, TxnId};
/// use mla_txn::{PhaseTable, TxnInstance};
///
/// let program = Arc::new(ScriptProgram::new(vec![
///     ScriptOp::Add(EntityId(0), -5),
///     ScriptOp::Add(EntityId(1), 5),
/// ]));
/// let breakpoints = Arc::new(PhaseTable::new(3, [(1, 2)]));
/// let mut txn = TxnInstance::new(TxnId(0), program, breakpoints);
///
/// assert_eq!(txn.next_entity(), Some(EntityId(0)));
/// let step = txn.perform(100); // observe 100 at entity 0
/// assert_eq!(step.wrote, 95);
/// assert!(txn.at_breakpoint(2), "phase boundary after step 1");
/// ```
pub struct TxnInstance {
    id: TxnId,
    program: Arc<dyn Program + Send + Sync>,
    breakpoints: Arc<dyn RuntimeBreakpoints>,
    state: LocalState,
    steps: Vec<Step>,
    attempts: u32,
}

impl TxnInstance {
    /// Creates a fresh instance at its program's start state.
    pub fn new(
        id: TxnId,
        program: Arc<dyn Program + Send + Sync>,
        breakpoints: Arc<dyn RuntimeBreakpoints>,
    ) -> Self {
        let state = program.start();
        TxnInstance {
            id,
            program,
            breakpoints,
            state,
            steps: Vec::new(),
            attempts: 1,
        }
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The entity the next step will access, or `None` when finished.
    pub fn next_entity(&self) -> Option<EntityId> {
        self.program.next_entity(&self.state)
    }

    /// Whether the program has reached a final state.
    pub fn is_finished(&self) -> bool {
        self.next_entity().is_none()
    }

    /// Number of steps performed in the current attempt.
    pub fn seq(&self) -> u32 {
        self.steps.len() as u32
    }

    /// Steps performed in the current attempt.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// How many attempts (1 + aborts) this instance has made.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The instance's breakpoint structure.
    pub fn breakpoints(&self) -> &Arc<dyn RuntimeBreakpoints> {
        &self.breakpoints
    }

    /// Performs the next step, observing `observed` at the entity returned
    /// by [`TxnInstance::next_entity`]. Returns the completed [`Step`].
    ///
    /// # Panics
    /// Panics if the transaction is finished.
    pub fn perform(&mut self, observed: Value) -> Step {
        let entity = self
            .next_entity()
            .expect("perform called on a finished transaction");
        let (next_state, wrote) = self.program.apply(&self.state, observed);
        let step = Step {
            txn: self.id,
            seq: self.seq(),
            entity,
            observed,
            wrote,
        };
        self.state = next_state;
        self.steps.push(step);
        step
    }

    /// Whether the transaction currently sits at a breakpoint of the given
    /// level (1-based, `1 ..= k-1`): true before its first step, after its
    /// last, and wherever the breakpoint structure says so.
    ///
    /// This is exactly the §6 scheduling predicate: "a level(t, t')
    /// breakpoint immediately follows `α` in `t`'s execution subsequence".
    pub fn at_breakpoint(&self, level: usize) -> bool {
        if self.steps.is_empty() || self.is_finished() {
            return true;
        }
        self.breakpoints
            .min_level_after(&self.steps)
            .is_some_and(|l| l <= level)
    }

    /// Abandons the current attempt: back to the start state with no
    /// performed steps (the store undo is the caller's job).
    pub fn reset(&mut self) {
        self.state = self.program.start();
        self.steps.clear();
        self.attempts += 1;
    }

    /// The offline breakpoint description of the performed steps.
    pub fn description(&self) -> BreakpointDescription {
        self.breakpoints.to_description(&self.steps)
    }
}

/// A transaction program as *declared* to a service front-end: the
/// recipe for minting runtime [`TxnInstance`]s (one per attempt), plus
/// the static facts a scheduler wants before the first step runs — the
/// declared entity footprint (what ranges to latch, what a certificate
/// must cover) and the transaction's nest path (its position in the
/// k-nest, hence its atomicity levels against everyone else).
///
/// The simulator builds instances directly; `mla-serve` builds profiles,
/// because a live session retries after an abort and every attempt needs
/// a fresh instance from the same declaration.
#[derive(Clone)]
pub struct TxnProfile {
    id: TxnId,
    program: Arc<dyn Program + Send + Sync>,
    breakpoints: Arc<dyn RuntimeBreakpoints>,
    /// Declared footprint: sorted, deduplicated entities any attempt may
    /// touch. Empty only for the empty program.
    footprint: Vec<EntityId>,
    /// The transaction's path in the k-nest.
    nest_path: Vec<u32>,
}

impl TxnProfile {
    /// Declares a transaction with an explicit footprint (must cover
    /// every entity any run touches; this is trusted, the way a declared
    /// workload is).
    pub fn new(
        id: TxnId,
        program: Arc<dyn Program + Send + Sync>,
        breakpoints: Arc<dyn RuntimeBreakpoints>,
        mut footprint: Vec<EntityId>,
        nest_path: Vec<u32>,
    ) -> Self {
        footprint.sort_unstable_by_key(|e| e.0);
        footprint.dedup();
        TxnProfile {
            id,
            program,
            breakpoints,
            footprint,
            nest_path,
        }
    }

    /// Declares a transaction whose footprint is derived from the
    /// program's own static description ([`Program::step_entities`]).
    ///
    /// # Panics
    /// Panics if the program cannot describe its accesses statically —
    /// declare such programs with an explicit footprint via
    /// [`TxnProfile::new`].
    pub fn from_program(
        id: TxnId,
        program: Arc<dyn Program + Send + Sync>,
        breakpoints: Arc<dyn RuntimeBreakpoints>,
        nest_path: Vec<u32>,
    ) -> Self {
        let footprint = program
            .step_entities()
            .expect("program has no static step list; declare a footprint explicitly");
        Self::new(id, program, breakpoints, footprint, nest_path)
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The declared footprint (sorted, deduplicated).
    pub fn footprint(&self) -> &[EntityId] {
        &self.footprint
    }

    /// Whether the declaration covers `e`.
    pub fn declares(&self, e: EntityId) -> bool {
        self.footprint.binary_search_by_key(&e.0, |x| x.0).is_ok()
    }

    /// The inclusive entity bounds of the footprint — the interval a
    /// whole-transaction latch would take. `None` for an empty program.
    pub fn footprint_bounds(&self) -> Option<(EntityId, EntityId)> {
        Some((*self.footprint.first()?, *self.footprint.last()?))
    }

    /// The transaction's nest path.
    pub fn nest_path(&self) -> &[u32] {
        &self.nest_path
    }

    /// The breakpoint structure (register it in a [`RuntimeSpec`] for
    /// post-hoc Theorem 2 checking).
    pub fn breakpoints(&self) -> &Arc<dyn RuntimeBreakpoints> {
        &self.breakpoints
    }

    /// Mints a fresh instance at the program start — one per attempt.
    pub fn instantiate(&self) -> TxnInstance {
        TxnInstance::new(
            self.id,
            Arc::clone(&self.program),
            Arc::clone(&self.breakpoints),
        )
    }
}

/// Adapts per-transaction runtime breakpoints into an offline
/// [`BreakpointSpecification`] for post-hoc Theorem 2 checking. Unmapped
/// transactions default to atomic (no mid-level breakpoints).
#[derive(Clone, Default)]
pub struct RuntimeSpec {
    k: usize,
    map: HashMap<TxnId, Arc<dyn RuntimeBreakpoints>>,
}

impl RuntimeSpec {
    /// Creates an empty spec of depth `k`.
    pub fn new(k: usize) -> Self {
        RuntimeSpec {
            k,
            map: HashMap::new(),
        }
    }

    /// Registers a transaction's breakpoints.
    pub fn insert(&mut self, t: TxnId, bp: Arc<dyn RuntimeBreakpoints>) {
        assert_eq!(bp.k(), self.k, "breakpoint depth must match spec depth");
        self.map.insert(t, bp);
    }

    /// Builder-style [`RuntimeSpec::insert`].
    pub fn with(mut self, t: TxnId, bp: Arc<dyn RuntimeBreakpoints>) -> Self {
        self.insert(t, bp);
        self
    }
}

impl BreakpointSpecification for RuntimeSpec {
    fn k(&self) -> usize {
        self.k
    }

    fn describe(&self, t: TxnId, steps: &[Step]) -> BreakpointDescription {
        match self.map.get(&t) {
            Some(bp) => bp.to_description(steps),
            None => BreakpointDescription::atomic(self.k, steps.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::program::{ScriptOp::*, ScriptProgram};

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    fn transfer_program() -> Arc<dyn Program + Send + Sync> {
        // w w | d d with the phase boundary after step 2.
        Arc::new(ScriptProgram::new(vec![
            Add(e(0), -10),
            Add(e(1), -5),
            Add(e(2), 10),
            Add(e(3), 5),
        ]))
    }

    fn transfer_breakpoints() -> Arc<dyn RuntimeBreakpoints> {
        Arc::new(PhaseTable::new(4, [(2, 2), (1, 3), (3, 3)]))
    }

    #[test]
    fn instance_lifecycle() {
        let mut txn = TxnInstance::new(TxnId(0), transfer_program(), transfer_breakpoints());
        assert!(!txn.is_finished());
        assert_eq!(txn.next_entity(), Some(e(0)));
        assert!(txn.at_breakpoint(1), "not yet started: interruptible");

        let s0 = txn.perform(100);
        assert_eq!(s0.wrote, 90);
        assert_eq!(s0.seq, 0);
        // After 1 step: PhaseTable says min level 3.
        assert!(!txn.at_breakpoint(1));
        assert!(!txn.at_breakpoint(2));
        assert!(txn.at_breakpoint(3));

        let _s1 = txn.perform(50);
        // After 2 steps: phase boundary, level 2.
        assert!(txn.at_breakpoint(2));
        assert!(!txn.at_breakpoint(1));

        txn.perform(0);
        txn.perform(0);
        assert!(txn.is_finished());
        assert!(txn.at_breakpoint(1), "finished: interruptible at any level");
        assert_eq!(txn.seq(), 4);
    }

    #[test]
    fn reset_restores_start() {
        let mut txn = TxnInstance::new(TxnId(0), transfer_program(), transfer_breakpoints());
        txn.perform(100);
        txn.perform(50);
        assert_eq!(txn.attempts(), 1);
        txn.reset();
        assert_eq!(txn.seq(), 0);
        assert_eq!(txn.attempts(), 2);
        assert_eq!(txn.next_entity(), Some(e(0)));
        let s = txn.perform(100);
        assert_eq!(s.seq, 0);
    }

    #[test]
    fn description_matches_runtime_breakpoints() {
        let mut txn = TxnInstance::new(TxnId(0), transfer_program(), transfer_breakpoints());
        for v in [100, 50, 0, 0] {
            txn.perform(v);
        }
        let bd = txn.description();
        assert_eq!(bd.k(), 4);
        assert_eq!(bd.step_count(), 4);
        // Level 2: only position 2 (the phase boundary).
        assert_eq!(bd.boundaries(2), vec![2]);
        // Level 3: positions 1, 2, 3.
        assert_eq!(bd.boundaries(3), vec![1, 2, 3]);
        assert_eq!(bd.segments(2), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn no_breakpoints_is_atomic() {
        let bp = NoBreakpoints { k: 3 };
        let steps: Vec<Step> = (0..3)
            .map(|i| Step {
                txn: TxnId(0),
                seq: i,
                entity: e(i),
                observed: 0,
                wrote: 0,
            })
            .collect();
        assert_eq!(
            bp.to_description(&steps),
            BreakpointDescription::atomic(3, 3)
        );
        assert_eq!(bp.min_level_after(&steps[..1]), None);
    }

    #[test]
    fn every_step_is_free_at_its_level() {
        let bp = EveryStep { k: 4, level: 3 };
        let steps: Vec<Step> = (0..3)
            .map(|i| Step {
                txn: TxnId(0),
                seq: i,
                entity: e(i),
                observed: 0,
                wrote: 0,
            })
            .collect();
        let bd = bp.to_description(&steps);
        assert_eq!(bd.boundaries(2), Vec::<usize>::new());
        assert_eq!(bd.boundaries(3), vec![1, 2]);
    }

    #[test]
    fn compatibility_by_construction() {
        // Two runs sharing a prefix agree on the breakpoint after it —
        // trivially, because min_level_after sees only the prefix.
        let bp = transfer_breakpoints();
        let mk = |n: usize, salt: i64| -> Vec<Step> {
            (0..n)
                .map(|i| Step {
                    txn: TxnId(0),
                    seq: i as u32,
                    entity: e(i as u32),
                    observed: salt,
                    wrote: salt + 1,
                })
                .collect()
        };
        let run_a = mk(4, 0);
        let run_b = mk(4, 99);
        for p in 1..4 {
            assert_eq!(
                bp.min_level_after(&run_a[..p]),
                bp.min_level_after(&run_a[..p]),
            );
            // Same prefix length, different observations: PhaseTable is
            // position-based so they agree (value-dependent impls would
            // only agree when the actual prefixes coincide).
            assert_eq!(
                bp.min_level_after(&run_a[..p]),
                bp.min_level_after(&run_b[..p]),
            );
        }
    }

    #[test]
    fn runtime_spec_adapts_for_offline_checking() {
        use mla_core::nest::Nest;
        use mla_core::spec::ExecContext;
        let mut t0 = TxnInstance::new(TxnId(0), transfer_program(), transfer_breakpoints());
        for v in [100, 50, 0, 0] {
            t0.perform(v);
        }
        let exec = mla_model::Execution::new(t0.steps().to_vec()).unwrap();
        let spec = RuntimeSpec::new(4).with(TxnId(0), transfer_breakpoints());
        let nest = Nest::new(4, vec![vec![0, 0]]).unwrap();
        let ctx = ExecContext::new(&exec, &nest, &spec).unwrap();
        assert_eq!(ctx.bd(0).boundaries(2), vec![2]);
    }

    #[test]
    fn profile_mints_fresh_instances_with_declared_facts() {
        let profile = TxnProfile::from_program(
            TxnId(3),
            transfer_program(),
            transfer_breakpoints(),
            vec![0, 1],
        );
        assert_eq!(profile.id(), TxnId(3));
        assert_eq!(
            profile.footprint(),
            &[e(0), e(1), e(2), e(3)],
            "sorted, deduplicated"
        );
        assert!(profile.declares(e(2)));
        assert!(!profile.declares(e(7)));
        assert_eq!(profile.footprint_bounds(), Some((e(0), e(3))));
        assert_eq!(profile.nest_path(), &[0, 1]);
        // Each attempt gets an independent instance.
        let mut a = profile.instantiate();
        a.perform(100);
        let b = profile.instantiate();
        assert_eq!(a.seq(), 1);
        assert_eq!(b.seq(), 0);
        assert_eq!(b.id(), TxnId(3));
    }

    #[test]
    fn explicit_footprint_overrides_program() {
        let profile = TxnProfile::new(
            TxnId(0),
            transfer_program(),
            transfer_breakpoints(),
            vec![e(9), e(1), e(9)],
            vec![0],
        );
        assert_eq!(profile.footprint(), &[e(1), e(9)]);
    }

    #[test]
    #[should_panic(expected = "phase levels must lie in 2..k")]
    fn phase_table_rejects_bad_level() {
        PhaseTable::new(3, [(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "finished")]
    fn perform_after_finish_panics() {
        let mut txn = TxnInstance::new(
            TxnId(0),
            Arc::new(ScriptProgram::new(vec![Read(e(0))])),
            Arc::new(NoBreakpoints { k: 2 }),
        );
        txn.perform(0);
        txn.perform(0);
    }
}
