//! Hand-computed exploration counts for fixed nests, the brute-force
//! trace census cross-check, the Theorem 2 oracle over every
//! representative, and the planted-mutant sensitivity experiment: a
//! defect the random driver misses at 1,000 draws is found by
//! exhaustive exploration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mla_core::nest::Nest;
use mla_core::spec::{AtomicSpec, FreeSpec};
use mla_core::theorem::{decide, Correctability};
use mla_explore::{
    explore, explore_all, trace_classes, BoundedNest, MutantEngine, Schedule, TriggerPair,
};
use mla_model::{EntityId, TxnId};

fn e(x: u32) -> EntityId {
    EntityId(x)
}

/// Every surviving execution a granted schedule leaves behind must be
/// correctable, with a multilevel-atomic witness equivalent to it — the
/// engine's whole point is to admit only such executions.
fn assert_oracle<S: mla_core::spec::BreakpointSpecification>(
    schedule: &Schedule,
    nest: &Nest,
    spec: &S,
) {
    match decide(&schedule.exec, nest, spec).expect("well-formed execution") {
        Correctability::Correctable { witness } => {
            assert!(witness.equivalent(&schedule.exec));
            assert!(mla_core::is_multilevel_atomic(&witness, nest, spec).unwrap());
        }
        Correctability::NotCorrectable { cycle } => {
            panic!("explored schedule is not correctable: {cycle}")
        }
    }
}

/// Nest 1 — two 2-step transactions on disjoint entities under flat
/// serializability. Everything commutes, so six schedules collapse to
/// one trace: one representative explored, four sleep-skips, two
/// pruned branches.
#[test]
fn disjoint_pair_counts() {
    let input = BoundedNest {
        nest: Nest::flat(2),
        spec: AtomicSpec { k: 2 },
        scripts: vec![vec![e(0); 2], vec![e(1); 2]],
    };
    let all = explore_all(&input, |s| assert!(s.all_granted()));
    assert_eq!(all.explored, 6);

    let census = trace_classes(&input);
    assert_eq!(census.schedules, 6);
    assert_eq!(census.classes, 1);

    let mut reps = 0usize;
    let stats = explore(&input, |s| {
        reps += 1;
        assert!(s.all_granted());
        assert_oracle(s, &input.nest, &input.spec);
    });
    assert_eq!(reps, 1);
    assert_eq!(stats.explored, 1);
    assert_eq!(stats.sleep_skips, 4);
    assert_eq!(stats.sleep_blocked, 2);
    assert_eq!(stats.explored as usize, census.classes);
}

/// Nest 2 — the same shape contending on one entity. Serializability
/// denies the late cross access, aborting the offerer; same-entity
/// steps never commute, so nothing is pruned and DPOR explores exactly
/// the brute-force set: `aabb`, `ab a✗ b`, `abb a✗`, and the three
/// mirror images.
#[test]
fn contended_pair_counts() {
    let input = BoundedNest {
        nest: Nest::flat(2),
        spec: AtomicSpec { k: 2 },
        scripts: vec![vec![e(5); 2], vec![e(5); 2]],
    };
    let all = explore_all(&input, |_| {});
    assert_eq!(all.explored, 6);

    let mut schedules: Vec<(Vec<u32>, Vec<bool>)> = Vec::new();
    let stats = explore(&input, |s| {
        schedules.push((
            s.offers.iter().map(|st| st.txn.0).collect(),
            s.verdicts.clone(),
        ));
        assert_oracle(s, &input.nest, &input.spec);
        // A denial always leaves a serial survivor here.
        assert!(s.exec.is_serial());
    });
    assert_eq!(stats.explored, 6);
    assert_eq!(stats.sleep_skips, 0);
    assert_eq!(stats.sleep_blocked, 0);
    schedules.sort();
    schedules.dedup();
    assert_eq!(schedules.len(), 6, "six distinct maximal schedules");
    // Two fully-granted serial schedules, four with exactly one denial.
    let denials: Vec<usize> = schedules
        .iter()
        .map(|(_, v)| v.iter().filter(|&&g| !g).count())
        .collect();
    assert_eq!(denials.iter().filter(|&&d| d == 0).count(), 2);
    assert_eq!(denials.iter().filter(|&&d| d == 1).count(), 4);
}

/// Nest 3 — free weaving at k = 3: t0 and t1 contend on one entity
/// (dependent), t2 runs alone on another (independent of both). The 90
/// schedules quotient to C(4,2) = 6 traces — the orderings of the
/// contended steps — and the census agrees.
#[test]
fn mixed_free_counts() {
    let nest = Nest::new(3, vec![vec![0], vec![0], vec![0]]).unwrap();
    let input = BoundedNest {
        nest,
        spec: FreeSpec { k: 3 },
        scripts: vec![vec![e(0); 2], vec![e(0); 2], vec![e(1); 2]],
    };
    let all = explore_all(&input, |s| assert!(s.all_granted()));
    assert_eq!(all.explored, 90); // 6! / (2! 2! 2!)

    let census = trace_classes(&input);
    assert_eq!(census.schedules, 90);
    assert_eq!(census.classes, 6);
    // Schedules share dependency-equivalent prefixes, so most census
    // independence queries come back memoized.
    assert!(census.cache_hits > census.probes);

    let stats = explore(&input, |s| {
        assert!(s.all_granted());
        assert_oracle(s, &input.nest, &input.spec);
    });
    assert_eq!(stats.explored as usize, census.classes);
    assert!(stats.sleep_skips > 0, "reduction actually pruned");
    assert!(
        stats.probes > 0,
        "independence came from live engine probes"
    );
}

/// The mutant nest: four 4-step transactions under free weaving, t0/t1
/// on one entity, t2/t3 on another. Trace count C(8,4)² = 4900; the
/// planted defect fires on exactly one trace (both projections perfect
/// alternations), so one uniform draw hits with probability 1/4900.
fn mutant_nest() -> BoundedNest<FreeSpec> {
    let nest = Nest::new(3, vec![vec![0]; 4]).unwrap();
    BoundedNest {
        nest,
        spec: FreeSpec { k: 3 },
        scripts: vec![vec![e(0); 4], vec![e(0); 4], vec![e(1); 4], vec![e(1); 4]],
    }
}

fn mutant() -> MutantEngine<FreeSpec> {
    let input = mutant_nest();
    MutantEngine::new(
        input.nest,
        input.spec,
        vec![
            TriggerPair {
                entity: e(0),
                a: TxnId(0),
                b: TxnId(1),
                steps_each: 4,
            },
            TriggerPair {
                entity: e(1),
                a: TxnId(2),
                b: TxnId(3),
                steps_each: 4,
            },
        ],
    )
}

/// One uniform maximal schedule of the (all-grant) mutant nest,
/// replayed against the mutant scheduler. Returns whether the defect
/// surfaced as a verdict divergence from the always-granting reference.
fn random_draw_diverges(input: &BoundedNest<FreeSpec>, rng: &mut SmallRng) -> bool {
    let mut m = mutant();
    let mut next = vec![0usize; input.scripts.len()];
    loop {
        let enabled: Vec<usize> = (0..input.scripts.len())
            .filter(|&t| next[t] < input.scripts[t].len())
            .collect();
        let Some(&t) = enabled.get(rng.gen_range(0..enabled.len().max(1))) else {
            return false;
        };
        let step = mla_model::Step {
            txn: TxnId(t as u32),
            seq: next[t] as u32,
            entity: input.scripts[t][next[t]],
            observed: 0,
            wrote: 0,
        };
        // Reference verdict is `true` throughout (free weaving); any
        // `false` from the mutant is the planted divergence.
        if !m.decide(step) {
            return true;
        }
        next[t] += 1;
        if next.iter().zip(&input.scripts).all(|(&n, s)| n == s.len()) {
            return false;
        }
    }
}

/// The experiment: 1,000 seeded random schedules never trip the
/// defect, exhaustive exploration finds the one trace that does — and
/// visits exactly the 4,900 hand-computed trace representatives.
#[test]
fn exhaustive_exploration_catches_what_sampling_misses() {
    let input = mutant_nest();

    let mut rng = SmallRng::seed_from_u64(8);
    let hits = (0..1_000)
        .filter(|_| random_draw_diverges(&input, &mut rng))
        .count();
    assert_eq!(hits, 0, "the random harness misses the planted defect");

    let mut fired = 0usize;
    let stats = explore(&input, |s| {
        assert!(s.all_granted());
        let mut m = mutant();
        if s.offers.iter().any(|&step| !m.decide(step)) {
            fired += 1;
        }
    });
    assert_eq!(stats.explored, 4_900, "C(8,4)^2 trace representatives");
    assert_eq!(fired, 1, "exactly one trace trips the defect");
}

/// Nightly (`--ignored`): the bounds lifted. A mid-size nest keeps the
/// full brute-force census feasible; a larger one is checked against
/// the closed-form trace count at a size where brute force (369,600
/// schedules) is out of reach, with the Theorem 2 oracle run on every
/// representative.
#[test]
#[ignore = "nightly: unbounded exploration"]
fn unbounded_exploration_lifted_bounds() {
    // t0/t1 contend on one entity (3 steps each), t2 alone on another
    // (2 steps): 8!/(3!·3!·2!) = 560 schedules, C(6,3) = 20 traces.
    let nest = Nest::new(3, vec![vec![0]; 3]).unwrap();
    let input = BoundedNest {
        nest,
        spec: FreeSpec { k: 3 },
        scripts: vec![vec![e(0); 3], vec![e(0); 3], vec![e(1); 2]],
    };
    let census = trace_classes(&input);
    assert_eq!(census.schedules, 560);
    assert_eq!(census.classes, 20);
    let stats = explore(&input, |s| assert_oracle(s, &input.nest, &input.spec));
    assert_eq!(stats.explored as usize, census.classes);

    // Two contended pairs, 3 steps each: C(6,3)² = 400 traces out of
    // 12!/(3!)⁴ = 369,600 schedules.
    let nest = Nest::new(3, vec![vec![0]; 4]).unwrap();
    let input = BoundedNest {
        nest,
        spec: FreeSpec { k: 3 },
        scripts: vec![vec![e(0); 3], vec![e(0); 3], vec![e(1); 3], vec![e(1); 3]],
    };
    let stats = explore(&input, |s| {
        assert!(s.all_granted());
        assert_oracle(s, &input.nest, &input.spec);
    });
    assert_eq!(stats.explored, 400);
}
