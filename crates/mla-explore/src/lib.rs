//! Exhaustive schedule exploration for bounded nests — dynamic
//! partial-order reduction (DPOR) with the coherent closure as the
//! independence relation.
//!
//! The random harnesses (`sharded_engine_equivalence`,
//! `parallel_determinism`, `check_differential`) sample schedules, so a
//! bug that needs one specific interleaving can survive every run. This
//! crate instead enumerates *every* schedule of a bounded nest up to
//! dependency-equivalence: two adjacent steps of different transactions
//! are independent exactly when swapping them changes neither verdict
//! nor the resulting coherent closure, which the incremental
//! [`ClosureEngine`] answers directly via its tentative
//! apply/rollback probe ([`ClosureEngine::steps_commute`]).
//!
//! The exploration is a depth-first search over *offer* sequences with
//! sleep sets (Godefroid): when several enabled transactions' next steps
//! pairwise commute in the current state, only one order is explored and
//! the others are put to sleep. For an all-grant input the number of
//! maximal schedules explored equals the number of Mazurkiewicz traces —
//! [`trace_classes`] computes that count independently by brute force so
//! tests can cross-check completeness.
//!
//! Scheduling semantics match the differential harnesses: each offer is
//! the next step of a live transaction; a granted step commits, a denied
//! step aborts the requesting transaction ([`ClosureEngine::remove_txn`]),
//! which stops offering and whose accepted steps leave the window.
//!
//! ```
//! use mla_core::nest::Nest;
//! use mla_core::spec::AtomicSpec;
//! use mla_explore::{explore, BoundedNest};
//! use mla_model::EntityId;
//!
//! // Two 2-step transactions on disjoint entities: every interleaving
//! // commutes, so one representative covers all six schedules.
//! let input = BoundedNest {
//!     nest: Nest::flat(2),
//!     spec: AtomicSpec { k: 2 },
//!     scripts: vec![vec![EntityId(0); 2], vec![EntityId(1); 2]],
//! };
//! let stats = explore(&input, |_schedule| {});
//! assert_eq!(stats.explored, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};

use mla_core::engine::{ClosureEngine, RelationSignature};
use mla_core::nest::Nest;
use mla_core::spec::BreakpointSpecification;
use mla_model::{EntityId, Execution, Step, TxnId};

pub mod mutant;

pub use mutant::{MutantEngine, TriggerPair};

/// A bounded exploration input: a nest, its breakpoint specification,
/// and one fixed entity script per transaction. Transaction `t`'s step
/// `i` touches `scripts[t][i]`; values are immaterial to scheduling and
/// are fixed at zero.
#[derive(Clone, Debug)]
pub struct BoundedNest<S> {
    /// The k-nest over the scripted transactions.
    pub nest: Nest,
    /// The breakpoint specification every transaction runs under.
    pub spec: S,
    /// Per-transaction entity scripts, indexed by `TxnId`.
    pub scripts: Vec<Vec<EntityId>>,
}

impl<S> BoundedNest<S> {
    fn step(&self, t: usize, seq: usize) -> Step {
        Step {
            txn: TxnId(t as u32),
            seq: seq as u32,
            entity: self.scripts[t][seq],
            observed: 0,
            wrote: 0,
        }
    }
}

/// One fully explored maximal schedule — a Mazurkiewicz-trace
/// representative, plus everything a differential harness needs to
/// replay it against another backend.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Every offer, in order: granted steps and the final (denied) offer
    /// of each aborted transaction.
    pub offers: Vec<Step>,
    /// Per-offer verdict: `true` granted, `false` denied (the offering
    /// transaction aborted and stopped contributing).
    pub verdicts: Vec<bool>,
    /// The surviving execution: accepted steps of unaborted
    /// transactions, in performance order.
    pub exec: Execution,
}

impl Schedule {
    /// Whether every offer was granted.
    pub fn all_granted(&self) -> bool {
        self.verdicts.iter().all(|&v| v)
    }
}

/// Deterministic exploration counters. With a fixed input every field is
/// reproducible, so tests pin them against hand-computed totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Maximal schedules visited (for an all-grant input under
    /// reduction: the number of Mazurkiewicz traces).
    pub explored: u64,
    /// Offers actually applied during the search (interior tree edges).
    pub transitions: u64,
    /// Enabled actions skipped because they were asleep.
    pub sleep_skips: u64,
    /// Interior nodes abandoned with every enabled action asleep (the
    /// redundant branches sleep sets prune; not counted as explored).
    pub sleep_blocked: u64,
    /// Independence queries answered by engine probes.
    pub probes: u64,
    /// Independence queries served from the memoized commutativity
    /// cache.
    pub cache_hits: u64,
}

// A memoized independence answer is sound to reuse exactly when the
// probe's inputs coincide: the per-transaction progress (which fixes
// every breakpoint description), the aborted set, the maintained
// relation itself, and the pair. Two different interleavings reaching
// the same progress vector can carry different closures, hence the full
// signature in the key rather than just the counts.
type CacheKey = (Vec<u32>, u64, RelationSignature, usize, usize);

struct Dfs<'a, S, F> {
    input: &'a BoundedNest<S>,
    visit: F,
    reduce: bool,
    stats: ExploreStats,
    cache: HashMap<CacheKey, bool>,
    offers: Vec<Step>,
    verdicts: Vec<bool>,
}

impl<S: BreakpointSpecification + Clone, F: FnMut(&Schedule)> Dfs<'_, S, F> {
    fn node(
        &mut self,
        engine: &mut ClosureEngine<S>,
        next: &[usize],
        aborted: &[bool],
        sleep: &BTreeSet<usize>,
    ) {
        let n = self.input.scripts.len();
        let enabled: Vec<usize> = (0..n)
            .filter(|&t| !aborted[t] && next[t] < self.input.scripts[t].len())
            .collect();
        if enabled.is_empty() {
            self.stats.explored += 1;
            let schedule = Schedule {
                offers: self.offers.clone(),
                verdicts: self.verdicts.clone(),
                exec: engine.execution(),
            };
            (self.visit)(&schedule);
            return;
        }
        let awake: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|t| !sleep.contains(t))
            .collect();
        self.stats.sleep_skips += (enabled.len() - awake.len()) as u64;
        if awake.is_empty() {
            self.stats.sleep_blocked += 1;
            return;
        }
        let mut done: Vec<usize> = Vec::new();
        for &t in &awake {
            // Sleep set for the child: everything asleep here, plus the
            // siblings already explored at this node, kept only if it
            // commutes with `t` in the *current* state — taking `t`
            // then must lead to the same state as taking it before.
            let mut child_sleep = BTreeSet::new();
            if self.reduce {
                for &u in sleep.iter().chain(done.iter()) {
                    if self.independent(engine, next, aborted, t, u) {
                        child_sleep.insert(u);
                    }
                }
            }
            let candidate = self.input.step(t, next[t]);
            let mut child = engine.snapshot();
            self.stats.transitions += 1;
            let granted = match child.apply_step(candidate) {
                Ok(()) => {
                    child.commit_step();
                    true
                }
                Err(_) => {
                    child.remove_txn(candidate.txn);
                    child.flush_rebuild();
                    false
                }
            };
            self.offers.push(candidate);
            self.verdicts.push(granted);
            let mut cnext = next.to_vec();
            let mut caborted = aborted.to_vec();
            if granted {
                cnext[t] += 1;
            } else {
                caborted[t] = true;
            }
            self.node(&mut child, &cnext, &caborted, &child_sleep);
            self.offers.pop();
            self.verdicts.pop();
            done.push(t);
        }
    }

    fn independent(
        &mut self,
        engine: &mut ClosureEngine<S>,
        next: &[usize],
        aborted: &[bool],
        a: usize,
        b: usize,
    ) -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        let key = (
            next.iter().map(|&x| x as u32).collect::<Vec<u32>>(),
            aborted_mask(aborted),
            engine.relation_signature(),
            lo,
            hi,
        );
        if let Some(&known) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return known;
        }
        self.stats.probes += 1;
        let commute =
            engine.steps_commute(self.input.step(lo, next[lo]), self.input.step(hi, next[hi]));
        self.cache.insert(key, commute);
        commute
    }
}

fn aborted_mask(aborted: &[bool]) -> u64 {
    aborted
        .iter()
        .enumerate()
        .fold(0u64, |m, (i, &a)| if a { m | (1 << i) } else { m })
}

fn run<S: BreakpointSpecification + Clone>(
    input: &BoundedNest<S>,
    reduce: bool,
    visit: impl FnMut(&Schedule),
) -> ExploreStats {
    assert_eq!(
        input.scripts.len(),
        input.nest.txn_count(),
        "one script per nest transaction"
    );
    assert!(
        input.scripts.len() <= 64,
        "at most 64 scripted transactions"
    );
    let mut dfs = Dfs {
        input,
        visit,
        reduce,
        stats: ExploreStats::default(),
        cache: HashMap::new(),
        offers: Vec::new(),
        verdicts: Vec::new(),
    };
    let mut engine = ClosureEngine::new(input.nest.clone(), input.spec.clone());
    let next = vec![0usize; input.scripts.len()];
    let aborted = vec![false; input.scripts.len()];
    dfs.node(&mut engine, &next, &aborted, &BTreeSet::new());
    dfs.stats
}

/// Explores every maximal schedule of `input` up to
/// dependency-equivalence (sleep-set DPOR), invoking `visit` once per
/// trace representative. For an all-grant input, `explored` equals the
/// number of Mazurkiewicz traces; when denials occur the pair involved
/// is always dependent, so the denied branches are never pruned.
pub fn explore<S: BreakpointSpecification + Clone>(
    input: &BoundedNest<S>,
    visit: impl FnMut(&Schedule),
) -> ExploreStats {
    run(input, true, visit)
}

/// Explores every maximal schedule with no reduction at all — the
/// brute-force ground truth the DPOR counts are checked against.
pub fn explore_all<S: BreakpointSpecification + Clone>(
    input: &BoundedNest<S>,
    visit: impl FnMut(&Schedule),
) -> ExploreStats {
    run(input, false, visit)
}

/// The brute-force trace census of an all-grant input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCensus {
    /// Total maximal schedules (no reduction).
    pub schedules: usize,
    /// Mazurkiewicz-trace classes: schedules joined whenever two of
    /// them differ by one adjacent swap of independent steps.
    pub classes: usize,
    /// Adjacent-pair independence queries answered by engine probes.
    pub probes: u64,
    /// Queries served from the memoized commutativity cache — schedules
    /// share dependency-equivalent prefixes, so the census is where
    /// memoization pays off most.
    pub cache_hits: u64,
}

/// Computes the trace census of an all-grant input independently of the
/// sleep-set machinery: enumerate every schedule, then union-find over
/// single adjacent swaps of steps that commute at the swap point (the
/// probe answers, on a replayed prefix). DPOR is complete iff
/// [`ExploreStats::explored`] equals `classes`. Panics if any schedule
/// contains a denial — dependency-equivalence of offer sequences is only
/// defined when every offer commits.
pub fn trace_classes<S: BreakpointSpecification + Clone>(input: &BoundedNest<S>) -> TraceCensus {
    let mut schedules: Vec<Vec<Step>> = Vec::new();
    explore_all(input, |s| {
        assert!(s.all_granted(), "trace_classes requires an all-grant input");
        schedules.push(s.offers.clone());
    });
    let index: HashMap<Vec<u32>, usize> = schedules
        .iter()
        .enumerate()
        .map(|(i, s)| (s.iter().map(|st| st.txn.0).collect(), i))
        .collect();
    let mut uf = UnionFind::new(schedules.len());
    let mut cache: HashMap<CacheKey, bool> = HashMap::new();
    let (mut probes, mut cache_hits) = (0u64, 0u64);
    for (i, offers) in schedules.iter().enumerate() {
        let mut engine = ClosureEngine::new(input.nest.clone(), input.spec.clone());
        let mut next = vec![0u32; input.scripts.len()];
        for p in 0..offers.len().saturating_sub(1) {
            let (x, y) = (offers[p], offers[p + 1]);
            let commute = x.txn != y.txn && {
                let (lo, hi) = (x.txn.0.min(y.txn.0), x.txn.0.max(y.txn.0));
                let key = (
                    next.clone(),
                    0u64,
                    engine.relation_signature(),
                    lo as usize,
                    hi as usize,
                );
                match cache.get(&key) {
                    Some(&known) => {
                        cache_hits += 1;
                        known
                    }
                    None => {
                        probes += 1;
                        let fresh = engine.steps_commute(x, y);
                        cache.insert(key, fresh);
                        fresh
                    }
                }
            };
            if commute {
                // Swapping an adjacent independent pair of an all-grant
                // schedule yields another all-grant schedule, so the
                // lookup cannot miss.
                let mut swapped: Vec<u32> = offers.iter().map(|s| s.txn.0).collect();
                swapped.swap(p, p + 1);
                let j = *index
                    .get(&swapped)
                    .expect("independent adjacent swap of a schedule is a schedule");
                uf.union(i, j);
            }
            engine
                .apply_step(x)
                .expect("all-grant schedule replays without denial");
            engine.commit_step();
            next[x.txn.0 as usize] += 1;
        }
    }
    TraceCensus {
        schedules: schedules.len(),
        classes: uf.classes(),
        probes,
        cache_hits,
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    fn classes(&mut self) -> usize {
        (0..self.parent.len())
            .filter(|&i| self.find(i) == i)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::spec::{AtomicSpec, FreeSpec};

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    #[test]
    fn single_txn_has_one_schedule_and_no_probes() {
        let input = BoundedNest {
            nest: Nest::flat(1),
            spec: AtomicSpec { k: 2 },
            scripts: vec![vec![e(0), e(1), e(0)]],
        };
        let mut seen = 0usize;
        let stats = explore(&input, |s| {
            seen += 1;
            assert!(s.all_granted());
            assert_eq!(s.exec.len(), 3);
        });
        assert_eq!(seen, 1);
        assert_eq!(
            stats,
            ExploreStats {
                explored: 1,
                transitions: 3,
                ..ExploreStats::default()
            }
        );
    }

    #[test]
    fn explore_all_counts_every_interleaving() {
        // Two 2-step transactions: C(4, 2) = 6 maximal offer sequences,
        // disjoint entities so all grant.
        let input = BoundedNest {
            nest: Nest::flat(2),
            spec: AtomicSpec { k: 2 },
            scripts: vec![vec![e(0); 2], vec![e(1); 2]],
        };
        let stats = explore_all(&input, |s| assert!(s.all_granted()));
        assert_eq!(stats.explored, 6);
        assert_eq!(stats.sleep_skips, 0);
        assert_eq!(stats.probes, 0);
    }

    #[test]
    fn free_spec_on_shared_entity_grants_but_never_commutes() {
        // k = 3, both transactions in class [0]: level 2 breakpoints
        // everywhere, so every interleaving is granted — but the steps
        // share an entity, so no pair commutes and DPOR must keep all
        // six schedules.
        let nest = Nest::new(3, vec![vec![0], vec![0]]).unwrap();
        let input = BoundedNest {
            nest,
            spec: FreeSpec { k: 3 },
            scripts: vec![vec![e(7); 2], vec![e(7); 2]],
        };
        let stats = explore(&input, |s| assert!(s.all_granted()));
        assert_eq!(stats.explored, 6);
        assert_eq!(stats.sleep_skips, 0);
        assert_eq!(stats.sleep_blocked, 0);
    }

    #[test]
    fn census_agrees_with_dpor_on_free_disjoint_pair() {
        let nest = Nest::new(3, vec![vec![0], vec![0]]).unwrap();
        let input = BoundedNest {
            nest,
            spec: FreeSpec { k: 3 },
            scripts: vec![vec![e(0); 2], vec![e(1); 2]],
        };
        let census = trace_classes(&input);
        assert_eq!(census.schedules, 6);
        assert_eq!(census.classes, 1);
        let stats = explore(&input, |_| {});
        assert_eq!(stats.explored as usize, census.classes);
    }
}
