//! Planted interleaving-dependent defects for harness-sensitivity
//! tests.
//!
//! A differential harness is only as good as the schedules it drives: a
//! bug that manifests on one specific interleaving survives any sampler
//! whose draw count is small against the trace count. [`MutantEngine`]
//! makes that concrete — it is a scheduling backend that behaves exactly
//! like the reference [`ClosureEngine`] until the accepted execution's
//! projections onto designated entities form an exact alternation
//! between two transactions, at which point it denies a step the closure
//! grants. The trigger is a function of the Mazurkiewicz trace (steps on
//! one entity never commute, so per-entity projections are trace
//! invariants): a sampler misses it unless it draws the one triggering
//! trace, while exhaustive exploration visits a representative of every
//! trace and cannot miss it.

use mla_core::engine::ClosureEngine;
use mla_core::nest::Nest;
use mla_core::spec::BreakpointSpecification;
use mla_model::{EntityId, Step, TxnId};

/// One trigger clause: the complete projection of the accepted execution
/// onto `entity` must be exactly `a, b, a, b, …` with `steps_each` steps
/// from each transaction. The clause only fires once both transactions
/// have contributed all their steps, so prefixes of the pattern are
/// harmless.
#[derive(Clone, Copy, Debug)]
pub struct TriggerPair {
    /// The entity whose projection is inspected.
    pub entity: EntityId,
    /// The transaction that must perform the odd-numbered accesses.
    pub a: TxnId,
    /// The transaction that must perform the even-numbered accesses.
    pub b: TxnId,
    /// Steps each transaction performs on the entity.
    pub steps_each: usize,
}

impl TriggerPair {
    fn matches(&self, projection: &[TxnId]) -> bool {
        projection.len() == 2 * self.steps_each
            && projection
                .iter()
                .enumerate()
                .all(|(i, &t)| t == if i % 2 == 0 { self.a } else { self.b })
    }
}

/// A reference scheduler with a planted interleaving-dependent bug: it
/// grants and denies exactly like [`ClosureEngine`] unless every
/// [`TriggerPair`] matches the accepted execution after a commit, in
/// which case it reports that (correctly granted) step as denied.
///
/// Drive it offer-by-offer next to a reference engine and compare
/// verdicts; [`fired`](Self::fired) reports whether the defect ever
/// surfaced.
pub struct MutantEngine<S> {
    inner: ClosureEngine<S>,
    trigger: Vec<TriggerPair>,
    fired: bool,
}

impl<S: BreakpointSpecification> MutantEngine<S> {
    /// A mutant scheduler over `nest`/`spec` with the given trigger
    /// clauses (all must match for the defect to surface).
    pub fn new(nest: Nest, spec: S, trigger: Vec<TriggerPair>) -> Self {
        assert!(!trigger.is_empty(), "a mutant needs at least one trigger");
        MutantEngine {
            inner: ClosureEngine::new(nest, spec),
            trigger,
            fired: false,
        }
    }

    /// Decides one offer, committing grants — the buggy counterpart of
    /// an apply/commit round on the reference engine. Returns the
    /// reported verdict; the defect makes exactly the triggering grants
    /// come back as `false`.
    pub fn decide(&mut self, step: Step) -> bool {
        match self.inner.apply_step(step) {
            Err(_) => false,
            Ok(()) => {
                self.inner.commit_step();
                if self.triggered() {
                    self.fired = true;
                    return false;
                }
                true
            }
        }
    }

    /// Aborts a transaction, mirroring the reference deny rule.
    pub fn remove_txn(&mut self, t: TxnId) {
        self.inner.remove_txn(t);
        self.inner.flush_rebuild();
    }

    /// Whether the planted defect has surfaced on this run.
    pub fn fired(&self) -> bool {
        self.fired
    }

    fn triggered(&self) -> bool {
        let exec = self.inner.execution();
        self.trigger.iter().all(|clause| {
            let projection: Vec<TxnId> = exec
                .steps()
                .iter()
                .filter(|s| s.entity == clause.entity)
                .map(|s| s.txn)
                .collect();
            clause.matches(&projection)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::spec::FreeSpec;

    fn step(t: u32, seq: u32, x: u32) -> Step {
        Step {
            txn: TxnId(t),
            seq,
            entity: EntityId(x),
            observed: 0,
            wrote: 0,
        }
    }

    fn mutant() -> MutantEngine<FreeSpec> {
        let nest = Nest::new(3, vec![vec![0], vec![0]]).unwrap();
        MutantEngine::new(
            nest,
            FreeSpec { k: 3 },
            vec![TriggerPair {
                entity: EntityId(5),
                a: TxnId(0),
                b: TxnId(1),
                steps_each: 2,
            }],
        )
    }

    #[test]
    fn fires_only_on_the_exact_complete_alternation() {
        // t0 t1 t0 t1 on the trigger entity: the defect surfaces on the
        // final commit and not before.
        let mut m = mutant();
        assert!(m.decide(step(0, 0, 5)));
        assert!(m.decide(step(1, 0, 5)));
        assert!(m.decide(step(0, 1, 5)));
        assert!(!m.fired());
        assert!(!m.decide(step(1, 1, 5)));
        assert!(m.fired());
    }

    #[test]
    fn stays_silent_off_the_trigger_trace() {
        // Same steps, different weave: t0 t0 t1 t1 never alternates.
        let mut m = mutant();
        assert!(m.decide(step(0, 0, 5)));
        assert!(m.decide(step(0, 1, 5)));
        assert!(m.decide(step(1, 0, 5)));
        assert!(m.decide(step(1, 1, 5)));
        assert!(!m.fired());
    }
}
