//! Concurrency controls for the migrating-transaction simulator: the
//! serializable baselines the paper compares against conceptually, and
//! the two multilevel-atomicity controls §6 sketches.
//!
//! | Control | Guarantees | Mechanism |
//! |---|---|---|
//! | [`SerialControl`] | serial executions | one global token |
//! | [`TwoPhaseLocking`] | serializability | strict 2PL + wound-wait \[EGLT\] |
//! | [`TimestampOrdering`] | serializability | basic T/O \[L\] |
//! | [`SgtControl`] | serializability | online conflict-graph acyclicity |
//! | [`MlaDetect`] | multilevel atomicity (correctable) | online coherent-closure cycle detection (§6) |
//! | [`MlaPrevent`] | multilevel atomicity (correctable) | §6 step-delay rule + waits-for deadlock resolution |
//! | [`HierLocking`] | **none in general** — measured, not trusted (§7, E13) | per-entity lock retention at breakpoints |
//!
//! Every control is *tested against the theory*: the [`oracle`] module
//! feeds each run's final execution back through `mla-core`'s Theorem 2
//! decision procedure (and the serializability checker for the
//! baselines), so a scheduling bug shows up as an incorrect history, not
//! just a wrong counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cert_guard;
pub mod hier_lock;
pub mod mla_detect;
pub mod mla_prevent;
pub mod oracle;
pub mod serial;
pub mod sgt;
pub mod timestamp;
pub mod two_phase;
pub mod victim;
pub mod waits;
pub mod window;

pub use admission::AdmissionView;
pub use cert_guard::{CertAdmit, CertGuard};
pub use hier_lock::HierLocking;
pub use mla_detect::MlaDetect;
pub use mla_prevent::MlaPrevent;
pub use serial::SerialControl;
pub use sgt::SgtControl;
pub use timestamp::TimestampOrdering;
pub use two_phase::TwoPhaseLocking;
pub use victim::VictimPolicy;
pub use waits::ShardedWaits;

// The decision a scheduler returns, re-exported for hosts (like
// `mla-serve`) that drive the `*_view` admission surface without
// depending on the simulator.
pub use mla_sim::Decision;
