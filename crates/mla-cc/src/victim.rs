//! Victim selection for rollback — the A3 ablation axis.

use mla_model::TxnId;

use crate::admission::AdmissionView;

/// How a cycle-resolving control picks the transaction to roll back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Abort the requesting transaction (whose step would close the
    /// cycle).
    Requester,
    /// Abort the candidate with the fewest performed steps (least work
    /// lost); ties broken by higher id.
    FewestSteps,
    /// Abort the candidate with the most performed steps (frees the most
    /// resources); ties broken by higher id.
    MostSteps,
}

impl VictimPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Requester => "requester",
            VictimPolicy::FewestSteps => "fewest-steps",
            VictimPolicy::MostSteps => "most-steps",
        }
    }

    /// Chooses a victim among `candidates` (which must be non-empty; the
    /// requester is always a legal fallback).
    pub fn choose<V: AdmissionView + ?Sized>(
        self,
        requester: TxnId,
        candidates: &[TxnId],
        view: &V,
    ) -> TxnId {
        debug_assert!(!candidates.is_empty());
        match self {
            VictimPolicy::Requester => {
                if candidates.contains(&requester) {
                    requester
                } else {
                    // The requester is not on the cycle (possible when the
                    // cycle predates its request); fall back to least work.
                    VictimPolicy::FewestSteps.choose(requester, candidates, view)
                }
            }
            VictimPolicy::FewestSteps => candidates
                .iter()
                .copied()
                .min_by_key(|&t| (view.performed_seq(t), std::cmp::Reverse(t.0)))
                .expect("non-empty candidates"),
            VictimPolicy::MostSteps => candidates
                .iter()
                .copied()
                .max_by_key(|&t| (view.performed_seq(t), t.0))
                .expect("non-empty candidates"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::{Metrics, TxnStatus, World};
    use mla_storage::Store;
    use mla_txn::{NoBreakpoints, TxnInstance};
    use std::sync::Arc;

    /// A world with three transactions having 0, 1, and 2 performed
    /// steps respectively.
    fn world() -> World {
        let mut instances: Vec<TxnInstance> = (0..3u32)
            .map(|i| {
                TxnInstance::new(
                    TxnId(i),
                    Arc::new(ScriptProgram::new(vec![
                        ScriptOp::Add(EntityId(i), 1),
                        ScriptOp::Add(EntityId(i + 10), 1),
                        ScriptOp::Add(EntityId(i + 20), 1),
                    ])),
                    Arc::new(NoBreakpoints { k: 2 }),
                )
            })
            .collect();
        instances[1].perform(0);
        instances[2].perform(0);
        instances[2].perform(0);
        World {
            store: Store::new([]),
            instances,
            status: vec![TxnStatus::Running; 3],
            nest: Nest::flat(3),
            clock: 0,
            metrics: Metrics::default(),
        }
    }

    #[test]
    fn fewest_steps_picks_least_work_lost() {
        let w = world();
        let all = [TxnId(0), TxnId(1), TxnId(2)];
        assert_eq!(
            VictimPolicy::FewestSteps.choose(TxnId(2), &all, &w),
            TxnId(0)
        );
        assert_eq!(VictimPolicy::MostSteps.choose(TxnId(0), &all, &w), TxnId(2));
    }

    #[test]
    fn requester_preferred_when_on_cycle() {
        let w = world();
        let all = [TxnId(0), TxnId(1), TxnId(2)];
        assert_eq!(VictimPolicy::Requester.choose(TxnId(1), &all, &w), TxnId(1));
        // Requester not among candidates: falls back to least work.
        assert_eq!(
            VictimPolicy::Requester.choose(TxnId(1), &[TxnId(2)], &w),
            TxnId(2)
        );
    }

    #[test]
    fn ties_broken_deterministically() {
        let w = world();
        // t0 has 0 steps; a second zero-step candidate forces the id
        // tiebreak (higher id wins under FewestSteps).
        let mut w2 = world();
        w2.instances[1].reset(); // back to 0 steps
        assert_eq!(
            VictimPolicy::FewestSteps.choose(TxnId(2), &[TxnId(0), TxnId(1)], &w2),
            TxnId(1)
        );
        let _ = w;
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            VictimPolicy::Requester.label(),
            VictimPolicy::FewestSteps.label(),
            VictimPolicy::MostSteps.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
