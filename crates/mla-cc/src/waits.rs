//! Waits-for bookkeeping for [`MlaPrevent`](crate::MlaPrevent), sharded
//! by entity partition.
//!
//! The preventer's wait edges are attributed to the partition of the
//! *entity the waiter is stalled on* — on partitionable workloads,
//! universes that never share an entity never share a wait graph, so the
//! bookkeeping stops being one more global structure serialized behind
//! the entity-sharded closure backend. Deadlock detection stays exact
//! via the same trick the sharded closure engine uses: **group
//! coalescing**. The invariant is that every transaction's wait edges
//! live in exactly one group; before an edge `t -> b` is inserted into
//! the group owning its partition, any group currently holding edges of
//! `t` or `b` is merged in. Groups are therefore node-disjoint, a merge
//! is a disjoint (acyclic) union, and an edge closes a waits-for cycle
//! in some group iff it closes one in the global graph — cross-partition
//! deadlocks included (a regression test pins the two-partition
//! two-transaction case).
//!
//! With one partition the structure *is* the legacy global graph: a
//! single pre-sized [`IncrementalTopo`] fed the same edges in the same
//! order.

use std::collections::{BTreeSet, HashMap};

use mla_graph::{Cycle, IncrementalTopo};

/// One coalescable wait-graph group.
struct WaitGroup {
    topo: IncrementalTopo,
    /// The edges this group owns (rebuild source for merges).
    edges: BTreeSet<(u32, u32)>,
}

/// Entity-partitioned waits-for graphs with exact global deadlock
/// detection.
pub struct ShardedWaits {
    /// Partition -> current group index (groups only ever coalesce).
    group_of_partition: Vec<usize>,
    groups: Vec<WaitGroup>,
    /// Node -> group currently holding its edges.
    node_group: HashMap<u32, usize>,
    merges: u64,
}

impl ShardedWaits {
    /// A graph over `txn_count` transaction nodes, sharded across
    /// `partitions` entity partitions (0 and 1 both mean one global
    /// group).
    pub fn new(txn_count: usize, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        ShardedWaits {
            group_of_partition: (0..partitions).collect(),
            groups: (0..partitions)
                .map(|_| WaitGroup {
                    topo: IncrementalTopo::new(txn_count),
                    edges: BTreeSet::new(),
                })
                .collect(),
            node_group: HashMap::new(),
            merges: 0,
        }
    }

    /// Number of entity partitions.
    pub fn partitions(&self) -> usize {
        self.group_of_partition.len()
    }

    /// Group coalescences performed so far (0 on fully partitionable
    /// workloads — the sharding claim, made observable).
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Number of distinct live groups.
    pub fn group_count(&self) -> usize {
        let mut seen: Vec<usize> = self.group_of_partition.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total wait edges across groups.
    pub fn edge_count(&self) -> usize {
        self.groups.iter().map(|g| g.edges.len()).sum()
    }

    /// Adds the wait edge `t -> b`, attributed to `partition` (the
    /// partition of the entity `t` is stalled on). `Err` is a waits-for
    /// cycle — a deadlock — with the nodes on it.
    pub fn add_edge(&mut self, t: u32, b: u32, partition: usize) -> Result<bool, Cycle> {
        let mut g = self.group_of_partition[partition % self.group_of_partition.len()];
        for n in [t, b] {
            if let Some(&h) = self.node_group.get(&n) {
                if h != g {
                    self.merge(h, g);
                }
            }
        }
        g = self.group_of_partition[partition % self.group_of_partition.len()];
        let inserted = self.groups[g].topo.add_edge(t, b)?;
        if inserted {
            self.groups[g].edges.insert((t, b));
        }
        self.node_group.insert(t, g);
        self.node_group.insert(b, g);
        Ok(inserted)
    }

    /// Removes every outgoing wait edge of `t` (the waiter was granted or
    /// re-deferred with a fresh blocker set).
    pub fn clear_out_edges(&mut self, t: u32) {
        let Some(&g) = self.node_group.get(&t) else {
            return;
        };
        let outs: Vec<u32> = self.groups[g].topo.successors(t).to_vec();
        for o in outs {
            self.groups[g].topo.remove_edge(t, o);
            self.groups[g].edges.remove(&(t, o));
            self.release_if_isolated(o);
        }
        self.release_if_isolated(t);
    }

    /// Detaches `t` entirely (committed or aborted): all its in- and
    /// out-edges drop.
    pub fn detach_node(&mut self, t: u32) {
        let Some(&g) = self.node_group.get(&t) else {
            return;
        };
        self.groups[g].topo.detach_node(t);
        let affected: Vec<(u32, u32)> = self.groups[g]
            .edges
            .iter()
            .copied()
            .filter(|&(u, v)| u == t || v == t)
            .collect();
        for e in &affected {
            self.groups[g].edges.remove(e);
        }
        self.node_group.remove(&t);
        for (u, v) in affected {
            let other = if u == t { v } else { u };
            self.release_if_isolated(other);
        }
    }

    /// Current outgoing waits of `t`.
    pub fn successors(&self, t: u32) -> Vec<u32> {
        match self.node_group.get(&t) {
            Some(&g) => self.groups[g].topo.successors(t).to_vec(),
            None => Vec::new(),
        }
    }

    /// Drops `n` from the node index once it has no edges left, so a
    /// future wait can bind it to a different group without a merge.
    fn release_if_isolated(&mut self, n: u32) {
        if let Some(&g) = self.node_group.get(&n) {
            if self.groups[g].topo.successors(n).is_empty()
                && self.groups[g].topo.predecessors(n).is_empty()
            {
                self.node_group.remove(&n);
            }
        }
    }

    /// Coalesces group `src` into group `dest` (node-disjoint by the
    /// invariant, so re-adding `src`'s edges cannot cycle).
    fn merge(&mut self, src: usize, dest: usize) {
        debug_assert_ne!(src, dest);
        self.merges += 1;
        let moved: Vec<(u32, u32)> = self.groups[src].edges.iter().copied().collect();
        self.groups[src].edges.clear();
        self.groups[src].topo.reset();
        for &(u, v) in &moved {
            let re = self.groups[dest].topo.add_edge(u, v);
            debug_assert!(
                matches!(re, Ok(true)),
                "disjoint-group merge cannot create cycles or duplicates"
            );
            self.groups[dest].edges.insert((u, v));
            self.node_group.insert(u, dest);
            self.node_group.insert(v, dest);
        }
        for p in self.group_of_partition.iter_mut() {
            if *p == src {
                *p = dest;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_behaves_like_global_graph() {
        let mut w = ShardedWaits::new(8, 1);
        assert!(w.add_edge(0, 1, 0).unwrap());
        assert!(w.add_edge(1, 2, 0).unwrap());
        assert!(!w.add_edge(0, 1, 0).unwrap());
        let cycle = w.add_edge(2, 0, 0).unwrap_err();
        assert!(!cycle.nodes().is_empty());
        assert_eq!(w.successors(0), vec![1]);
        w.clear_out_edges(0);
        assert!(w.successors(0).is_empty());
        assert_eq!(w.edge_count(), 1);
    }

    #[test]
    fn cross_partition_deadlock_is_detected() {
        // t0 waits on t1 in partition 0; t1 waits on t0 in partition 1.
        // Per-partition graphs alone would each stay acyclic — the
        // coalescing rule must catch the global 2-cycle.
        let mut w = ShardedWaits::new(4, 2);
        w.add_edge(0, 1, 0).unwrap();
        let cycle = w.add_edge(1, 0, 1).unwrap_err();
        let mut nodes = cycle.nodes().to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes, vec![0, 1]);
        assert_eq!(w.merge_count(), 1, "the two groups had to coalesce");
    }

    #[test]
    fn three_partition_chain_deadlock() {
        let mut w = ShardedWaits::new(8, 4);
        w.add_edge(0, 1, 0).unwrap();
        w.add_edge(1, 2, 1).unwrap();
        w.add_edge(2, 3, 2).unwrap();
        assert!(w.add_edge(3, 0, 3).is_err());
        assert!(w.merge_count() >= 3);
    }

    #[test]
    fn partitioned_workload_never_merges() {
        let mut w = ShardedWaits::new(64, 4);
        // Four disjoint transaction populations, one per partition.
        for p in 0..4u32 {
            let base = p * 16;
            for i in 0..8 {
                w.add_edge(base + i, base + i + 1, p as usize).unwrap();
            }
        }
        assert_eq!(w.merge_count(), 0);
        assert_eq!(w.group_count(), 4);
        assert_eq!(w.edge_count(), 32);
    }

    #[test]
    fn detach_releases_nodes_for_other_partitions() {
        let mut w = ShardedWaits::new(8, 2);
        w.add_edge(0, 1, 0).unwrap();
        w.detach_node(0);
        assert!(w.successors(0).is_empty());
        assert_eq!(w.edge_count(), 0);
        // 1 is edge-free now: waiting in partition 1 must not merge.
        w.add_edge(1, 2, 1).unwrap();
        assert_eq!(w.merge_count(), 0);
    }

    #[test]
    fn clear_out_edges_keeps_incoming_waits() {
        let mut w = ShardedWaits::new(8, 2);
        w.add_edge(0, 1, 0).unwrap();
        w.add_edge(2, 0, 0).unwrap();
        w.clear_out_edges(0);
        assert!(w.successors(0).is_empty());
        assert_eq!(w.successors(2), vec![0]);
        // The waits-on-0 edge still closes cycles.
        assert!(w.add_edge(0, 2, 1).is_err());
    }
}
