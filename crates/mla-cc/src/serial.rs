//! The degenerate baseline: one transaction at a time.

use mla_model::TxnId;
use mla_sim::{Control, Decision, World};

/// A single global token: a transaction acquires it at its first step and
/// releases it at commit (or abort). Produces exactly the serial
/// executions — the strictest `C` of §3.2 and the paper's k = 2 extreme.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialControl {
    holder: Option<TxnId>,
}

impl Control for SerialControl {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn decide(&mut self, txn: TxnId, _world: &World) -> Decision {
        match self.holder {
            None => {
                self.holder = Some(txn);
                Decision::Grant
            }
            Some(h) if h == txn => Decision::Grant,
            Some(_) => Decision::Defer,
        }
    }

    fn committed(&mut self, txn: TxnId, _world: &World) {
        if self.holder == Some(txn) {
            self.holder = None;
        }
    }

    fn aborted(&mut self, txn: TxnId, _world: &World) {
        if self.holder == Some(txn) {
            self.holder = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, TxnInstance};
    use std::sync::Arc;

    #[test]
    fn serial_control_produces_serial_executions() {
        let e = EntityId;
        let programs: Vec<Arc<ScriptProgram>> = (0..5)
            .map(|i| {
                Arc::new(ScriptProgram::new(vec![
                    Add(e(i), 1),
                    Add(e((i + 1) % 5), 1),
                    Add(e((i + 2) % 5), 1),
                ]))
            })
            .collect();
        let instances: Vec<TxnInstance> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| TxnInstance::new(TxnId(i as u32), p, Arc::new(NoBreakpoints { k: 2 })))
            .collect();
        let out = run(
            Nest::flat(5),
            instances,
            [],
            &[0, 1, 2, 3, 4],
            &SimConfig::seeded(17),
            &mut SerialControl::default(),
        );
        assert_eq!(out.metrics.committed, 5);
        assert_eq!(out.metrics.aborts, 0);
        assert!(out.execution.is_serial(), "token forces seriality");
        assert!(out.metrics.defers > 0, "contention forces waiting");
    }
}
