//! Runtime state machine for per-universe static certificates.
//!
//! A [`StaticCert`] is an immutable per-universe lattice of §5 proofs;
//! the [`CertGuard`] wraps one with the mutable **armed** state the
//! schedulers need at admission time:
//!
//! * An in-footprint step of a transaction whose universe is *armed* is
//!   granted on the fast path — the proof covers it, and (because no
//!   realizable closure cycle can pass through a certified transaction,
//!   and per-entity order is directly transitive) the closure engine may
//!   omit the step entirely without changing any later verdict.
//! * An **off-footprint** step is evidence the run strayed from the
//!   certified workload. The stray's own universe is disarmed (its
//!   profile is broken), and so is every certified universe whose
//!   recorded entity union contains the strayed entity — their proofs
//!   assumed the stray's modeled footprint. Universes whose entities the
//!   stray never touches keep the fast path: their proofs only depend on
//!   conflicts the stray cannot create.
//! * With re-arming enabled ([`CertGuard::new`] `rearm = true`), each
//!   disarmed universe remembers which foreign transactions are to
//!   blame. Once every blamed transaction's journal entries drain — it
//!   aborted, or committed and was evicted from the live window so its
//!   steps can join no new closure cycle — the universe **re-arms** and
//!   skips again.
//!
//! The contract matches [`mla_core::cert`]: per-universe voiding (and
//! re-arming) is sound when every transaction *other than the strays*
//! conforms to its certified profile; a stray's whole access set is
//! treated as unknown, so every universe it touches is disarmed at
//! first contact, before the stray's step is granted.

use std::collections::BTreeSet;

use mla_core::cert::StaticCert;
use mla_model::{EntityId, TxnId};

/// What the certificate has to say about a candidate step.
#[derive(Debug, PartialEq, Eq)]
pub enum CertAdmit {
    /// In-footprint step of an armed universe: grant on the fast path.
    /// Carries the universe id (for per-universe accounting).
    Skip(u32),
    /// The certificate is silent (uncertified or disarmed universe):
    /// consult the closure engine.
    Engine,
    /// An off-footprint stray just disarmed at least one universe. The
    /// caller must catch the engine up on every step granted so far
    /// before deciding this one through it.
    Voided,
}

/// A [`StaticCert`] plus the armed/blamed state and skip accounting.
#[derive(Clone, Debug)]
pub struct CertGuard {
    cert: StaticCert,
    /// Which universes currently ride the fast path. Starts as the
    /// lattice's certified set; off-footprint strays disarm entries.
    armed: Vec<bool>,
    /// Per-universe blame: the foreign transactions whose strays
    /// disarmed it (tracked only when re-arming is enabled).
    blame: Vec<BTreeSet<TxnId>>,
    /// Whether draining a universe's blame set re-arms it.
    rearm: bool,
    /// Certified universes currently disarmed. Kept so [`Self::sweep`]
    /// — which the prevention scheduler calls on every decision — is a
    /// single integer compare on the common all-armed path instead of a
    /// scan over the lattice.
    disarmed: usize,
    /// Fast-path grants per universe.
    pub skips: Vec<u64>,
    /// Universe-disarm events (one stray may disarm several universes).
    pub voids: u64,
    /// Universes re-armed after their blame drained.
    pub re_arms: u64,
}

impl CertGuard {
    /// Wraps `cert`; `rearm` controls whether disarmed universes come
    /// back once their blamed transactions drain.
    pub fn new(cert: StaticCert, rearm: bool) -> Self {
        let n = cert.universe_count();
        let armed = (0..n as u32).map(|u| cert.is_certified(u)).collect();
        CertGuard {
            cert,
            armed,
            blame: vec![BTreeSet::new(); n],
            rearm,
            disarmed: 0,
            skips: vec![0; n],
            voids: 0,
            re_arms: 0,
        }
    }

    /// The wrapped certificate.
    pub fn cert(&self) -> &StaticCert {
        &self.cert
    }

    /// Whether universe `u` currently rides the fast path.
    pub fn is_armed(&self, u: u32) -> bool {
        self.armed.get(u as usize).copied().unwrap_or(false)
    }

    /// Total fast-path grants across universes.
    pub fn total_skips(&self) -> u64 {
        self.skips.iter().sum()
    }

    /// Admits, defers to the engine, or voids for a candidate step of
    /// `txn` on `entity`. Mutates the armed state and counters.
    pub fn admit(&mut self, txn: TxnId, entity: EntityId) -> CertAdmit {
        let universe = self.cert.universe_of(txn);
        if self.cert.footprint_contains(txn, entity) {
            if let Some(u) = universe {
                if self.armed[u as usize] {
                    self.skips[u as usize] += 1;
                    return CertAdmit::Skip(u);
                }
            }
            return CertAdmit::Engine;
        }
        // Off-footprint: `txn` is foreign to the proofs (out-of-range,
        // or straying outside its modeled footprint). Disarm its own
        // universe and every certified universe whose entity union
        // contains the strayed entity; blame accrues even to
        // already-disarmed universes, so a universe only re-arms once
        // *every* transaction that touched it drains.
        let mut voided = false;
        for u in 0..self.armed.len() {
            if !self.cert.is_certified(u as u32) {
                continue;
            }
            let touched = universe == Some(u as u32)
                || self
                    .cert
                    .universe_entities(u as u32)
                    .binary_search(&entity)
                    .is_ok();
            if !touched {
                continue;
            }
            if self.armed[u] {
                self.armed[u] = false;
                self.disarmed += 1;
                self.voids += 1;
                voided = true;
            }
            if self.rearm {
                self.blame[u].insert(txn);
            }
        }
        if voided {
            CertAdmit::Voided
        } else {
            CertAdmit::Engine
        }
    }

    /// Re-arms every disarmed universe whose blamed transactions have
    /// all drained, per the caller's `drained` predicate (typically:
    /// committed and evicted from the live window). No-op unless
    /// re-arming is enabled.
    pub fn sweep(&mut self, mut drained: impl FnMut(TxnId) -> bool) {
        if !self.rearm || self.disarmed == 0 {
            return;
        }
        for u in 0..self.armed.len() {
            if self.armed[u] || !self.cert.is_certified(u as u32) {
                continue;
            }
            let keep: BTreeSet<TxnId> = self.blame[u]
                .iter()
                .copied()
                .filter(|&t| !drained(t))
                .collect();
            self.blame[u] = keep;
            if self.blame[u].is_empty() {
                self.armed[u] = true;
                self.disarmed -= 1;
                self.re_arms += 1;
            }
        }
    }

    /// Records that `txn` rolled back: its journal entries are gone, so
    /// it no longer holds blame (if it strays again after restarting,
    /// it will be re-blamed at that stray).
    pub fn on_aborted(&mut self, txn: TxnId) {
        if !self.rearm {
            return;
        }
        for u in 0..self.armed.len() {
            if self.blame[u].remove(&txn)
                && self.blame[u].is_empty()
                && !self.armed[u]
                && self.cert.is_certified(u as u32)
            {
                self.armed[u] = true;
                self.disarmed -= 1;
                self.re_arms += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    /// Universe 0 (txns 0, 1) certified on {1, 2}; universe 1 (txn 2)
    /// certified on {7}; universe 2 (txn 3) condemned on {9}.
    fn guard(rearm: bool) -> CertGuard {
        let cert = StaticCert::per_universe(
            3,
            vec![vec![e(1)], vec![e(2)], vec![e(7)], vec![e(9)]],
            vec![0, 0, 1, 2],
            vec![true, true, false],
        );
        CertGuard::new(cert, rearm)
    }

    #[test]
    fn skips_count_per_universe_and_condemned_goes_to_engine() {
        let mut g = guard(false);
        assert_eq!(g.admit(TxnId(0), e(1)), CertAdmit::Skip(0));
        assert_eq!(g.admit(TxnId(2), e(7)), CertAdmit::Skip(1));
        assert_eq!(g.admit(TxnId(3), e(9)), CertAdmit::Engine);
        assert_eq!(g.skips, vec![1, 1, 0]);
        assert_eq!(g.total_skips(), 2);
    }

    #[test]
    fn stray_disarms_only_touched_universes() {
        let mut g = guard(false);
        // Foreign txn 9 strays on entity 2: universe 0's union contains
        // it, universe 1's does not.
        assert_eq!(g.admit(TxnId(9), e(2)), CertAdmit::Voided);
        assert!(!g.is_armed(0));
        assert!(g.is_armed(1));
        assert_eq!(g.voids, 1);
        // Universe 0 now goes to the engine even in-footprint...
        assert_eq!(g.admit(TxnId(0), e(1)), CertAdmit::Engine);
        // ...while universe 1 keeps skipping.
        assert_eq!(g.admit(TxnId(2), e(7)), CertAdmit::Skip(1));
        // Without re-arming the disarm is permanent.
        g.sweep(|_| true);
        assert!(!g.is_armed(0));
        assert_eq!(g.re_arms, 0);
    }

    #[test]
    fn own_universe_disarms_on_stray_even_off_every_union() {
        let mut g = guard(false);
        // Txn 1 (universe 0) strays onto entity 42, in nobody's union:
        // its own profile is broken, so universe 0 must still disarm.
        assert_eq!(g.admit(TxnId(1), e(42)), CertAdmit::Voided);
        assert!(!g.is_armed(0));
        assert!(g.is_armed(1));
    }

    #[test]
    fn rearm_waits_for_every_blamed_txn_to_drain() {
        let mut g = guard(true);
        assert_eq!(g.admit(TxnId(9), e(2)), CertAdmit::Voided);
        // A second stray touches universe 0 while it is already down:
        // blame accrues without a new void event.
        assert_eq!(g.admit(TxnId(8), e(1)), CertAdmit::Engine);
        assert_eq!(g.voids, 1);
        g.sweep(|t| t == TxnId(9));
        assert!(!g.is_armed(0), "txn 8 still live");
        g.sweep(|t| t == TxnId(8));
        assert!(g.is_armed(0), "all blame drained");
        assert_eq!(g.re_arms, 1);
        assert_eq!(g.admit(TxnId(0), e(1)), CertAdmit::Skip(0));
    }

    #[test]
    fn abort_drains_blame_immediately() {
        let mut g = guard(true);
        assert_eq!(g.admit(TxnId(9), e(7)), CertAdmit::Voided);
        assert!(!g.is_armed(1));
        g.on_aborted(TxnId(9));
        assert!(g.is_armed(1), "rolled-back stray holds no blame");
        assert_eq!(g.re_arms, 1);
    }

    #[test]
    fn condemned_universe_never_arms() {
        let mut g = guard(true);
        assert_eq!(g.admit(TxnId(9), e(9)), CertAdmit::Engine);
        g.sweep(|_| true);
        assert!(!g.is_armed(2));
        assert_eq!(g.re_arms, 0);
    }
}
