//! The safety oracle: schedulers are tested against the theory.
//!
//! Every simulation's final history is fed back through the *offline*
//! decision procedures of `mla-core`: Theorem 2 for the multilevel
//! controls, the conflict-graph test for the serializable baselines. A
//! control with a scheduling bug thus fails loudly in the test suite and
//! experiment harness instead of silently producing garbage numbers.

use mla_core::nest::Nest;
use mla_core::serializability::is_serializable;
use mla_core::theorem::is_correctable;
use mla_sim::sim::SimOutcome;
use mla_txn::RuntimeSpec;

/// Whether an outcome's final execution is correctable (Theorem 2) under
/// the nest and breakpoint specification the run used.
pub fn is_correctable_outcome(out: &SimOutcome, nest: &Nest, spec: &RuntimeSpec) -> bool {
    is_correctable(&out.execution, nest, spec).expect("outcome execution matches nest and spec")
}

/// Whether an outcome's final execution is conflict-serializable.
pub fn is_serializable_outcome(out: &SimOutcome) -> bool {
    is_serializable(&out.execution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::{EntityId, TxnId};
    use mla_sim::control::FreeForAll;
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, TxnInstance};
    use std::sync::Arc;

    /// The free-for-all control on a conflict-heavy workload should —
    /// with high probability across seeds — produce a history that FAILS
    /// the oracle, demonstrating the oracle actually discriminates.
    #[test]
    fn oracle_rejects_free_for_all_garbage() {
        let e = EntityId;
        let mut rejected = 0;
        for seed in 0..20 {
            let instances: Vec<TxnInstance> = (0..6)
                .map(|i| {
                    TxnInstance::new(
                        TxnId(i),
                        Arc::new(ScriptProgram::new(vec![
                            Add(e(i % 2), 1),
                            Add(e((i + 1) % 2), 1),
                        ])),
                        Arc::new(NoBreakpoints { k: 2 }),
                    )
                })
                .collect();
            let out = run(
                mla_core::nest::Nest::flat(6),
                instances,
                [],
                &[0; 6],
                &SimConfig::seeded(seed),
                &mut FreeForAll,
            );
            let spec = RuntimeSpec::new(2);
            let nest = mla_core::nest::Nest::flat(6);
            let ok = is_correctable_outcome(&out, &nest, &spec);
            assert_eq!(
                ok,
                is_serializable_outcome(&out),
                "k = 2 correctability must equal serializability"
            );
            if !ok {
                rejected += 1;
            }
        }
        assert!(
            rejected > 0,
            "free-for-all on opposing two-entity weaves should violate \
             serializability for at least one seed"
        );
    }
}
