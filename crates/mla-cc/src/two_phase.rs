//! Strict two-phase locking with wound-wait deadlock avoidance \[EGLT\].

use std::collections::{HashMap, HashSet};

use mla_model::{EntityId, TxnId};
use mla_sim::{Control, Decision, World};

/// Strict 2PL: a transaction locks each entity at first access and holds
/// every lock until commit or abort. Deadlock is avoided with
/// *wound-wait*: priorities are fixed (lower id = older = higher
/// priority); an older requester wounds (aborts) a younger holder, a
/// younger requester waits. Fixed priorities make the scheme
/// starvation-free: the oldest transaction always runs to completion.
#[derive(Clone, Debug, Default)]
pub struct TwoPhaseLocking {
    locks: HashMap<EntityId, TxnId>,
    held: HashMap<TxnId, HashSet<EntityId>>,
}

impl TwoPhaseLocking {
    /// Fresh lock table.
    pub fn new() -> Self {
        Self::default()
    }

    fn release_all(&mut self, txn: TxnId) {
        if let Some(entities) = self.held.remove(&txn) {
            for e in entities {
                if self.locks.get(&e) == Some(&txn) {
                    self.locks.remove(&e);
                }
            }
        }
    }
}

impl Control for TwoPhaseLocking {
    fn name(&self) -> &'static str {
        "strict-2pl"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        let entity = world
            .instance(txn)
            .next_entity()
            .expect("decide called with a next step");
        match self.locks.get(&entity) {
            None => {
                self.locks.insert(entity, txn);
                self.held.entry(txn).or_default().insert(entity);
                Decision::Grant
            }
            Some(&holder) if holder == txn => Decision::Grant,
            Some(&holder) => {
                if txn.0 < holder.0 {
                    // Older wounds younger.
                    Decision::Abort(vec![holder])
                } else {
                    Decision::Defer
                }
            }
        }
    }

    fn committed(&mut self, txn: TxnId, _world: &World) {
        self.release_all(txn);
    }

    fn aborted(&mut self, txn: TxnId, _world: &World) {
        self.release_all(txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, TxnInstance};
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    fn ring_instances(n: u32, steps: u32) -> Vec<TxnInstance> {
        // Transaction i walks entities i, i+1, ..., i+steps-1 (mod n):
        // heavy overlap, classic deadlock shape.
        (0..n)
            .map(|i| {
                let ops = (0..steps).map(|s| Add(e((i + s) % n), 1)).collect();
                TxnInstance::new(
                    TxnId(i),
                    Arc::new(ScriptProgram::new(ops)),
                    Arc::new(NoBreakpoints { k: 2 }),
                )
            })
            .collect()
    }

    #[test]
    fn completes_deadlock_prone_ring_serializably() {
        let n = 8;
        let out = run(
            Nest::flat(n as usize),
            ring_instances(n, 4),
            [],
            &vec![0; n as usize],
            &SimConfig::seeded(2),
            &mut TwoPhaseLocking::new(),
        );
        assert_eq!(out.metrics.committed, n as u64);
        assert!(!out.metrics.timed_out);
        assert!(
            oracle::is_serializable_outcome(&out),
            "strict 2PL histories are serializable"
        );
        // Each entity was incremented once per touching transaction.
        let total: i64 = (0..n).map(|i| out.store.value(e(i))).sum();
        assert_eq!(total, (n * 4) as i64);
    }

    #[test]
    fn wound_wait_prefers_older() {
        // t0 (old) and t1 (young) collide; t1 should absorb the aborts.
        let out = run(
            Nest::flat(2),
            ring_instances(2, 2),
            [],
            &[0, 0],
            &SimConfig::seeded(3),
            &mut TwoPhaseLocking::new(),
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(out.attempts[0] <= out.attempts[1], "older never wounded");
    }

    #[test]
    fn no_contention_no_waits() {
        let instances: Vec<TxnInstance> = (0..4)
            .map(|i| {
                TxnInstance::new(
                    TxnId(i),
                    Arc::new(ScriptProgram::new(vec![Add(e(10 + i), 1)])),
                    Arc::new(NoBreakpoints { k: 2 }),
                )
            })
            .collect();
        let out = run(
            Nest::flat(4),
            instances,
            [],
            &[0; 4],
            &SimConfig::seeded(4),
            &mut TwoPhaseLocking::new(),
        );
        assert_eq!(out.metrics.committed, 4);
        assert_eq!(out.metrics.aborts, 0);
        assert_eq!(out.metrics.defers, 0);
    }
}
