//! Serialization-graph testing: the serializable instance of "generate
//! the dependency edges explicitly and check for cycles" that §6
//! generalizes.

use mla_graph::IncrementalTopo;
use mla_model::TxnId;
use mla_sim::{Control, Decision, World};

use crate::victim::VictimPolicy;

/// Online conflict-graph acyclicity. Before granting a step on entity
/// `x`, the control adds the conflict edge from `x`'s latest live
/// accessor to the requester; if that edge would close a cycle, a victim
/// on the cycle is rolled back instead. Committed transactions keep their
/// nodes (their edges constrain future serialization orders) but are
/// never chosen as victims directly — the journal cascade may still reach
/// them, which the metrics record as a commit rollback.
#[derive(Debug)]
pub struct SgtControl {
    graph: IncrementalTopo,
    policy: VictimPolicy,
}

impl SgtControl {
    /// SGT over `txn_count` transactions with the given victim policy.
    pub fn new(txn_count: usize, policy: VictimPolicy) -> Self {
        SgtControl {
            graph: IncrementalTopo::new(txn_count),
            policy,
        }
    }
}

impl Control for SgtControl {
    fn name(&self) -> &'static str {
        "sgt"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        let entity = world
            .instance(txn)
            .next_entity()
            .expect("decide called with a next step");
        let Some(prev) = world.store.latest_access(entity) else {
            return Decision::Grant;
        };
        if prev.txn == txn {
            return Decision::Grant;
        }
        match self.graph.add_edge(prev.txn.0, txn.0) {
            Ok(_) => Decision::Grant,
            Err(cycle) => {
                // Live transactions on the cycle are the candidates; the
                // requester is always live and always on the cycle.
                let candidates: Vec<TxnId> = cycle
                    .nodes()
                    .iter()
                    .map(|&v| TxnId(v))
                    .filter(|&t| world.status[t.index()] != mla_sim::TxnStatus::Committed)
                    .collect();
                let victim = self.policy.choose(txn, &candidates, world);
                Decision::Abort(vec![victim])
            }
        }
    }

    fn aborted(&mut self, _txn: TxnId, world: &World) {
        // Rebuild from the surviving journal. Merely detaching the victim
        // would also drop transitive constraints chained *through* it:
        // with records w_A, r_B, w_C on one entity the edges are A->B and
        // B->C; if B (a pure reader) is rolled back while A and C's
        // records survive, the A->C obligation must be re-derived or a
        // later C->...->A edge would be wrongly accepted.
        let n = self.graph.node_count();
        let mut g = IncrementalTopo::new(n);
        let mut last: std::collections::HashMap<mla_model::EntityId, TxnId> =
            std::collections::HashMap::new();
        for r in world.store.journal() {
            if let Some(&prev) = last.get(&r.entity) {
                if prev != r.txn {
                    g.add_edge(prev.0, r.txn.0).expect(
                        "surviving journal stays acyclic: every step was certified \
                         and record removal only relaxes the conflict graph",
                    );
                }
            }
            last.insert(r.entity, r.txn);
        }
        self.graph = g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, TxnInstance};
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    fn swarm(n: u32, entities: u32, len: u32) -> Vec<TxnInstance> {
        (0..n)
            .map(|i| {
                let ops = (0..len)
                    .map(|s| Add(e((i * 7 + s * 3) % entities), 1))
                    .collect();
                TxnInstance::new(
                    TxnId(i),
                    Arc::new(ScriptProgram::new(ops)),
                    Arc::new(NoBreakpoints { k: 2 }),
                )
            })
            .collect()
    }

    #[test]
    fn contended_swarm_is_serializable() {
        for policy in [
            VictimPolicy::Requester,
            VictimPolicy::FewestSteps,
            VictimPolicy::MostSteps,
        ] {
            let out = run(
                Nest::flat(10),
                swarm(10, 4, 3),
                [],
                &[0; 10],
                &SimConfig::seeded(8),
                &mut SgtControl::new(10, policy),
            );
            assert_eq!(out.metrics.committed, 10, "policy {policy:?}");
            assert!(!out.metrics.timed_out);
            assert!(
                oracle::is_serializable_outcome(&out),
                "SGT history must be serializable under {policy:?}"
            );
        }
    }

    #[test]
    fn optimism_beats_locking_on_low_conflict() {
        // Disjoint entities: SGT never aborts or defers.
        let instances: Vec<TxnInstance> = (0..6)
            .map(|i| {
                TxnInstance::new(
                    TxnId(i),
                    Arc::new(ScriptProgram::new(vec![
                        Add(e(100 + 2 * i), 1),
                        Add(e(101 + 2 * i), 1),
                    ])),
                    Arc::new(NoBreakpoints { k: 2 }),
                )
            })
            .collect();
        let out = run(
            Nest::flat(6),
            instances,
            [],
            &[0; 6],
            &SimConfig::seeded(9),
            &mut SgtControl::new(6, VictimPolicy::Requester),
        );
        assert_eq!(out.metrics.committed, 6);
        assert_eq!(out.metrics.aborts, 0);
        assert_eq!(out.metrics.defers, 0);
    }

    #[test]
    fn conflicting_weave_forces_abort_but_recovers() {
        // Two transactions in opposite entity order with tight timing.
        let instances = vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![Add(e(0), 1), Add(e(1), 1)])),
                Arc::new(NoBreakpoints { k: 2 }),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![Add(e(1), 1), Add(e(0), 1)])),
                Arc::new(NoBreakpoints { k: 2 }),
            ),
        ];
        let out = run(
            Nest::flat(2),
            instances,
            [],
            &[0, 0],
            &SimConfig::seeded(10),
            &mut SgtControl::new(2, VictimPolicy::FewestSteps),
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(oracle::is_serializable_outcome(&out));
    }
}
