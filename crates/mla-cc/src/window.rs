//! The live window: which journal steps the online closure must still
//! consider.
//!
//! The §6 discussion makes clear that a committed transaction's steps may
//! still matter (commit points are hard to determine under multilevel
//! atomicity). Keeping *every* step forever would make each online check
//! O(history²), so the window evicts committed transactions under a
//! closure-derived rule:
//!
//! > a committed transaction `C` is evicted once **no live (uncommitted)
//! > transaction has a coherent-closure pair into any of `C`'s steps**.
//!
//! Soundness: a *new* pair into `C` can only arise by (i) lifting an
//! existing pair `(α, c)` when `α`'s live owner continues a
//! breakpoint-free segment — but then that owner already has a pair into
//! `C` and blocks eviction; or (ii) transitivity `(w, u), (u, c)` — if
//! `u` is live it already blocks eviction, and if `u` is committed the
//! new pair `(w, u)` must itself come from a live transaction whose pair
//! into `C` the (fully transitive) closure already contains, blocking
//! eviction directly. Once no live transaction reaches `C`, nothing ever
//! will again, `C` can join no new cycle, and its steps can be dropped.
//!
//! An earlier cohort-based rule ("evict when everyone uncommitted at
//! `C`'s commit has committed") was either unsound (if restricted to
//! started transactions — a late starter can reach `C` transitively) or
//! so conservative it never fired in steady state; see the A2 ablation.

use std::collections::HashSet;

use mla_core::closure::CoherentClosure;
use mla_core::spec::ExecContext;
use mla_core::{BreakpointSpecification, ClosureEngine, EngineBackend};
use mla_model::{Execution, Step, TxnId};

use crate::admission::AdmissionView;

/// Tracks evicted committed transactions and builds window executions.
#[derive(Clone, Debug)]
pub struct LiveWindow {
    /// Transactions whose steps no longer participate in checks.
    evicted: HashSet<TxnId>,
    /// Whether eviction is active (the A2 ablation disables it to
    /// measure the cost of checking against the full history).
    enabled: bool,
}

impl Default for LiveWindow {
    fn default() -> Self {
        LiveWindow {
            evicted: HashSet::new(),
            enabled: true,
        }
    }
}

impl LiveWindow {
    /// Fresh window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables eviction (A2 ablation). Disabling keeps every
    /// committed transaction's steps in every future check.
    pub fn set_eviction(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Records a rollback: the transaction is live again (commit
    /// rollbacks included), so it must not stay evicted.
    pub fn on_aborted(&mut self, txn: TxnId) {
        self.evicted.remove(&txn);
    }

    /// Applies the eviction rule using the closure just computed over the
    /// current window.
    ///
    /// Build the transaction-level pair graph (`u -> C` iff some step of
    /// `u` precedes some step of `C` in the closure) and keep every
    /// transaction *reachable from a live transaction* along it; evict
    /// the committed rest. Reachability — not just direct live
    /// predecessors — is required: a committed transaction can be a
    /// carrier between a late in-pair and an early out-pair once
    /// condition-(b) lifts extend the out-pair across its whole segment,
    /// so a live transaction's influence can route through a chain of
    /// committed transactions (this exact shape arose in the CAD
    /// workload and is covered by a regression test).
    pub fn maintain_after<V: AdmissionView + ?Sized>(
        &mut self,
        ctx: &ExecContext<'_>,
        closure: &CoherentClosure,
        view: &V,
    ) {
        if !self.enabled {
            return;
        }
        let t_count = ctx.txn_count();
        // Transaction-level pair edges: u -> owner(v) for every frontier
        // entry of every step v.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); t_count];
        for v in 0..ctx.n() {
            let tv = ctx.txn_of(v);
            let frontier = closure.frontier(v);
            for (u, &f) in frontier.iter().enumerate() {
                if f >= 0 && u != tv && !succ[u].contains(&tv) {
                    succ[u].push(tv);
                }
            }
        }
        // Forward reachability from live transactions.
        let mut keep = vec![false; t_count];
        let mut stack: Vec<usize> = (0..t_count)
            .filter(|&l| !view.is_committed(ctx.txn_id(l)))
            .collect();
        for &l in &stack {
            keep[l] = true;
        }
        while let Some(u) = stack.pop() {
            for &w in &succ[u] {
                if !keep[w] {
                    keep[w] = true;
                    stack.push(w);
                }
            }
        }
        for (local, &kept) in keep.iter().enumerate() {
            let t = ctx.txn_id(local);
            if !kept && view.is_committed(t) {
                self.evicted.insert(t);
            }
        }
    }

    /// Applies the same eviction rule against a [`ClosureEngine`]'s
    /// maintained closure instead of a freshly computed batch one, and
    /// *projects the evicted transactions out of the engine* so their
    /// frontier columns stop costing work on every future step.
    ///
    /// The rule itself lives on the engine
    /// ([`ClosureEngine::evict_unreachable`]): keep every transaction
    /// forward-reachable from an uncommitted one along the maintained
    /// pair relation, evict the committed rest. Must be called with no
    /// tentative step pending (i.e. after
    /// [`ClosureEngine::commit_step`] / `rollback_step`), since eviction
    /// mutates the maintained state.
    pub fn maintain_with_engine<S: BreakpointSpecification, V: AdmissionView + ?Sized>(
        &mut self,
        engine: &mut ClosureEngine<S>,
        view: &V,
    ) {
        if !self.enabled {
            return;
        }
        for t in engine.evict_unreachable(|t| !view.is_committed(t)) {
            self.evicted.insert(t);
        }
    }

    /// [`maintain_with_engine`](Self::maintain_with_engine) over an
    /// [`EngineBackend`]: the unsharded engine does the global scan, the
    /// sharded one projects only the shard groups whose state changed
    /// since the last maintenance pass — same evictions either way.
    pub fn maintain_with_backend<S, V>(&mut self, backend: &mut EngineBackend<S>, view: &V)
    where
        S: BreakpointSpecification + Clone + Send + 'static,
        V: AdmissionView + ?Sized,
    {
        if !self.enabled {
            return;
        }
        for t in backend.evict_unreachable(|t| !view.is_committed(t)) {
            self.evicted.insert(t);
        }
    }

    /// Number of currently evicted transactions (observability).
    pub fn evicted_count(&self) -> usize {
        self.evicted.len()
    }

    /// Whether `txn` is committed and projected out of the window — its
    /// steps can join no new closure cycle (the certificate re-arm
    /// protocol's drain condition).
    pub fn is_evicted(&self, txn: TxnId) -> bool {
        self.evicted.contains(&txn)
    }

    /// The window execution: the live journal minus evicted transactions,
    /// optionally extended with a hypothetical next step (the candidate
    /// the control is deciding about).
    pub fn execution_with<V: AdmissionView + ?Sized>(
        &self,
        view: &V,
        candidate: Option<Step>,
    ) -> Execution {
        let mut steps: Vec<Step> = view
            .history_steps()
            .into_iter()
            .filter(|s| !self.evicted.contains(&s.txn))
            .collect();
        if let Some(c) = candidate {
            steps.push(c);
        }
        Execution::new(steps).expect("window preserves per-transaction contiguity")
    }

    /// Builds the candidate step for `txn`'s next access (values are
    /// irrelevant to the closure, which is order- and entity-based).
    pub fn candidate_step<V: AdmissionView + ?Sized>(view: &V, txn: TxnId) -> Step {
        view.candidate(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_core::closure::CoherentClosure;
    use mla_core::nest::Nest;
    use mla_core::spec::ExecContext;
    use mla_model::program::{ScriptOp, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::{Metrics, TxnStatus, World};
    use mla_storage::Store;
    use mla_txn::{NoBreakpoints, RuntimeSpec, TxnInstance};
    use std::sync::Arc;

    /// Two transactions; t0 performs both steps and commits, t1 performs
    /// one step on a disjoint entity.
    fn world() -> World {
        let mk = |i: u32, a: u32, b: u32| {
            TxnInstance::new(
                TxnId(i),
                Arc::new(ScriptProgram::new(vec![
                    ScriptOp::Add(EntityId(a), 1),
                    ScriptOp::Add(EntityId(b), 1),
                ])),
                Arc::new(NoBreakpoints { k: 2 }),
            )
        };
        let mut w = World {
            store: Store::new([]),
            instances: vec![mk(0, 0, 1), mk(1, 5, 6)],
            status: vec![TxnStatus::Running; 2],
            nest: Nest::flat(2),
            clock: 0,
            metrics: Metrics::default(),
        };
        for _ in 0..2 {
            let s = w.instances[0].perform(0);
            w.store.perform(TxnId(0), s.seq, s.entity, |_| s.wrote);
        }
        w.status[0] = TxnStatus::Committed;
        let s = w.instances[1].perform(0);
        w.store.perform(TxnId(1), s.seq, s.entity, |_| s.wrote);
        w
    }

    fn closure_of<'a>(
        exec: &'a Execution,
        nest: &'a Nest,
        spec: &RuntimeSpec,
    ) -> (ExecContext<'a>, CoherentClosure) {
        let ctx = ExecContext::new(exec, nest, spec).unwrap();
        let closure = CoherentClosure::compute(&ctx);
        (ctx, closure)
    }

    #[test]
    fn unreachable_committed_txn_is_evicted() {
        let world = world();
        let mut window = LiveWindow::new();
        let spec = RuntimeSpec::new(2);
        let exec = window.execution_with(&world, None);
        let nest = Nest::flat(2);
        let (ctx, closure) = closure_of(&exec, &nest, &spec);
        window.maintain_after(&ctx, &closure, &world);
        // t0 committed, disjoint from live t1: no live pair-path -> evicted.
        assert_eq!(window.evicted_count(), 1);
        let after = window.execution_with(&world, None);
        assert!(after.steps().iter().all(|s| s.txn == TxnId(1)));
    }

    #[test]
    fn reachable_committed_txn_is_kept() {
        let mut world = world();
        // Live t1's second step touches entity 1 = t0's entity: the pair
        // t1 -> t0?? No: t1's step comes after, so the pair is t0 -> t1 —
        // which does NOT keep t0 (reachability follows pair direction
        // from live txns). Make the *live* txn the predecessor instead:
        // rebuild so t1 performed on entity 1 BEFORE t0's access... the
        // simplest reachable shape: t1 (live) step precedes a t0 step on
        // a shared entity in the journal.
        world.store = Store::new([]);
        world.instances = vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![
                    ScriptOp::Add(EntityId(1), 1),
                    ScriptOp::Add(EntityId(2), 1),
                ])),
                Arc::new(NoBreakpoints { k: 2 }),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![
                    ScriptOp::Add(EntityId(1), 1),
                    ScriptOp::Add(EntityId(9), 1),
                ])),
                Arc::new(NoBreakpoints { k: 2 }),
            ),
        ];
        // t1 touches entity 1 first (live), then t0 touches it and
        // finishes.
        let s = world.instances[1].perform(0);
        world.store.perform(TxnId(1), s.seq, s.entity, |_| s.wrote);
        for _ in 0..2 {
            let s = world.instances[0].perform(0);
            world.store.perform(TxnId(0), s.seq, s.entity, |_| s.wrote);
        }
        world.status = vec![TxnStatus::Committed, TxnStatus::Running];
        let mut window = LiveWindow::new();
        let spec = RuntimeSpec::new(2);
        let exec = window.execution_with(&world, None);
        let nest = Nest::flat(2);
        let (ctx, closure) = closure_of(&exec, &nest, &spec);
        window.maintain_after(&ctx, &closure, &world);
        assert_eq!(
            window.evicted_count(),
            0,
            "t0 has a live predecessor (t1 on entity 1) and must stay"
        );
    }

    #[test]
    fn disabled_eviction_keeps_everything() {
        let world = world();
        let mut window = LiveWindow::new();
        window.set_eviction(false);
        let spec = RuntimeSpec::new(2);
        let exec = window.execution_with(&world, None);
        let nest = Nest::flat(2);
        let (ctx, closure) = closure_of(&exec, &nest, &spec);
        window.maintain_after(&ctx, &closure, &world);
        assert_eq!(window.evicted_count(), 0);
    }

    #[test]
    fn abort_unevicts() {
        let world = world();
        let mut window = LiveWindow::new();
        let spec = RuntimeSpec::new(2);
        let exec = window.execution_with(&world, None);
        let nest = Nest::flat(2);
        let (ctx, closure) = closure_of(&exec, &nest, &spec);
        window.maintain_after(&ctx, &closure, &world);
        assert_eq!(window.evicted_count(), 1);
        window.on_aborted(TxnId(0)); // commit rollback resurrects t0
        assert_eq!(window.evicted_count(), 0);
    }

    #[test]
    fn engine_maintenance_matches_batch_rule_and_projects() {
        use mla_core::ClosureEngine;
        let world = world();
        let mut window = LiveWindow::new();
        let mut engine = ClosureEngine::new(Nest::flat(2), RuntimeSpec::new(2));
        for r in world.store.journal() {
            engine.apply_step(r.as_step()).expect("journal is acyclic");
            engine.commit_step();
        }
        assert_eq!(engine.live_count(), 3);
        window.maintain_with_engine(&mut engine, &world);
        // Same verdict as the batch rule: committed t0 is unreachable
        // from live t1 and gets evicted — and its rows leave the engine.
        assert_eq!(window.evicted_count(), 1);
        assert_eq!(engine.live_count(), 1);
        // Idempotent: a dead column is not evicted twice.
        window.maintain_with_engine(&mut engine, &world);
        assert_eq!(window.evicted_count(), 1);
        assert_eq!(engine.live_count(), 1);
    }

    #[test]
    fn backend_maintenance_matches_engine_rule() {
        use mla_core::EngineBackend;
        let world = world();
        for shards in [0usize, 1, 2, 4] {
            let mut window = LiveWindow::new();
            let mut backend =
                EngineBackend::with_shards(Nest::flat(2), RuntimeSpec::new(2), shards);
            for r in world.store.journal() {
                backend.apply_step(r.as_step()).expect("journal is acyclic");
                backend.commit_step();
            }
            window.maintain_with_backend(&mut backend, &world);
            assert_eq!(window.evicted_count(), 1, "shards={shards}");
            assert_eq!(backend.live_count(), 1, "shards={shards}");
        }
    }

    #[test]
    fn candidate_step_reflects_next_access() {
        let world = world();
        // t1 has performed one step; its candidate is seq 1 at entity 6.
        let c = LiveWindow::candidate_step(&world, TxnId(1));
        assert_eq!(c.seq, 1);
        assert_eq!(c.entity, EntityId(6));
    }
}
