//! Basic timestamp ordering \[L\].

use std::collections::HashMap;

use mla_model::{EntityId, TxnId};
use mla_sim::{Control, Decision, World};

/// Timestamp ordering: each transaction attempt receives a unique
/// timestamp at its first step; an access is granted only if the
/// transaction's timestamp is not older than the entity's latest granted
/// access (every step here is a read-modify-write, so one "last access"
/// timestamp per entity suffices). An out-of-order access aborts the
/// requester, which restarts with a fresh (younger) timestamp —
/// guaranteeing eventual progress.
#[derive(Clone, Debug, Default)]
pub struct TimestampOrdering {
    ts: HashMap<TxnId, u64>,
    entity_ts: HashMap<EntityId, u64>,
    next_ts: u64,
}

impl TimestampOrdering {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Control for TimestampOrdering {
    fn name(&self) -> &'static str {
        "timestamp-ordering"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        let entity = world
            .instance(txn)
            .next_entity()
            .expect("decide called with a next step");
        let my_ts = *self.ts.entry(txn).or_insert_with(|| {
            self.next_ts += 1;
            self.next_ts
        });
        match self.entity_ts.get(&entity) {
            Some(&last) if my_ts < last => Decision::Abort(vec![txn]),
            _ => {
                self.entity_ts.insert(entity, my_ts);
                Decision::Grant
            }
        }
    }

    fn aborted(&mut self, txn: TxnId, _world: &World) {
        // Fresh timestamp on restart.
        self.ts.remove(&txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, TxnInstance};
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    fn crossing_instances() -> Vec<TxnInstance> {
        // t0: e0 then e1; t1: e1 then e0 — opposite orders, so one of them
        // must abort under T/O whenever they overlap tightly.
        vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![Add(e(0), 1), Add(e(1), 1)])),
                Arc::new(NoBreakpoints { k: 2 }),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![Add(e(1), 1), Add(e(0), 1)])),
                Arc::new(NoBreakpoints { k: 2 }),
            ),
        ]
    }

    #[test]
    fn crossing_transactions_complete_serializably() {
        let out = run(
            Nest::flat(2),
            crossing_instances(),
            [],
            &[0, 0],
            &SimConfig::seeded(5),
            &mut TimestampOrdering::new(),
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(!out.metrics.timed_out);
        assert!(oracle::is_serializable_outcome(&out));
        assert_eq!(out.store.value(e(0)), 2);
        assert_eq!(out.store.value(e(1)), 2);
    }

    #[test]
    fn contended_swarm_progresses() {
        let instances: Vec<TxnInstance> = (0..12)
            .map(|i| {
                TxnInstance::new(
                    TxnId(i),
                    Arc::new(ScriptProgram::new(vec![
                        Add(e(i % 3), 1),
                        Add(e((i + 1) % 3), 1),
                    ])),
                    Arc::new(NoBreakpoints { k: 2 }),
                )
            })
            .collect();
        let out = run(
            Nest::flat(12),
            instances,
            [],
            &(0..12u64).map(|i| i * 2).collect::<Vec<_>>(),
            &SimConfig::seeded(6),
            &mut TimestampOrdering::new(),
        );
        assert_eq!(out.metrics.committed, 12);
        assert!(oracle::is_serializable_outcome(&out));
        let total: i64 = (0..3).map(|i| out.store.value(e(i))).sum();
        assert_eq!(total, 24);
    }
}
