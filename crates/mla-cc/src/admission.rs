//! The admission view: what the §6 schedulers actually need to know
//! about the world they are gating.
//!
//! [`MlaDetect`](crate::MlaDetect) and [`MlaPrevent`](crate::MlaPrevent)
//! were written against the simulator's [`World`], but nothing in their
//! decision procedure is simulator-specific: a decision consults the
//! nest, each transaction's progress (performed prefix length, breakpoint
//! state, finished/committed status), the candidate step, and — only on
//! the certificate-voiding replay path — the live history. This trait
//! names exactly that surface, so the same scheduler cores gate step
//! admission for the tick-driven simulator *and* for `mla-serve`'s
//! thread-per-core service against live MVCC storage. The simulator's
//! `World` is one implementation (a thin adapter over
//! [`mla_storage::StepSource`]); the service's admission gate is the
//! other.

use mla_core::nest::Nest;
use mla_model::{Step, TxnId};
use mla_sim::{TxnStatus, World};
use mla_storage::StepSource;

/// Read-only view of the transactions competing for admission.
pub trait AdmissionView {
    /// The k-nest relating the transactions.
    fn nest(&self) -> &Nest;

    /// Whether `t` is (tentatively) committed.
    fn is_committed(&self, t: TxnId) -> bool;

    /// Whether `t` has performed every step of its program.
    fn is_finished(&self, t: TxnId) -> bool;

    /// Number of steps `t` has performed in its current incarnation.
    fn performed_seq(&self, t: TxnId) -> u32;

    /// Whether `t`'s current position is a breakpoint of at least
    /// `level` (true before the first and after the last step).
    fn at_breakpoint(&self, t: TxnId, level: usize) -> bool;

    /// The step `t` is requesting admission for. Values are zero — the
    /// closure is order- and entity-based, never value-based.
    fn candidate(&self, t: TxnId) -> Step;

    /// The live history in performance order (certificate-voiding engine
    /// replay; never on the grant fast path).
    fn history_steps(&self) -> Vec<Step>;

    /// `level(a, b)` from the nest.
    fn level(&self, a: TxnId, b: TxnId) -> usize {
        self.nest().level(a, b)
    }
}

impl AdmissionView for World {
    fn nest(&self) -> &Nest {
        &self.nest
    }

    fn is_committed(&self, t: TxnId) -> bool {
        self.status[t.index()] == TxnStatus::Committed
    }

    fn is_finished(&self, t: TxnId) -> bool {
        self.instance(t).is_finished()
    }

    fn performed_seq(&self, t: TxnId) -> u32 {
        self.instance(t).seq()
    }

    fn at_breakpoint(&self, t: TxnId, level: usize) -> bool {
        self.instance(t).at_breakpoint(level)
    }

    fn candidate(&self, t: TxnId) -> Step {
        let inst = self.instance(t);
        Step {
            txn: t,
            seq: inst.seq(),
            entity: inst.next_entity().expect("candidate for a live step"),
            observed: 0,
            wrote: 0,
        }
    }

    fn history_steps(&self) -> Vec<Step> {
        self.store.live_steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_model::program::{ScriptOp, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::Metrics;
    use mla_storage::Store;
    use mla_txn::{NoBreakpoints, TxnInstance};
    use std::sync::Arc;

    #[test]
    fn world_view_mirrors_world_state() {
        let mut w = World {
            store: Store::new([(EntityId(0), 5)]),
            instances: vec![TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![
                    ScriptOp::Add(EntityId(0), 1),
                    ScriptOp::Add(EntityId(1), 1),
                ])),
                Arc::new(NoBreakpoints { k: 2 }),
            )],
            status: vec![TxnStatus::Running],
            nest: Nest::flat(1),
            clock: 0,
            metrics: Metrics::default(),
        };
        let view: &dyn Fn(&World) -> _ = &|w: &World| {
            (
                w.candidate(TxnId(0)),
                w.performed_seq(TxnId(0)),
                w.is_finished(TxnId(0)),
                w.is_committed(TxnId(0)),
            )
        };
        let (c, seq, fin, com) = view(&w);
        assert_eq!((c.seq, c.entity), (0, EntityId(0)));
        assert_eq!((seq, fin, com), (0, false, false));
        let s = w.instances[0].perform(5);
        w.store.perform(TxnId(0), s.seq, s.entity, |_| s.wrote);
        let (c, seq, _, _) = view(&w);
        assert_eq!((c.seq, c.entity), (1, EntityId(1)));
        assert_eq!(seq, 1);
        assert_eq!(w.history_steps().len(), 1);
        assert_eq!(w.history_steps()[0].wrote, 6);
        w.status[0] = TxnStatus::Committed;
        assert!(w.is_committed(TxnId(0)));
    }
}
