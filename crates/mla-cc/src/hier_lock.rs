//! Hierarchical lock retention: the natural §7-style adaptation of
//! nested-transaction two-phase locking \[M, LS\] to multilevel atomicity —
//! implemented *to be measured*, not trusted.
//!
//! §7 asks whether implementing multilevel atomicity as a special case of
//! the nested transaction model "provides reasonable efficiency". The
//! obvious adaptation keeps per-entity locks with breakpoint-scoped
//! retention:
//!
//! * accessing an entity takes a hold on it, stamped with the accessor's
//!   current step;
//! * another transaction `u` may access the entity iff every live holder
//!   `t` has reached a breakpoint of level `level(t, u)` *since its last
//!   access to that entity* (it has "published" that entity at `u`'s
//!   trust level);
//! * holds are released at commit; waiting uses a waits-for graph with
//!   victim rollback, as in [`crate::MlaPrevent`].
//!
//! This is exactly the §6 delay rule **restricted to direct, per-entity
//! conflicts** — no transitive closure. The experiment E13 runs it
//! against the offline Theorem 2 oracle: where transitive carrier chains
//! matter (see the CAD regression in `mla-cc::window`), this control
//! grants steps the closure-based rule would delay, and the resulting
//! histories are *not always correctable*. That is the reproduction's
//! answer to §7's question: lock retention alone is cheaper per decision
//! but does not implement multilevel atomicity; the dependency tracking
//! is essential.

use std::collections::HashMap;

use mla_graph::IncrementalTopo;
use mla_model::{EntityId, TxnId};
use mla_sim::{Control, Decision, TxnStatus, World};

use crate::victim::VictimPolicy;

/// A hold: which transaction touched the entity, at which of its steps.
#[derive(Clone, Copy, Debug)]
struct Hold {
    txn: TxnId,
    /// The holder's step count *after* the access (prefix length).
    after: u32,
}

/// The lock-retention control. Intentionally unsound for multilevel
/// atomicity in general — see the module docs; every run must be checked
/// against the oracle.
pub struct HierLocking {
    holds: HashMap<EntityId, Vec<Hold>>,
    waits: IncrementalTopo,
    policy: VictimPolicy,
    /// Steps delayed waiting for a holder's breakpoint.
    pub waits_count: u64,
}

impl HierLocking {
    /// A lock-retention control over `txn_count` transactions.
    pub fn new(txn_count: usize, policy: VictimPolicy) -> Self {
        HierLocking {
            holds: HashMap::new(),
            waits: IncrementalTopo::new(txn_count),
            policy,
            waits_count: 0,
        }
    }

    fn clear_out_edges(&mut self, txn: TxnId) {
        let outs: Vec<u32> = self.waits.successors(txn.0).to_vec();
        for o in outs {
            self.waits.remove_edge(txn.0, o);
        }
    }

    fn release_all(&mut self, txn: TxnId) {
        for holds in self.holds.values_mut() {
            holds.retain(|h| h.txn != txn);
        }
    }

    /// Whether holder `t` has reached a breakpoint of level `level` (or
    /// deeper... i.e. a breakpoint visible at `level`) at some position at
    /// or after `since` (prefix lengths), or is finished.
    fn published(world: &World, t: TxnId, since: u32, level: usize) -> bool {
        let inst = world.instance(t);
        if inst.is_finished() {
            return true;
        }
        let steps = inst.steps();
        for p in since as usize..=steps.len() {
            if p == 0 {
                continue;
            }
            if p == steps.len() {
                // The current frontier is only a breakpoint if the
                // structure says so (mid-run).
                if inst.at_breakpoint(level) {
                    return true;
                }
            } else if inst
                .breakpoints()
                .min_level_after(&steps[..p])
                .is_some_and(|l| l <= level)
            {
                return true;
            }
        }
        false
    }
}

impl Control for HierLocking {
    fn name(&self) -> &'static str {
        "hier-locking"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        let entity = world
            .instance(txn)
            .next_entity()
            .expect("decide called with a next step");
        let mut blockers: Vec<TxnId> = Vec::new();
        if let Some(holds) = self.holds.get(&entity) {
            for h in holds {
                if h.txn == txn || world.status[h.txn.index()] == TxnStatus::Committed {
                    continue;
                }
                let level = world.level(h.txn, txn);
                if !Self::published(world, h.txn, h.after, level) {
                    blockers.push(h.txn);
                }
            }
        }
        if blockers.is_empty() {
            self.clear_out_edges(txn);
            let after = world.instance(txn).seq() + 1;
            let holds = self.holds.entry(entity).or_default();
            holds.retain(|h| h.txn != txn);
            holds.push(Hold { txn, after });
            return Decision::Grant;
        }
        self.waits_count += 1;
        self.clear_out_edges(txn);
        for b in &blockers {
            if let Err(cycle) = self.waits.add_edge(txn.0, b.0) {
                let candidates: Vec<TxnId> = cycle
                    .nodes()
                    .iter()
                    .map(|&v| TxnId(v))
                    .filter(|&t| world.status[t.index()] != TxnStatus::Committed)
                    .collect();
                let victim = if candidates.is_empty() {
                    txn
                } else {
                    self.policy.choose(txn, &candidates, world)
                };
                return Decision::Abort(vec![victim]);
            }
        }
        Decision::Defer
    }

    fn committed(&mut self, txn: TxnId, _world: &World) {
        self.release_all(txn);
        self.waits.detach_node(txn.0);
    }

    fn aborted(&mut self, txn: TxnId, _world: &World) {
        self.release_all(txn);
        self.waits.detach_node(txn.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints, TxnInstance};
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    #[test]
    fn without_breakpoints_behaves_like_2pl() {
        // Atomic transactions: holds are never published before commit,
        // so the control degenerates to strict 2PL and must serialize.
        let instances: Vec<TxnInstance> = (0..6u32)
            .map(|i| {
                TxnInstance::new(
                    TxnId(i),
                    Arc::new(ScriptProgram::new(vec![
                        Add(e(i % 2), 1),
                        Add(e((i + 1) % 2), 1),
                    ])),
                    Arc::new(NoBreakpoints { k: 2 }),
                )
            })
            .collect();
        let out = run(
            Nest::flat(6),
            instances,
            [],
            &[0; 6],
            &SimConfig::seeded(61),
            &mut HierLocking::new(6, VictimPolicy::FewestSteps),
        );
        assert_eq!(out.metrics.committed, 6);
        assert!(!out.metrics.timed_out);
        assert!(
            oracle::is_serializable_outcome(&out),
            "atomic breakpoints must yield serializable histories"
        );
    }

    #[test]
    fn phase_breakpoints_allow_the_opposing_weave() {
        // The crossing-transfers weave is granted (as with MLA-detect) —
        // here the per-entity rule happens to be sufficient because the
        // conflict structure has no transitive carriers.
        let k = 3;
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
        let instances = vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![Add(e(0), -1), Add(e(1), 1)])),
                bp.clone(),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![Add(e(1), -1), Add(e(0), 1)])),
                bp.clone(),
            ),
        ];
        let nest = Nest::new(k, vec![vec![0], vec![0]]).unwrap();
        let spec = mla_txn::RuntimeSpec::new(k)
            .with(TxnId(0), bp.clone())
            .with(TxnId(1), bp);
        let out = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(62),
            &mut HierLocking::new(2, VictimPolicy::FewestSteps),
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
    }
}
