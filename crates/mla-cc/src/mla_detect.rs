//! Multilevel-atomicity cycle *detection* (§6, first strategy):
//! "the concurrency control might generate explicitly the edges of the
//! coherent closure of `<=_e` and check for cycles. If a cycle is
//! detected, a priority scheme can be used to determine which steps
//! should be rolled back."
//!
//! Implementation: before granting a step, compute the coherent closure
//! of the window execution extended with the candidate step. Acyclic —
//! grant. Cyclic — roll back a victim on the witness cycle. "Presumably,
//! fewer cycles would be detected using the multilevel atomicity
//! definition than if strict serializability were required, leading to
//! fewer rollbacks" — experiment E5 measures exactly this against
//! [`crate::SgtControl`].

use mla_core::closure::CoherentClosure;
use mla_core::spec::ExecContext;
use mla_model::TxnId;
use mla_sim::{Control, Decision, TxnStatus, World};
use mla_txn::RuntimeSpec;

use crate::victim::VictimPolicy;
use crate::window::LiveWindow;

/// The optimistic multilevel-atomicity control.
pub struct MlaDetect {
    spec: RuntimeSpec,
    window: LiveWindow,
    policy: VictimPolicy,
    /// Closure checks performed (for the E5 cost accounting).
    pub checks: u64,
    /// Checks that found a cycle.
    pub cycles_found: u64,
}

impl MlaDetect {
    /// Disables window eviction (the A2 ablation: pay for checking the
    /// full history on every decision).
    pub fn without_eviction(mut self) -> Self {
        self.window.set_eviction(false);
        self
    }

    /// How many committed transactions the window has evicted so far.
    pub fn evicted_count(&self) -> usize {
        self.window.evicted_count()
    }

    /// A detector using `spec` (which must match the instances'
    /// breakpoint structures) and the given victim policy.
    pub fn new(spec: RuntimeSpec, policy: VictimPolicy) -> Self {
        MlaDetect {
            spec,
            window: LiveWindow::new(),
            policy,
            checks: 0,
            cycles_found: 0,
        }
    }
}

impl Control for MlaDetect {
    fn name(&self) -> &'static str {
        "mla-detect"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        let candidate = LiveWindow::candidate_step(world, txn);
        let exec = self.window.execution_with(world, Some(candidate));
        let ctx = ExecContext::new(&exec, &world.nest, &self.spec)
            .expect("window execution matches nest and spec");
        let closure = CoherentClosure::compute(&ctx);
        self.window.maintain_after(&ctx, &closure, world);
        self.checks += 1;
        if closure.is_partial_order() {
            return Decision::Grant;
        }
        self.cycles_found += 1;
        let cycle = closure
            .witness_cycle(&ctx)
            .expect("cyclic closure yields a witness");
        let mut candidates: Vec<TxnId> = cycle
            .nodes()
            .iter()
            .map(|&v| ctx.txn_id(ctx.txn_of(v as usize)))
            .filter(|&t| world.status[t.index()] != TxnStatus::Committed)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            // Every other participant is committed: the requester itself
            // must yield (commit rollbacks are left to the cascade).
            candidates.push(txn);
        }
        Decision::Abort(vec![self.policy.choose(txn, &candidates, world)])
    }

    fn aborted(&mut self, txn: TxnId, _world: &World) {
        self.window.on_aborted(txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints, TxnInstance};
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    /// Transfers with a level-2 breakpoint between the withdraw and
    /// deposit halves, plus an atomic audit reading everything.
    fn banking_setup(
        n_transfers: u32,
        accounts: u32,
    ) -> (Nest, Vec<TxnInstance>, RuntimeSpec, Vec<(EntityId, i64)>) {
        let k = 3;
        let mut instances = Vec::new();
        let mut spec = RuntimeSpec::new(k);
        let mut paths = Vec::new();
        for i in 0..n_transfers {
            let from = i % accounts;
            let to = (i + 1) % accounts;
            let program = Arc::new(ScriptProgram::new(vec![Add(e(from), -1), Add(e(to), 1)]));
            let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
            instances.push(TxnInstance::new(TxnId(i), program, bp.clone()));
            spec.insert(TxnId(i), bp);
            paths.push(vec![0]);
        }
        // The audit reads every account, atomically.
        let audit_id = TxnId(n_transfers);
        let audit = Arc::new(ScriptProgram::new(
            (0..accounts).map(|a| Accumulate(e(a))).collect(),
        ));
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(NoBreakpoints { k });
        instances.push(TxnInstance::new(audit_id, audit, bp.clone()));
        spec.insert(audit_id, bp);
        paths.push(vec![1]);
        let nest = Nest::new(k, paths).unwrap();
        let initial = (0..accounts).map(|a| (e(a), 100)).collect();
        (nest, instances, spec, initial)
    }

    #[test]
    fn banking_run_is_correctable() {
        let (nest, instances, spec, initial) = banking_setup(8, 4);
        let arrivals = vec![0u64; instances.len()];
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(21),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 9);
        assert!(!out.metrics.timed_out);
        assert!(
            oracle::is_correctable_outcome(&out, &nest, &spec),
            "MLA-detect history must satisfy Theorem 2"
        );
        // Money is conserved across transfers.
        let total: i64 = (0..4).map(|a| out.store.value(e(a))).sum();
        assert_eq!(total, 400);
        assert!(control.checks > 0);
    }

    #[test]
    fn transfers_interleave_where_serializability_would_conflict() {
        // Two transfers in opposite directions over the same two accounts,
        // each with a mid-transaction breakpoint and pi(2)-related: the
        // opposing weave w0 w1 d1 d0 is multilevel atomic, so MLA-detect
        // should commit both without any abort (SGT would have to abort
        // one if the weave arises).
        let k = 3;
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
        let instances = vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![Add(e(0), -1), Add(e(1), 1)])),
                bp.clone(),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![Add(e(1), -1), Add(e(0), 1)])),
                bp.clone(),
            ),
        ];
        let spec = RuntimeSpec::new(k)
            .with(TxnId(0), bp.clone())
            .with(TxnId(1), bp);
        let nest = Nest::new(k, vec![vec![0], vec![0]]).unwrap();
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(22),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 2);
        assert_eq!(out.metrics.aborts, 0, "the weave is multilevel atomic");
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        assert_eq!(out.store.value(e(0)), 10);
        assert_eq!(out.store.value(e(1)), 10);
    }

    #[test]
    fn audit_mid_transfer_forces_rollback() {
        // One transfer, one audit racing it with no breakpoints in
        // common: if the audit lands between the transfer's halves the
        // control must detect and resolve the cycle; either way the final
        // history is correctable and the audit sees a consistent total.
        let (nest, instances, spec, initial) = banking_setup(1, 2);
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            initial,
            &[0, 0],
            &SimConfig::seeded(23),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
    }

    #[test]
    fn high_contention_swarm_stays_correctable() {
        let (nest, instances, spec, initial) = banking_setup(16, 3);
        let arrivals: Vec<u64> = (0..17).map(|i| i * 3).collect();
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::Requester);
        let out = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(24),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 17);
        assert!(!out.metrics.timed_out);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        let total: i64 = (0..3).map(|a| out.store.value(e(a))).sum();
        assert_eq!(total, 300);
    }
}
