//! Multilevel-atomicity cycle *detection* (§6, first strategy):
//! "the concurrency control might generate explicitly the edges of the
//! coherent closure of `<=_e` and check for cycles. If a cycle is
//! detected, a priority scheme can be used to determine which steps
//! should be rolled back."
//!
//! Implementation: the control maintains one [`ClosureEngine`] for the
//! whole run and offers it each candidate step as a *delta*. The engine
//! extends its maintained coherent closure in place; acyclic — commit
//! the extension and grant, cyclic — the engine rolls the extension back
//! and hands out the witness cycle to pick a rollback victim from. The
//! batch closure is never recomputed on the grant path (the `rebuilds`
//! counter stays at zero in abort-free runs); full rebuilds happen only
//! when a rollback or eviction compaction actually shrinks the history.
//! "Presumably, fewer cycles would be detected using the multilevel
//! atomicity definition than if strict serializability were required,
//! leading to fewer rollbacks" — experiment E5 measures exactly this
//! against [`crate::SgtControl`].
//!
//! The control programs against [`EngineBackend`], so the closure can
//! run either as one global engine or sharded by entity partition
//! ([`MlaDetect::with_shards`], experiment A5): candidates route to the
//! shard group owning their entity, cycle witnesses come back from that
//! group for victim selection, and window eviction becomes a per-shard
//! projection. Decision for decision the two backends are equivalent —
//! `tests/sharded_engine_equivalence.rs` is the differential oracle.

use mla_core::cert::StaticCert;
use mla_core::spec::BreakpointSpecification;
use mla_core::{EngineBackend, EngineCounters, ParallelStats};
use mla_model::{Step, TxnId};
use mla_sim::{Control, Decision, World};
use mla_storage::StepRecord;
use mla_txn::RuntimeSpec;

use crate::admission::AdmissionView;
use crate::cert_guard::{CertAdmit, CertGuard};
use crate::victim::VictimPolicy;
use crate::window::LiveWindow;

/// The optimistic multilevel-atomicity control.
pub struct MlaDetect {
    spec: RuntimeSpec,
    /// The incremental closure over the live window, created on the
    /// first decision (the nest lives in the [`World`]).
    engine: Option<EngineBackend<RuntimeSpec>>,
    /// Entity partitions for the closure backend (0 = unsharded).
    shards: usize,
    /// Worker threads for the closure backend (0 = serial).
    workers: usize,
    window: LiveWindow,
    policy: VictimPolicy,
    /// A1 ablation: force a from-scratch closure rebuild before every
    /// decision, charging the old per-step batch cost through the same
    /// code path.
    full_rebuild: bool,
    /// A §5 per-universe certificate lattice from `mla-lint` plus its
    /// armed state: while a universe is armed, its in-footprint steps
    /// are granted without any closure maintenance.
    guard: Option<CertGuard>,
    /// Closure checks performed (for the E5 cost accounting).
    pub checks: u64,
    /// Checks that found a cycle.
    pub cycles_found: u64,
}

impl MlaDetect {
    /// Disables window eviction (the A2 ablation: pay for checking the
    /// full history on every decision).
    pub fn without_eviction(mut self) -> Self {
        self.window.set_eviction(false);
        self
    }

    /// Forces a full closure rebuild before every decision (the A1
    /// ablation): same decisions, same code path, but per-step batch
    /// cost instead of delta cost. This is the baseline the incremental
    /// engine is benchmarked against.
    pub fn with_full_rebuild(mut self) -> Self {
        self.full_rebuild = true;
        self
    }

    /// Shards the closure engine across `shards` entity partitions
    /// (`shards == 0` keeps the single global engine). Decisions are
    /// unchanged; per-decision cost shrinks to the candidate's own
    /// partition on partitionable workloads (experiment A5).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(
            self.engine.is_none(),
            "set shards before the first decision"
        );
        self.shards = shards;
        self
    }

    /// Runs the sharded closure backend on a pool of `workers` threads
    /// (`workers == 0` keeps the serial engine). Requires a sharded
    /// backend (`with_shards(n)` with `n >= 1`); decisions, histories,
    /// and counters are unchanged — only wall-clock and the
    /// [`parallel_stats`](Self::parallel_stats) occupancy move
    /// (experiment A6).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        assert!(
            self.engine.is_none(),
            "set parallelism before the first decision"
        );
        self.workers = workers;
        self
    }

    /// Worker-pool occupancy and barrier statistics, when the backend is
    /// parallel.
    pub fn parallel_stats(&self) -> Option<ParallelStats> {
        self.engine.as_ref().and_then(|e| e.parallel_stats())
    }

    /// How many committed transactions the window has evicted so far.
    pub fn evicted_count(&self) -> usize {
        self.window.evicted_count()
    }

    /// How many shard-group coalescences the backend has performed (0
    /// for the unsharded engine).
    pub fn merge_count(&self) -> u64 {
        self.engine.as_ref().map(|e| e.merge_count()).unwrap_or(0)
    }

    /// The engine's decision-cost counters so far (zeros before the
    /// first decision); for a sharded backend, the sum over shards.
    pub fn cost(&self) -> EngineCounters {
        self.engine
            .as_ref()
            .map(|e| e.counters())
            .unwrap_or_default()
    }

    /// A detector using `spec` (which must match the instances'
    /// breakpoint structures) and the given victim policy.
    pub fn new(spec: RuntimeSpec, policy: VictimPolicy) -> Self {
        MlaDetect {
            spec,
            engine: None,
            shards: 0,
            workers: 0,
            window: LiveWindow::new(),
            policy,
            full_rebuild: false,
            guard: None,
            checks: 0,
            cycles_found: 0,
        }
    }

    /// Decisions granted on the certificate fast path, across every
    /// universe (A7/A8 accounting).
    pub fn certified_skips(&self) -> u64 {
        self.guard.as_ref().map(CertGuard::total_skips).unwrap_or(0)
    }

    /// Fast-path grants split per universe (empty without a
    /// certificate).
    pub fn certified_skips_per_universe(&self) -> Vec<u64> {
        self.guard
            .as_ref()
            .map(|g| g.skips.clone())
            .unwrap_or_default()
    }

    /// Universe-disarm events caused by off-footprint strays.
    pub fn cert_voids(&self) -> u64 {
        self.guard.as_ref().map(|g| g.voids).unwrap_or(0)
    }

    /// Arms the certified fast path with an `mla-lint` [`StaticCert`]
    /// lattice: every step inside an **armed universe's** footprints is
    /// granted after an O(log n) guard, with no closure maintenance at
    /// all — the per-universe proof guarantees no realizable closure
    /// cycle passes through that universe's transactions, which is
    /// precisely the only thing [`decide`](Control::decide) would
    /// otherwise check. Uncertified universes' steps go through the
    /// engine as usual, and because certified transactions can sit on no
    /// realizable cycle, omitting their steps from the engine changes no
    /// verdict: decision-for-decision identical to the uncertified
    /// control.
    ///
    /// A step *outside* its transaction's certified footprint voids
    /// certificates **per universe** (see [`CertGuard`]): the stray's
    /// own universe and every armed universe whose entities it touched
    /// are disarmed, the engine is caught up by replaying the journal —
    /// guaranteed acyclic, since every granted step either passed the
    /// engine or was certified — and those universes stay on the engine
    /// path for the rest of the run (`MlaPrevent` re-arms; the detector
    /// keeps voiding permanent). Untouched universes keep skipping.
    pub fn with_static_cert(mut self, cert: StaticCert) -> Self {
        assert!(
            self.engine.is_none(),
            "set the certificate before the first decision"
        );
        assert_eq!(
            cert.k(),
            BreakpointSpecification::k(&self.spec),
            "certificate depth must match the spec"
        );
        self.guard = Some(CertGuard::new(cert, false));
        self
    }

    /// Catches the engine up on every step granted so far (certified
    /// skips included): fresh backend, full journal replay. Called when
    /// an off-footprint stray disarms a universe whose steps the engine
    /// has never seen.
    fn catch_up_engine<V: AdmissionView + ?Sized>(&mut self, view: &V) {
        let mut engine = EngineBackend::with_parallelism(
            view.nest().clone(),
            self.spec.clone(),
            self.shards,
            self.workers,
        );
        for s in view.history_steps() {
            engine
                .apply_step(s)
                .expect("certified history must replay acyclically");
            engine.commit_step();
        }
        self.engine = Some(engine);
    }

    /// The decision procedure, against any [`AdmissionView`] — the
    /// simulator's `World` or `mla-serve`'s live admission state. The
    /// [`Control`] impl is a thin delegation to this.
    pub fn decide_view<V: AdmissionView + ?Sized>(&mut self, txn: TxnId, view: &V) -> Decision {
        let candidate = view.candidate(txn);
        if let Some(guard) = self.guard.as_mut() {
            match guard.admit(txn, candidate.entity) {
                CertAdmit::Skip(_) => {
                    self.checks += 1;
                    return Decision::Grant;
                }
                CertAdmit::Engine => {}
                CertAdmit::Voided => {
                    // An off-footprint stray just disarmed at least one
                    // universe whose steps the engine never saw: catch
                    // it up on everything granted so far before
                    // deciding this step through it.
                    self.catch_up_engine(view);
                }
            }
        }
        if self.engine.is_none() {
            self.engine = Some(EngineBackend::with_parallelism(
                view.nest().clone(),
                self.spec.clone(),
                self.shards,
                self.workers,
            ));
        }
        let engine = self.engine.as_mut().expect("just initialised");
        if self.full_rebuild {
            engine.force_rebuild();
        }
        self.checks += 1;
        match engine.apply_step(candidate) {
            Ok(()) => {
                engine.commit_step();
                self.window.maintain_with_backend(engine, view);
                Decision::Grant
            }
            Err(witness) => {
                // The engine already rolled the candidate back; its
                // witness names the transactions on the closure cycle
                // (sorted, deduplicated).
                self.cycles_found += 1;
                let mut candidates: Vec<TxnId> = witness
                    .txns
                    .iter()
                    .copied()
                    .filter(|&t| !view.is_committed(t))
                    .collect();
                if candidates.is_empty() {
                    // Every other participant is committed: the requester
                    // itself must yield (commit rollbacks are left to the
                    // cascade).
                    candidates.push(txn);
                }
                Decision::Abort(vec![self.policy.choose(txn, &candidates, view)])
            }
        }
    }

    /// Backfills the real observed/written values of a performed step so
    /// future breakpoint descriptions see what actually happened (the
    /// candidate carried zeros — the closure itself is value-blind).
    pub fn performed_view(&mut self, step: &Step) {
        if let Some(engine) = self.engine.as_mut() {
            engine.performed(step);
        }
    }

    /// Records a rollback of `txn`'s steps. Shrinking the history
    /// invalidates the maintained closure; the engine schedules one
    /// rebuild for the whole cascade and replays lazily at the next
    /// decision.
    pub fn aborted_view(&mut self, txn: TxnId) {
        self.window.on_aborted(txn);
        if let Some(engine) = self.engine.as_mut() {
            engine.remove_txn(txn);
        }
    }
}

impl Control for MlaDetect {
    fn name(&self) -> &'static str {
        "mla-detect"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        self.decide_view(txn, world)
    }

    fn performed(&mut self, record: &StepRecord, _world: &World) {
        self.performed_view(&record.as_step());
    }

    fn aborted(&mut self, txn: TxnId, _world: &World) {
        self.aborted_view(txn);
    }

    fn decision_cost(&self) -> Option<EngineCounters> {
        Some(self.cost())
    }

    fn shard_decision_cost(&self) -> Vec<EngineCounters> {
        self.engine
            .as_ref()
            .map(|e| e.shard_counters())
            .unwrap_or_default()
    }

    fn parallel_stats(&self) -> Option<ParallelStats> {
        MlaDetect::parallel_stats(self)
    }

    fn certified_skips(&self) -> u64 {
        MlaDetect::certified_skips(self)
    }

    fn certified_skips_per_universe(&self) -> Vec<u64> {
        MlaDetect::certified_skips_per_universe(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints, TxnInstance};
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    /// Transfers with a level-2 breakpoint between the withdraw and
    /// deposit halves, plus an atomic audit reading everything.
    fn banking_setup(
        n_transfers: u32,
        accounts: u32,
    ) -> (Nest, Vec<TxnInstance>, RuntimeSpec, Vec<(EntityId, i64)>) {
        let k = 3;
        let mut instances = Vec::new();
        let mut spec = RuntimeSpec::new(k);
        let mut paths = Vec::new();
        for i in 0..n_transfers {
            let from = i % accounts;
            let to = (i + 1) % accounts;
            let program = Arc::new(ScriptProgram::new(vec![Add(e(from), -1), Add(e(to), 1)]));
            let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
            instances.push(TxnInstance::new(TxnId(i), program, bp.clone()));
            spec.insert(TxnId(i), bp);
            paths.push(vec![0]);
        }
        // The audit reads every account, atomically.
        let audit_id = TxnId(n_transfers);
        let audit = Arc::new(ScriptProgram::new(
            (0..accounts).map(|a| Accumulate(e(a))).collect(),
        ));
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(NoBreakpoints { k });
        instances.push(TxnInstance::new(audit_id, audit, bp.clone()));
        spec.insert(audit_id, bp);
        paths.push(vec![1]);
        let nest = Nest::new(k, paths).unwrap();
        let initial = (0..accounts).map(|a| (e(a), 100)).collect();
        (nest, instances, spec, initial)
    }

    #[test]
    fn banking_run_is_correctable() {
        let (nest, instances, spec, initial) = banking_setup(8, 4);
        let arrivals = vec![0u64; instances.len()];
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(21),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 9);
        assert!(!out.metrics.timed_out);
        assert!(
            oracle::is_correctable_outcome(&out, &nest, &spec),
            "MLA-detect history must satisfy Theorem 2"
        );
        // Money is conserved across transfers.
        let total: i64 = (0..4).map(|a| out.store.value(e(a))).sum();
        assert_eq!(total, 400);
        assert!(control.checks > 0);
        // The simulator merged the engine counters into the run metrics.
        assert_eq!(out.metrics.decision_cost, control.cost());
        assert!(out.metrics.decision_cost.steps_applied > 0);
        assert!(out.metrics.rows_per_decision() > 0.0);
    }

    #[test]
    fn transfers_interleave_where_serializability_would_conflict() {
        // Two transfers in opposite directions over the same two accounts,
        // each with a mid-transaction breakpoint and pi(2)-related: the
        // opposing weave w0 w1 d1 d0 is multilevel atomic, so MLA-detect
        // should commit both without any abort (SGT would have to abort
        // one if the weave arises).
        let k = 3;
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
        let instances = vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![Add(e(0), -1), Add(e(1), 1)])),
                bp.clone(),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![Add(e(1), -1), Add(e(0), 1)])),
                bp.clone(),
            ),
        ];
        let spec = RuntimeSpec::new(k)
            .with(TxnId(0), bp.clone())
            .with(TxnId(1), bp);
        let nest = Nest::new(k, vec![vec![0], vec![0]]).unwrap();
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(22),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 2);
        assert_eq!(out.metrics.aborts, 0, "the weave is multilevel atomic");
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        assert_eq!(out.store.value(e(0)), 10);
        assert_eq!(out.store.value(e(1)), 10);
        // The tentpole property: an abort-free run never rebuilds the
        // closure from scratch — every grant was a pure delta.
        let cost = control.cost();
        assert!(cost.steps_applied > 0);
        assert_eq!(cost.rebuilds, 0, "grant path must not batch-recompute");
        assert_eq!(cost.rollbacks, 0);
    }

    #[test]
    fn full_rebuild_ablation_decides_identically() {
        // The A1 ablation runs the same decision procedure through the
        // same engine, only paying batch cost per step: outcomes must be
        // identical, and the rebuild counter must show the charge.
        let (nest, instances, spec, initial) = banking_setup(8, 4);
        let arrivals = vec![0u64; instances.len()];
        let mut inc = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out_inc = run(
            nest.clone(),
            instances,
            initial.clone(),
            &arrivals,
            &SimConfig::seeded(25),
            &mut inc,
        );
        // Fresh instances: TxnInstance is stateful and not Clone.
        let (_, instances, _, _) = banking_setup(8, 4);
        let mut full = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps).with_full_rebuild();
        let out_full = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(25),
            &mut full,
        );
        assert_eq!(out_inc.metrics.committed, out_full.metrics.committed);
        assert_eq!(out_inc.metrics.aborts, out_full.metrics.aborts);
        assert_eq!(out_inc.execution.steps(), out_full.execution.steps());
        assert_eq!(inc.checks, full.checks);
        assert_eq!(
            full.cost().rebuilds,
            full.checks,
            "one rebuild per decision"
        );
        assert!(
            inc.cost().rebuilds < full.cost().rebuilds,
            "incremental mode must rebuild strictly less"
        );
        assert!(
            inc.cost().rows_touched < full.cost().rows_touched,
            "incremental mode must do strictly less closure work \
             ({} vs {})",
            inc.cost().rows_touched,
            full.cost().rows_touched
        );
    }

    #[test]
    fn audit_mid_transfer_forces_rollback() {
        // One transfer, one audit racing it with no breakpoints in
        // common: if the audit lands between the transfer's halves the
        // control must detect and resolve the cycle; either way the final
        // history is correctable and the audit sees a consistent total.
        let (nest, instances, spec, initial) = banking_setup(1, 2);
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            initial,
            &[0, 0],
            &SimConfig::seeded(23),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
    }

    #[test]
    fn sharded_backend_decides_identically_on_disjoint_partitions() {
        // Two banking universes over disjoint accounts (entities split
        // even/odd, so they land on different shards of a 2-way split):
        // the sharded control must produce the byte-identical history,
        // and the simulator must surface per-shard counters whose sum is
        // the reported decision cost.
        let k = 3;
        let mk = |a: u32, b: u32| Arc::new(ScriptProgram::new(vec![Add(e(a), -1), Add(e(b), 1)]));
        let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
        let mut spec = RuntimeSpec::new(k);
        let mut instances = Vec::new();
        let mut paths = Vec::new();
        for i in 0..6u32 {
            let base = i % 2; // even txns on even entities, odd on odd
            instances.push(TxnInstance::new(TxnId(i), mk(base, base + 2), bp.clone()));
            spec.insert(TxnId(i), bp.clone());
            paths.push(vec![base]);
        }
        let nest = Nest::new(k, paths).unwrap();
        let initial: Vec<(EntityId, i64)> = (0..4).map(|a| (e(a), 100)).collect();
        let arrivals: Vec<u64> = (0..6).map(|i| i * 2).collect();

        let mut flat = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps);
        let out_flat = run(
            nest.clone(),
            instances,
            initial.clone(),
            &arrivals,
            &SimConfig::seeded(26),
            &mut flat,
        );
        let mut instances = Vec::new();
        for i in 0..6u32 {
            let base = i % 2;
            instances.push(TxnInstance::new(TxnId(i), mk(base, base + 2), bp.clone()));
        }
        let mut sharded = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps).with_shards(2);
        let out_sharded = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(26),
            &mut sharded,
        );
        assert_eq!(out_sharded.metrics.aborts, 0);
        assert_eq!(out_flat.execution.steps(), out_sharded.execution.steps());
        assert_eq!(sharded.merge_count(), 0, "partitions are disjoint");
        assert!(oracle::is_correctable_outcome(&out_sharded, &nest, &spec));
        // Counter aggregation: the metrics carry one entry per shard
        // group and their sum is the decision cost (satellite fix).
        assert_eq!(out_sharded.metrics.shard_cost.len(), 2);
        assert_eq!(
            out_sharded
                .metrics
                .shard_cost
                .iter()
                .copied()
                .sum::<EngineCounters>(),
            out_sharded.metrics.decision_cost,
        );
        assert_eq!(out_sharded.metrics.decision_cost, sharded.cost());
        assert_eq!(
            out_flat.metrics.decision_cost.steps_applied,
            out_sharded.metrics.decision_cost.steps_applied,
        );
    }

    #[test]
    fn sharded_backend_handles_contention_via_merging() {
        // The full banking workload funnels every transfer through a
        // shared account ring — shard groups must coalesce rather than
        // miss cycles, and the outcome must stay correctable.
        let (nest, instances, spec, initial) = banking_setup(8, 4);
        let arrivals = vec![0u64; instances.len()];
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps).with_shards(4);
        let out = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(21),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 9);
        assert!(!out.metrics.timed_out);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        let total: i64 = (0..4).map(|a| out.store.value(e(a))).sum();
        assert_eq!(total, 400);
        assert!(control.merge_count() > 0, "contended ring must coalesce");
        assert_eq!(
            out.metrics
                .shard_cost
                .iter()
                .copied()
                .sum::<EngineCounters>(),
            out.metrics.decision_cost,
        );
    }

    #[test]
    fn parallel_backend_decides_identically_with_stats() {
        // The full contended banking workload through the serial sharded
        // backend and the thread-parallel one: byte-identical histories
        // and counters, plus occupancy/barrier stats from the pool.
        let (nest, instances, spec, initial) = banking_setup(8, 4);
        let arrivals = vec![0u64; instances.len()];
        let mut serial = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps).with_shards(4);
        let out_serial = run(
            nest.clone(),
            instances,
            initial.clone(),
            &arrivals,
            &SimConfig::seeded(21),
            &mut serial,
        );
        let (_, instances, _, _) = banking_setup(8, 4);
        let mut parallel = MlaDetect::new(spec.clone(), VictimPolicy::FewestSteps)
            .with_shards(4)
            .with_parallelism(2);
        let out_parallel = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(21),
            &mut parallel,
        );
        assert_eq!(
            out_serial.execution.steps(),
            out_parallel.execution.steps(),
            "parallel backend must be decision-for-decision identical"
        );
        assert_eq!(out_serial.metrics.committed, out_parallel.metrics.committed);
        assert_eq!(out_serial.metrics.aborts, out_parallel.metrics.aborts);
        assert_eq!(serial.cost(), parallel.cost());
        assert_eq!(serial.merge_count(), parallel.merge_count());
        assert!(oracle::is_correctable_outcome(&out_parallel, &nest, &spec));
        let stats = parallel.parallel_stats().expect("parallel backend");
        assert_eq!(stats.workers, 2);
        assert_eq!(
            stats.barrier_stalls,
            parallel.merge_count(),
            "one barrier per coalescence"
        );
        assert!(serial.parallel_stats().is_none());
        // The simulator surfaced the same stats in the run metrics.
        assert_eq!(
            out_parallel.metrics.parallel.as_ref().map(|s| s.workers),
            Some(2)
        );
    }

    #[test]
    fn high_contention_swarm_stays_correctable() {
        let (nest, instances, spec, initial) = banking_setup(16, 3);
        let arrivals: Vec<u64> = (0..17).map(|i| i * 3).collect();
        let mut control = MlaDetect::new(spec.clone(), VictimPolicy::Requester);
        let out = run(
            nest.clone(),
            instances,
            initial,
            &arrivals,
            &SimConfig::seeded(24),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 17);
        assert!(!out.metrics.timed_out);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        let total: i64 = (0..3).map(|a| out.store.value(e(a))).sum();
        assert_eq!(total, 300);
    }

    fn small_partitioned() -> mla_workload::partitioned::Partitioned {
        mla_workload::partitioned::generate(mla_workload::partitioned::PartitionedConfig {
            partitions: 2,
            txns_per_partition: 10,
            scanner_len: 10,
            arrival_spacing: 2,
        })
    }

    #[test]
    fn certified_fast_path_matches_uncertified_byte_for_byte() {
        let p = small_partitioned();
        let wl = &p.workload;
        let cert = mla_lint::certify_workload(wl)
            .cert
            .expect("partitioned workload must certify");
        let config = SimConfig::seeded(77);
        let mut base = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
        let out_base = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &config,
            &mut base,
        );
        let mut fast = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(cert);
        let out_fast = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &config,
            &mut fast,
        );
        // Same history, byte for byte: the certificate only skips work
        // the closure engine would have done to reach the same Grant.
        assert_eq!(out_base.execution.steps(), out_fast.execution.steps());
        assert_eq!(out_base.metrics.committed, out_fast.metrics.committed);
        // Every decision went through the fast path, never the engine.
        assert!(fast.certified_skips() > 0);
        assert_eq!(fast.certified_skips(), fast.checks);
        assert_eq!(fast.cost(), EngineCounters::default());
        assert_eq!(out_fast.metrics.certified_skips, fast.certified_skips());
        assert_eq!(out_base.metrics.certified_skips, 0);
        // The lattice degenerates to one universe here; the split view
        // still reconciles with the total.
        assert_eq!(
            fast.certified_skips_per_universe().iter().sum::<u64>(),
            fast.certified_skips()
        );
        assert!(oracle::is_correctable_outcome(
            &out_fast,
            &wl.nest,
            &wl.spec()
        ));
    }

    #[test]
    fn off_footprint_step_voids_the_certificate() {
        let p = small_partitioned();
        let wl = &p.workload;
        let real = mla_lint::certify_workload(wl)
            .cert
            .expect("partitioned workload must certify");
        // Doctor the certificate: drop the private entity from the
        // last-arriving short transaction's footprint. Doctored ⊆ real,
        // so every step the guard does grant is genuinely certified and
        // the journal replay on voiding must stay acyclic.
        let last = wl.txn_count() - 1;
        let footprints: Vec<Vec<EntityId>> = (0..wl.txn_count())
            .map(|t| {
                let mut fp = real.footprint(TxnId(t as u32)).to_vec();
                if t == last {
                    fp.pop();
                }
                fp
            })
            .collect();
        let doctored = mla_core::cert::StaticCert::new(real.k(), footprints);
        let config = SimConfig::seeded(77);
        let mut base = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
        let out_base = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &config,
            &mut base,
        );
        let mut fast =
            MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps).with_static_cert(doctored);
        let out_fast = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &config,
            &mut fast,
        );
        // The voided run granted some decisions certified, then handed
        // the rest to a journal-caught-up engine — and still produced
        // the identical history.
        assert!(fast.certified_skips() > 0, "fast path ran before voiding");
        assert!(fast.cert_voids() > 0, "the stray disarmed its universe");
        assert!(
            fast.certified_skips() < fast.checks,
            "voiding must hand later decisions to the engine"
        );
        assert_ne!(fast.cost(), EngineCounters::default());
        assert_eq!(out_base.execution.steps(), out_fast.execution.steps());
        assert!(oracle::is_correctable_outcome(
            &out_fast,
            &wl.nest,
            &wl.spec()
        ));
    }
}
