//! Multilevel-atomicity cycle *prevention* (§6, second strategy):
//! delay steps until suitable breakpoints are reached.
//!
//! > "Let `β` be a step of any transaction `t'`. ... `β` does not
//! > actually get performed until the following is insured: if `α` is
//! > the last step of some transaction `t` which precedes `β` in the
//! > coherent closure of `<=_e`, then a `level(t, t')` breakpoint
//! > immediately follows `α` in `t`'s execution subsequence of `e_β`."
//!
//! If every performed step satisfies this, the coherent closure is
//! consistent with the performance order and hence a partial order — the
//! execution stays correctable without any certification aborts. Waiting
//! can deadlock, so (per the paper's "priority-rollback mechanism for
//! preventing blocking") a waits-for graph is maintained and a victim is
//! rolled back whenever a wait would close a waits-for cycle.
//!
//! The closure is maintained incrementally behind an [`EngineBackend`]
//! (one global engine, or sharded by entity partition via
//! [`MlaPrevent::with_shards`]): each candidate is applied as a
//! tentative delta, the blocker probe asks the backend for the
//! candidate's closure predecessors — answered entirely by the shard
//! group owning the candidate — and a deferred candidate is rolled back
//! to be retried later; no batch recomputation on any path.

use mla_core::cert::StaticCert;
use mla_core::spec::BreakpointSpecification;
use mla_core::{EngineBackend, EngineCounters, ParallelStats};
use mla_model::{Step, TxnId};
use mla_sim::{Control, Decision, World};
use mla_storage::StepRecord;
use mla_txn::RuntimeSpec;

use crate::admission::AdmissionView;
use crate::cert_guard::{CertAdmit, CertGuard};
use crate::victim::VictimPolicy;
use crate::waits::ShardedWaits;
use crate::window::LiveWindow;

/// The pessimistic multilevel-atomicity control.
pub struct MlaPrevent {
    spec: RuntimeSpec,
    /// The incremental closure over the live window, created on the
    /// first decision (the nest lives in the [`World`]).
    engine: Option<EngineBackend<RuntimeSpec>>,
    /// Entity partitions for the closure backend (0 = unsharded).
    shards: usize,
    /// Worker threads for the closure backend (0 = serial).
    workers: usize,
    window: LiveWindow,
    /// Waits-for bookkeeping, optionally sharded by entity partition
    /// ([`MlaPrevent::with_wait_shards`]); one partition = the legacy
    /// global graph, edge for edge.
    waits: ShardedWaits,
    /// Node capacity for rebuilding `waits` when re-sharded.
    txn_count: usize,
    policy: VictimPolicy,
    /// A §5 per-universe certificate lattice from `mla-lint` plus its
    /// armed/blamed state: while a universe is armed, its in-footprint
    /// steps are granted without closure maintenance or breakpoint
    /// waits. Voided universes re-arm once the foreign transactions
    /// that disarmed them drain from the live window.
    guard: Option<CertGuard>,
    /// Steps delayed waiting for a breakpoint (E4/E6 accounting).
    pub breakpoint_waits: u64,
    /// Grants the §6 delay rule alone would have admitted despite a
    /// cyclic candidate closure, caught by the engine's cycle rejection.
    /// Zero in every run if the rule is as sufficient as the paper
    /// argues — the experiments report it to confirm.
    pub prevention_misses: u64,
}

impl MlaPrevent {
    /// Disables window eviction (the A2 ablation: pay for checking the
    /// full history on every decision).
    pub fn without_eviction(mut self) -> Self {
        self.window.set_eviction(false);
        self
    }

    fn clear_out_edges(&mut self, txn: TxnId) {
        self.waits.clear_out_edges(txn.0);
    }

    /// Shards the waits-for bookkeeping across `partitions` entity
    /// partitions (satellite to [`with_shards`](Self::with_shards)):
    /// wait edges are attributed to the partition of the entity the
    /// waiter stalled on, so fully partitioned workloads keep disjoint
    /// wait graphs. Deadlock detection stays exact — groups coalesce
    /// when a transaction waits across partitions. `partitions <= 1`
    /// keeps the single global graph.
    pub fn with_wait_shards(mut self, partitions: usize) -> Self {
        assert_eq!(
            self.waits.edge_count(),
            0,
            "set wait shards before the first deferral"
        );
        self.waits = ShardedWaits::new(self.txn_count, partitions);
        self
    }

    /// How many wait-graph group coalescences have happened (0 on fully
    /// partitionable workloads, and always 0 unsharded).
    pub fn wait_merge_count(&self) -> u64 {
        self.waits.merge_count()
    }

    /// Shards the closure engine across `shards` entity partitions
    /// (`shards == 0` keeps the single global engine). See
    /// [`crate::MlaDetect::with_shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(
            self.engine.is_none(),
            "set shards before the first decision"
        );
        self.shards = shards;
        self
    }

    /// Runs the sharded closure backend on a pool of `workers` threads
    /// (`workers == 0` keeps the serial engine). See
    /// [`crate::MlaDetect::with_parallelism`].
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        assert!(
            self.engine.is_none(),
            "set parallelism before the first decision"
        );
        self.workers = workers;
        self
    }

    /// Worker-pool occupancy and barrier statistics, when the backend is
    /// parallel.
    pub fn parallel_stats(&self) -> Option<ParallelStats> {
        self.engine.as_ref().and_then(|e| e.parallel_stats())
    }

    /// The engine's decision-cost counters so far (zeros before the
    /// first decision); for a sharded backend, the sum over shards.
    pub fn cost(&self) -> EngineCounters {
        self.engine
            .as_ref()
            .map(|e| e.counters())
            .unwrap_or_default()
    }

    /// Records the waits-for edges of a deferral (attributed to the
    /// entity partition the requester stalled on); returns a rollback
    /// decision instead if an edge would close a waits-for cycle.
    fn defer_on<V: AdmissionView + ?Sized>(
        &mut self,
        txn: TxnId,
        blockers: &[TxnId],
        wait_partition: usize,
        view: &V,
    ) -> Decision {
        self.breakpoint_waits += 1;
        // Refresh this requester's outgoing waits-for edges only:
        // detaching the whole node would erase *other* transactions'
        // waits on this one and hide wait cycles (livelock).
        self.clear_out_edges(txn);
        for b in blockers {
            if let Err(cycle) = self.waits.add_edge(txn.0, b.0, wait_partition) {
                // A waits-for cycle: roll back a victim on it.
                let candidates: Vec<TxnId> = cycle
                    .nodes()
                    .iter()
                    .map(|&v| TxnId(v))
                    .filter(|&t| !view.is_committed(t))
                    .collect();
                let victim = if candidates.is_empty() {
                    txn
                } else {
                    self.policy.choose(txn, &candidates, view)
                };
                return Decision::Abort(vec![victim]);
            }
        }
        Decision::Defer
    }

    /// A preventer over `txn_count` transactions using `spec` and the
    /// given deadlock-victim policy.
    pub fn new(txn_count: usize, spec: RuntimeSpec, policy: VictimPolicy) -> Self {
        MlaPrevent {
            spec,
            engine: None,
            shards: 0,
            workers: 0,
            window: LiveWindow::new(),
            waits: ShardedWaits::new(txn_count, 1),
            txn_count,
            policy,
            guard: None,
            breakpoint_waits: 0,
            prevention_misses: 0,
        }
    }

    /// Decisions granted on the certificate fast path, across every
    /// universe (A7/A8 accounting).
    pub fn certified_skips(&self) -> u64 {
        self.guard.as_ref().map(CertGuard::total_skips).unwrap_or(0)
    }

    /// Fast-path grants split per universe (empty without a
    /// certificate).
    pub fn certified_skips_per_universe(&self) -> Vec<u64> {
        self.guard
            .as_ref()
            .map(|g| g.skips.clone())
            .unwrap_or_default()
    }

    /// Universe-disarm events caused by off-footprint strays.
    pub fn cert_voids(&self) -> u64 {
        self.guard.as_ref().map(|g| g.voids).unwrap_or(0)
    }

    /// Universes re-armed after every blamed foreign transaction
    /// drained from the live window.
    pub fn cert_re_arms(&self) -> u64 {
        self.guard.as_ref().map(|g| g.re_arms).unwrap_or(0)
    }

    /// Arms the certified fast path with an `mla-lint` [`StaticCert`]
    /// lattice: in-footprint steps of **armed universes** are granted
    /// immediately, with no closure engine and — unlike the uncertified
    /// preventer — **no breakpoint waits**: the per-universe proof
    /// makes every interleaving of those transactions correctable, so
    /// the §6 delay rule has nothing left to prevent there. Histories
    /// therefore differ from the uncertified preventer's (which defers
    /// conservatively); both are correctable. Uncertified universes'
    /// steps go through the engine and the delay rule as usual.
    ///
    /// A step outside its transaction's certified footprint voids
    /// certificates per universe (see [`CertGuard`]): the engine is
    /// caught up by replaying the journal (acyclic — every granted step
    /// either passed the engine or was certified) and the touched
    /// universes fall back to runtime checking. Unlike [`MlaDetect`],
    /// the preventer **re-arms** a voided universe once every foreign
    /// transaction blamed for it drains — it aborted, or committed and
    /// was evicted from the live window, so its journal entries can
    /// join no new closure cycle.
    pub fn with_static_cert(mut self, cert: StaticCert) -> Self {
        assert!(
            self.engine.is_none(),
            "set the certificate before the first decision"
        );
        assert_eq!(
            cert.k(),
            BreakpointSpecification::k(&self.spec),
            "certificate depth must match the spec"
        );
        self.guard = Some(CertGuard::new(cert, true));
        self
    }

    /// Catches the engine up on every step granted so far (certified
    /// skips included): fresh backend, full journal replay.
    fn catch_up_engine<V: AdmissionView + ?Sized>(&mut self, view: &V) {
        let mut engine = EngineBackend::with_parallelism(
            view.nest().clone(),
            self.spec.clone(),
            self.shards,
            self.workers,
        );
        for s in view.history_steps() {
            engine
                .apply_step(s)
                .expect("certified history must replay acyclically");
            engine.commit_step();
        }
        self.engine = Some(engine);
    }

    /// The decision procedure, against any [`AdmissionView`] — the
    /// simulator's `World` or `mla-serve`'s live admission state. The
    /// [`Control`] impl is a thin delegation to this.
    pub fn decide_view<V: AdmissionView + ?Sized>(&mut self, txn: TxnId, view: &V) -> Decision {
        let candidate = view.candidate(txn);
        let wait_partition = candidate.entity.index();
        if let Some(guard) = self.guard.as_mut() {
            // Re-arm any voided universe whose blamed strays have all
            // drained: committed and evicted from the live window (or
            // rolled back, handled eagerly in `aborted_view`).
            let window = &self.window;
            guard.sweep(|t| window.is_evicted(t));
            match guard.admit(txn, candidate.entity) {
                CertAdmit::Skip(_) => return Decision::Grant,
                CertAdmit::Engine => {}
                CertAdmit::Voided => {
                    // A stray just disarmed at least one universe whose
                    // steps the engine never saw: catch it up on the
                    // journal before deciding this step through it.
                    self.catch_up_engine(view);
                }
            }
        }
        if self.engine.is_none() {
            self.engine = Some(EngineBackend::with_parallelism(
                view.nest().clone(),
                self.spec.clone(),
                self.shards,
                self.workers,
            ));
        }
        let engine = self.engine.as_mut().expect("just initialised");
        match engine.apply_step(candidate) {
            Ok(()) => {
                // Find blockers against the *tentative* closure (it now
                // includes the candidate): live unfinished transactions
                // whose last performed step precedes the candidate but is
                // not at the required breakpoint. The backend answers
                // with the candidate's closure predecessors, ascending by
                // transaction id — an order independent of engine layout,
                // so sharded and unsharded runs wait identically.
                let blockers: Vec<TxnId> = engine
                    .pending_predecessors()
                    .into_iter()
                    .filter(|&t| {
                        t != txn
                            && !view.is_committed(t)
                            && !view.is_finished(t)
                            && view.performed_seq(t) > 0
                            && !view.at_breakpoint(t, view.level(t, txn))
                    })
                    .collect();
                if blockers.is_empty() {
                    // §6: every closure-predecessor's last step sits at a
                    // suitable breakpoint, so performing now keeps the
                    // closure consistent with the performance order.
                    engine.commit_step();
                    self.window.maintain_with_backend(engine, view);
                    self.clear_out_edges(txn);
                    return Decision::Grant;
                }
                engine.rollback_step();
                self.defer_on(txn, &blockers, wait_partition, view)
            }
            Err(witness) => {
                // The candidate would close a closure cycle — something
                // the §6 delay rule promises never happens once blockers
                // are honoured. If there *are* blockers, deferring keeps
                // the promise alive (the cycle may dissolve once they
                // reach breakpoints); a blocker-free cyclic candidate is
                // a genuine prevention miss resolved by rollback.
                let blockers: Vec<TxnId> = witness
                    .txns
                    .iter()
                    .copied()
                    .filter(|&t| {
                        t != txn
                            && !view.is_committed(t)
                            && !view.is_finished(t)
                            && view.performed_seq(t) > 0
                            && !view.at_breakpoint(t, view.level(t, txn))
                    })
                    .collect();
                if !blockers.is_empty() {
                    return self.defer_on(txn, &blockers, wait_partition, view);
                }
                self.prevention_misses += 1;
                let mut candidates: Vec<TxnId> = witness
                    .txns
                    .iter()
                    .copied()
                    .filter(|&t| !view.is_committed(t))
                    .collect();
                if candidates.is_empty() {
                    candidates.push(txn);
                }
                Decision::Abort(vec![self.policy.choose(txn, &candidates, view)])
            }
        }
    }

    /// Backfills a performed step's real values into the engine.
    pub fn performed_view(&mut self, step: &Step) {
        if let Some(engine) = self.engine.as_mut() {
            engine.performed(step);
        }
    }

    /// Records `txn`'s commit: its wait edges drop.
    pub fn committed_view(&mut self, txn: TxnId) {
        self.waits.detach_node(txn.0);
    }

    /// Records a rollback of `txn`'s steps. A rolled-back stray's
    /// journal entries are gone, so any certificate blame it held
    /// drains immediately.
    pub fn aborted_view(&mut self, txn: TxnId) {
        self.window.on_aborted(txn);
        self.waits.detach_node(txn.0);
        if let Some(engine) = self.engine.as_mut() {
            engine.remove_txn(txn);
        }
        if let Some(guard) = self.guard.as_mut() {
            guard.on_aborted(txn);
        }
    }
}

impl Control for MlaPrevent {
    fn name(&self) -> &'static str {
        "mla-prevent"
    }

    fn decide(&mut self, txn: TxnId, world: &World) -> Decision {
        self.decide_view(txn, world)
    }

    fn performed(&mut self, record: &StepRecord, _world: &World) {
        self.performed_view(&record.as_step());
    }

    fn committed(&mut self, txn: TxnId, _world: &World) {
        self.committed_view(txn);
    }

    fn aborted(&mut self, txn: TxnId, _world: &World) {
        self.aborted_view(txn);
    }

    fn decision_cost(&self) -> Option<EngineCounters> {
        Some(self.cost())
    }

    fn shard_decision_cost(&self) -> Vec<EngineCounters> {
        self.engine
            .as_ref()
            .map(|e| e.shard_counters())
            .unwrap_or_default()
    }

    fn parallel_stats(&self) -> Option<ParallelStats> {
        MlaPrevent::parallel_stats(self)
    }

    fn certified_skips(&self) -> u64 {
        MlaPrevent::certified_skips(self)
    }

    fn certified_skips_per_universe(&self) -> Vec<u64> {
        MlaPrevent::certified_skips_per_universe(self)
    }

    fn cert_re_arms(&self) -> u64 {
        MlaPrevent::cert_re_arms(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use mla_core::nest::Nest;
    use mla_model::program::{ScriptOp::*, ScriptProgram};
    use mla_model::EntityId;
    use mla_sim::{run, SimConfig};
    use mla_txn::{NoBreakpoints, PhaseTable, RuntimeBreakpoints, TxnInstance};
    use std::sync::Arc;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    fn opposing_transfers(
        k: usize,
        with_breakpoints: bool,
    ) -> (Nest, Vec<TxnInstance>, RuntimeSpec) {
        let bp: Arc<dyn RuntimeBreakpoints> = if with_breakpoints {
            Arc::new(PhaseTable::new(k, [(1, 2)]))
        } else {
            Arc::new(NoBreakpoints { k })
        };
        let instances = vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![Add(e(0), -1), Add(e(1), 1)])),
                bp.clone(),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![Add(e(1), -1), Add(e(0), 1)])),
                bp.clone(),
            ),
        ];
        let spec = RuntimeSpec::new(k)
            .with(TxnId(0), bp.clone())
            .with(TxnId(1), bp);
        let nest = Nest::new(k, vec![vec![0], vec![0]]).unwrap();
        (nest, instances, spec)
    }

    #[test]
    fn breakpoints_avoid_both_waits_and_aborts() {
        let (nest, instances, spec) = opposing_transfers(3, true);
        let mut control = MlaPrevent::new(2, spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(31),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 2);
        assert_eq!(out.metrics.aborts, 0);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        assert_eq!(out.store.value(e(0)) + out.store.value(e(1)), 20);
        assert_eq!(control.prevention_misses, 0);
        // Abort-free prevention runs stay on the pure delta path.
        assert_eq!(control.cost().rebuilds, 0);
        assert!(control.cost().steps_applied > 0);
    }

    #[test]
    fn without_breakpoints_prevention_serializes() {
        let (nest, instances, spec) = opposing_transfers(3, false);
        let mut control = MlaPrevent::new(2, spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(32),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        // With atomic breakpoints the history must in fact be
        // serializable.
        assert!(oracle::is_serializable_outcome(&out));
    }

    #[test]
    fn audit_waits_for_transfer_phase() {
        // A transfer with a phase breakpoint and an audit atomic wrt it:
        // the audit must never observe money in transit.
        let k = 3;
        let tbp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
        let abp: Arc<dyn RuntimeBreakpoints> = Arc::new(NoBreakpoints { k });
        let instances = vec![
            TxnInstance::new(
                TxnId(0),
                Arc::new(ScriptProgram::new(vec![Add(e(0), -7), Add(e(1), 7)])),
                tbp.clone(),
            ),
            TxnInstance::new(
                TxnId(1),
                Arc::new(ScriptProgram::new(vec![Accumulate(e(0)), Accumulate(e(1))])),
                abp.clone(),
            ),
        ];
        let spec = RuntimeSpec::new(k).with(TxnId(0), tbp).with(TxnId(1), abp);
        let nest = Nest::new(k, vec![vec![0], vec![1]]).unwrap();
        let mut control = MlaPrevent::new(2, spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            [(e(0), 50), (e(1), 50)],
            &[0, 0],
            &SimConfig::seeded(33),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 2);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        // The audit's reads, whenever they happened, must sum to 100 in
        // the *equivalent* multilevel-atomic execution — check the actual
        // values it accumulated.
        let audit_reads: i64 = out
            .execution
            .steps()
            .iter()
            .filter(|s| s.txn == TxnId(1))
            .map(|s| s.observed)
            .sum();
        assert_eq!(audit_reads, 100, "no money in transit was observed");
    }

    #[test]
    fn sharded_prevention_matches_unsharded_outcome() {
        // Prevention never aborts here (breakpoints make the weave
        // legal), so the sharded backend must produce the identical
        // history, wait for wait, to the global engine.
        let (nest, instances, spec) = opposing_transfers(3, true);
        let mut flat = MlaPrevent::new(2, spec.clone(), VictimPolicy::FewestSteps);
        let out_flat = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(31),
            &mut flat,
        );
        let (_, instances, _) = opposing_transfers(3, true);
        let mut sharded =
            MlaPrevent::new(2, spec.clone(), VictimPolicy::FewestSteps).with_shards(4);
        let out_sharded = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(31),
            &mut sharded,
        );
        assert_eq!(out_sharded.metrics.aborts, 0);
        assert_eq!(out_flat.execution.steps(), out_sharded.execution.steps());
        assert_eq!(flat.breakpoint_waits, sharded.breakpoint_waits);
        assert_eq!(sharded.prevention_misses, 0);
        assert!(oracle::is_correctable_outcome(&out_sharded, &nest, &spec));
    }

    #[test]
    fn parallel_prevention_matches_serial_wait_for_wait() {
        // The same weave through the serial sharded backend and the
        // thread-parallel one: identical histories, waits, and counters
        // (the blocker probe crosses the worker boundary unchanged).
        let (nest, instances, spec) = opposing_transfers(3, true);
        let mut serial = MlaPrevent::new(2, spec.clone(), VictimPolicy::FewestSteps).with_shards(4);
        let out_serial = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(31),
            &mut serial,
        );
        let (_, instances, _) = opposing_transfers(3, true);
        let mut parallel = MlaPrevent::new(2, spec.clone(), VictimPolicy::FewestSteps)
            .with_shards(4)
            .with_parallelism(2);
        let out_parallel = run(
            nest.clone(),
            instances,
            [(e(0), 10), (e(1), 10)],
            &[0, 0],
            &SimConfig::seeded(31),
            &mut parallel,
        );
        assert_eq!(out_serial.execution.steps(), out_parallel.execution.steps());
        assert_eq!(serial.breakpoint_waits, parallel.breakpoint_waits);
        assert_eq!(serial.cost(), parallel.cost());
        assert_eq!(parallel.prevention_misses, 0);
        assert!(oracle::is_correctable_outcome(&out_parallel, &nest, &spec));
        assert!(parallel.parallel_stats().is_some());
        assert!(serial.parallel_stats().is_none());
    }

    #[test]
    fn swarm_with_mixed_classes_progresses() {
        // 3 pi(2)-classes of transfers with breakpoints; cross-class
        // interleaving must serialize, in-class may weave.
        let k = 3;
        let mut instances = Vec::new();
        let mut spec = RuntimeSpec::new(k);
        let mut paths = Vec::new();
        for i in 0..9u32 {
            let bp: Arc<dyn RuntimeBreakpoints> = Arc::new(PhaseTable::new(k, [(1, 2)]));
            let from = i % 4;
            let to = (i + 2) % 4;
            instances.push(TxnInstance::new(
                TxnId(i),
                Arc::new(ScriptProgram::new(vec![Add(e(from), -1), Add(e(to), 1)])),
                bp.clone(),
            ));
            spec.insert(TxnId(i), bp);
            paths.push(vec![i % 3]);
        }
        let nest = Nest::new(k, paths).unwrap();
        let mut control = MlaPrevent::new(9, spec.clone(), VictimPolicy::FewestSteps);
        let out = run(
            nest.clone(),
            instances,
            (0..4).map(|a| (e(a), 25)).collect::<Vec<_>>(),
            &(0..9u64).map(|i| i * 2).collect::<Vec<_>>(),
            &SimConfig::seeded(34),
            &mut control,
        );
        assert_eq!(out.metrics.committed, 9);
        assert!(!out.metrics.timed_out);
        assert!(oracle::is_correctable_outcome(&out, &nest, &spec));
        let total: i64 = (0..4).map(|a| out.store.value(e(a))).sum();
        assert_eq!(total, 100);
    }
    #[test]
    fn certified_preventer_skips_waits_and_stays_correctable() {
        let p = mla_workload::partitioned::generate(mla_workload::partitioned::PartitionedConfig {
            partitions: 2,
            txns_per_partition: 10,
            scanner_len: 10,
            arrival_spacing: 2,
        });
        let wl = &p.workload;
        let cert = mla_lint::certify_workload(wl)
            .cert
            .expect("partitioned workload must certify");
        let mut control = MlaPrevent::new(wl.txn_count(), wl.spec(), VictimPolicy::FewestSteps)
            .with_static_cert(cert);
        let out = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &SimConfig::seeded(77),
            &mut control,
        );
        // Every step granted straight off the certificate: no closure
        // engine, no breakpoint waits, no defers at all.
        assert_eq!(out.metrics.committed as usize, wl.txn_count());
        assert!(control.certified_skips() > 0);
        assert_eq!(out.metrics.certified_skips, control.certified_skips());
        assert_eq!(out.metrics.defers, 0);
        assert_eq!(control.breakpoint_waits, 0);
        assert_eq!(control.prevention_misses, 0);
        assert_eq!(out.metrics.decision_cost, EngineCounters::default());
        // Grant-all under a certificate is sound: the certificate proves
        // every interleaving correctable, and the oracle agrees.
        assert!(oracle::is_correctable_outcome(&out, &wl.nest, &wl.spec()));
    }

    #[test]
    fn voided_cert_re_arms_after_the_stray_drains() {
        let p = mla_workload::partitioned::generate(mla_workload::partitioned::PartitionedConfig {
            partitions: 2,
            txns_per_partition: 10,
            scanner_len: 6,
            arrival_spacing: 4,
        });
        let wl = &p.workload;
        let real = mla_lint::certify_workload(wl)
            .cert
            .expect("partitioned workload must certify");
        // Doctor the certificate: empty the first-arriving transaction's
        // footprint, so its very first step is an off-footprint stray and
        // its universe is disarmed before earning a single skip. Every
        // later skip recorded for that universe can therefore only have
        // happened after the blame drained and the universe re-armed.
        let first = wl
            .arrivals
            .iter()
            .enumerate()
            .min_by_key(|&(t, &at)| (at, t))
            .map(|(t, _)| t)
            .unwrap();
        let footprints: Vec<Vec<EntityId>> = (0..wl.txn_count())
            .map(|t| {
                if t == first {
                    Vec::new()
                } else {
                    real.footprint(TxnId(t as u32)).to_vec()
                }
            })
            .collect();
        let universes: Vec<u32> = (0..wl.txn_count())
            .map(|t| real.universe_of(TxnId(t as u32)).unwrap())
            .collect();
        let certified: Vec<bool> = (0..real.universe_count() as u32)
            .map(|u| real.is_certified(u))
            .collect();
        let doctored =
            mla_core::cert::StaticCert::per_universe(real.k(), footprints, universes, certified);
        let stray_universe = doctored.universe_of(TxnId(first as u32)).unwrap() as usize;
        let config = SimConfig::seeded(5);
        let mut fast = MlaPrevent::new(wl.txn_count(), wl.spec(), VictimPolicy::FewestSteps)
            .with_static_cert(doctored);
        let out_fast = run(
            wl.nest.clone(),
            wl.instances(),
            wl.initial.iter().copied(),
            &wl.arrivals,
            &config,
            &mut fast,
        );
        assert!(fast.cert_voids() > 0, "the stray never disarmed anything");
        assert!(
            fast.cert_re_arms() > 0,
            "the universe never re-armed after the stray drained"
        );
        let per = fast.certified_skips_per_universe();
        assert!(
            per[stray_universe] > 0,
            "a re-armed certificate must demonstrably skip again"
        );
        assert_ne!(
            fast.cost(),
            EngineCounters::default(),
            "the stray's own steps must go through the engine"
        );
        // Voiding and re-arming may legally change *when* steps are
        // granted (a certified skip waives a breakpoint wait), but never
        // whether the run completes or stays inside Theorem 2.
        assert_eq!(out_fast.metrics.committed as usize, wl.txn_count());
        assert!(oracle::is_correctable_outcome(
            &out_fast,
            &wl.nest,
            &wl.spec()
        ));
    }
}
