//! Property-based scheduler safety: random synthetic workloads through
//! every control, every history re-checked against the offline theory.

use mla_cc::{
    oracle, CertAdmit, CertGuard, MlaDetect, MlaPrevent, SerialControl, SgtControl,
    TimestampOrdering, TwoPhaseLocking, VictimPolicy,
};
use mla_core::cert::StaticCert;
use mla_model::{EntityId, TxnId};
use mla_sim::{run, Control, SimConfig};
use mla_workload::synthetic::{generate, SyntheticConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Params {
    txns: usize,
    k: usize,
    densities: Vec<f64>,
    fanout: Vec<usize>,
    entities: usize,
    len_max: usize,
    seed: u64,
    sim_seed: u64,
}

impl Params {
    fn workload(&self) -> mla_workload::Workload {
        generate(SyntheticConfig {
            txns: self.txns,
            k: self.k,
            fanout: self.fanout.clone(),
            densities: self.densities.clone(),
            len_min: 1,
            len_max: self.len_max,
            entities: self.entities,
            zipf_theta: 0.6,
            arrival_spacing: 2,
            seed: self.seed,
        })
        .workload
    }
}

fn params() -> impl Strategy<Value = Params> {
    (2usize..5).prop_flat_map(|k| {
        (
            2usize..8,
            proptest::collection::vec(0.0f64..1.0, k - 2),
            proptest::collection::vec(1usize..3, k - 2),
            2usize..6,
            2usize..5,
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(
                move |(txns, densities, fanout, entities, len_max, seed, sim_seed)| Params {
                    txns,
                    k,
                    densities,
                    fanout,
                    entities,
                    len_max,
                    seed,
                    sim_seed,
                },
            )
    })
}

fn drive(
    p: &Params,
    control: &mut dyn Control,
) -> (mla_sim::sim::SimOutcome, mla_workload::Workload) {
    let wl = p.workload();
    let out = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(p.sim_seed),
        control,
    );
    (out, wl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serializable_controls_stay_serializable(p in params()) {
        for name in ["serial", "2pl", "to", "sgt"] {
            let (out, wl) = match name {
                "serial" => drive(&p, &mut SerialControl::default()),
                "2pl" => drive(&p, &mut TwoPhaseLocking::new()),
                "to" => drive(&p, &mut TimestampOrdering::new()),
                _ => drive(&p, &mut SgtControl::new(p.txns, VictimPolicy::FewestSteps)),
            };
            prop_assert!(!out.metrics.timed_out, "{} timed out on {:?}", name, p);
            prop_assert_eq!(out.metrics.committed as usize, wl.txn_count(),
                "{} did not finish", name);
            prop_assert!(oracle::is_serializable_outcome(&out),
                "{} produced a non-serializable history on {:?}", name, p);
        }
    }

    #[test]
    fn mla_controls_stay_correctable(p in params()) {
        // Detect.
        let wl = p.workload();
        let mut detect = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
        let (out, wl) = drive(&p, &mut detect);
        prop_assert!(!out.metrics.timed_out, "detect timed out on {:?}", p);
        prop_assert_eq!(out.metrics.committed as usize, wl.txn_count());
        prop_assert!(oracle::is_correctable_outcome(&out, &wl.nest, &wl.spec()),
            "detect violated Theorem 2 on {:?}", p);

        // Prevent.
        let wl2 = p.workload();
        let mut prevent = MlaPrevent::new(wl2.txn_count(), wl2.spec(), VictimPolicy::FewestSteps);
        let (out, wl2) = drive(&p, &mut prevent);
        prop_assert!(!out.metrics.timed_out, "prevent timed out on {:?}", p);
        prop_assert_eq!(out.metrics.committed as usize, wl2.txn_count());
        prop_assert_eq!(prevent.prevention_misses, 0, "the §6 rule needed its fallback");
        prop_assert!(oracle::is_correctable_outcome(&out, &wl2.nest, &wl2.spec()),
            "prevent violated Theorem 2 on {:?}", p);
    }

    /// The re-arm protocol, under randomized foreign footprints: while
    /// a straying foreign transaction is live, every universe it
    /// touched must refuse the fast path; the moment it drains (and
    /// only then), each of those universes re-arms and earns at least
    /// one more certified skip. Universes the stray never touched keep
    /// skipping throughout, and condemned universes never skip at all.
    #[test]
    fn voided_certificates_rearm_only_after_the_stray_drains(
        universes in 1usize..4,
        txns_per in 1usize..4,
        certified_bits in proptest::collection::vec(any::<bool>(), 3),
        stray_entities in proptest::collection::vec(0u32..40, 1..6),
    ) {
        // Universe u owns entities u*10 .. : txn i of u gets the private
        // entity u*10+i plus the universe-shared u*10+9. At least one
        // universe is certified so the guard has something to void.
        let mut footprints = Vec::new();
        let mut universe_ids = Vec::new();
        for u in 0..universes {
            for i in 0..txns_per {
                footprints.push(vec![
                    EntityId((u * 10 + i) as u32),
                    EntityId((u * 10 + 9) as u32),
                ]);
                universe_ids.push(u as u32);
            }
        }
        let mut certified: Vec<bool> =
            (0..universes).map(|u| certified_bits[u]).collect();
        if certified.iter().all(|&c| !c) {
            certified[0] = true;
        }
        let cert = StaticCert::per_universe(3, footprints, universe_ids, certified.clone());
        let mut guard = CertGuard::new(cert.clone(), true);
        let total = universes * txns_per;
        let foreign = TxnId(total as u32);

        let expect = |guard: &mut CertGuard, disarmed: &[bool]| -> Result<(), TestCaseError> {
            for t in 0..total {
                let u = t / txns_per;
                let step = EntityId((u * 10 + t % txns_per) as u32);
                let admit = guard.admit(TxnId(t as u32), step);
                if certified[u] && !disarmed[u] {
                    prop_assert_eq!(admit, CertAdmit::Skip(u as u32));
                } else {
                    prop_assert_eq!(admit, CertAdmit::Engine);
                }
            }
            Ok(())
        };

        let armed_before = vec![false; universes];
        expect(&mut guard, &armed_before)?;

        // The foreign transaction strays over its randomized footprint.
        // Every certified universe whose entity union holds a strayed
        // entity is disarmed at first contact.
        let mut disarmed = vec![false; universes];
        for &raw in &stray_entities {
            guard.admit(foreign, EntityId(raw));
            for (u, hit) in disarmed.iter_mut().enumerate() {
                if certified[u] && cert.universe_entities(u as u32).contains(&EntityId(raw)) {
                    *hit = true;
                }
            }
        }
        // While the stray is live: no skip from any touched universe.
        expect(&mut guard, &disarmed)?;
        // A sweep that drains nothing changes nothing.
        guard.sweep(|_| false);
        expect(&mut guard, &disarmed)?;

        // The stray drains: every touched universe re-arms and skips
        // again, exactly once per disarmed universe.
        guard.sweep(|t| t == foreign);
        prop_assert_eq!(
            guard.re_arms,
            disarmed.iter().filter(|&&d| d).count() as u64
        );
        expect(&mut guard, &armed_before)?;
    }
}
