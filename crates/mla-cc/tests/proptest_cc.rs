//! Property-based scheduler safety: random synthetic workloads through
//! every control, every history re-checked against the offline theory.

use mla_cc::{
    oracle, MlaDetect, MlaPrevent, SerialControl, SgtControl, TimestampOrdering, TwoPhaseLocking,
    VictimPolicy,
};
use mla_sim::{run, Control, SimConfig};
use mla_workload::synthetic::{generate, SyntheticConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Params {
    txns: usize,
    k: usize,
    densities: Vec<f64>,
    fanout: Vec<usize>,
    entities: usize,
    len_max: usize,
    seed: u64,
    sim_seed: u64,
}

impl Params {
    fn workload(&self) -> mla_workload::Workload {
        generate(SyntheticConfig {
            txns: self.txns,
            k: self.k,
            fanout: self.fanout.clone(),
            densities: self.densities.clone(),
            len_min: 1,
            len_max: self.len_max,
            entities: self.entities,
            zipf_theta: 0.6,
            arrival_spacing: 2,
            seed: self.seed,
        })
        .workload
    }
}

fn params() -> impl Strategy<Value = Params> {
    (2usize..5).prop_flat_map(|k| {
        (
            2usize..8,
            proptest::collection::vec(0.0f64..1.0, k - 2),
            proptest::collection::vec(1usize..3, k - 2),
            2usize..6,
            2usize..5,
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(
                move |(txns, densities, fanout, entities, len_max, seed, sim_seed)| Params {
                    txns,
                    k,
                    densities,
                    fanout,
                    entities,
                    len_max,
                    seed,
                    sim_seed,
                },
            )
    })
}

fn drive(
    p: &Params,
    control: &mut dyn Control,
) -> (mla_sim::sim::SimOutcome, mla_workload::Workload) {
    let wl = p.workload();
    let out = run(
        wl.nest.clone(),
        wl.instances(),
        wl.initial.iter().copied(),
        &wl.arrivals,
        &SimConfig::seeded(p.sim_seed),
        control,
    );
    (out, wl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serializable_controls_stay_serializable(p in params()) {
        for name in ["serial", "2pl", "to", "sgt"] {
            let (out, wl) = match name {
                "serial" => drive(&p, &mut SerialControl::default()),
                "2pl" => drive(&p, &mut TwoPhaseLocking::new()),
                "to" => drive(&p, &mut TimestampOrdering::new()),
                _ => drive(&p, &mut SgtControl::new(p.txns, VictimPolicy::FewestSteps)),
            };
            prop_assert!(!out.metrics.timed_out, "{} timed out on {:?}", name, p);
            prop_assert_eq!(out.metrics.committed as usize, wl.txn_count(),
                "{} did not finish", name);
            prop_assert!(oracle::is_serializable_outcome(&out),
                "{} produced a non-serializable history on {:?}", name, p);
        }
    }

    #[test]
    fn mla_controls_stay_correctable(p in params()) {
        // Detect.
        let wl = p.workload();
        let mut detect = MlaDetect::new(wl.spec(), VictimPolicy::FewestSteps);
        let (out, wl) = drive(&p, &mut detect);
        prop_assert!(!out.metrics.timed_out, "detect timed out on {:?}", p);
        prop_assert_eq!(out.metrics.committed as usize, wl.txn_count());
        prop_assert!(oracle::is_correctable_outcome(&out, &wl.nest, &wl.spec()),
            "detect violated Theorem 2 on {:?}", p);

        // Prevent.
        let wl2 = p.workload();
        let mut prevent = MlaPrevent::new(wl2.txn_count(), wl2.spec(), VictimPolicy::FewestSteps);
        let (out, wl2) = drive(&p, &mut prevent);
        prop_assert!(!out.metrics.timed_out, "prevent timed out on {:?}", p);
        prop_assert_eq!(out.metrics.committed as usize, wl2.txn_count());
        prop_assert_eq!(prevent.prevention_misses, 0, "the §6 rule needed its fallback");
        prop_assert!(oracle::is_correctable_outcome(&out, &wl2.nest, &wl2.spec()),
            "prevent violated Theorem 2 on {:?}", p);
    }
}
