//! Property coverage for the live-service storage substrate:
//!
//! * the interval-latch tree never grants overlapping exclusive latches,
//!   and conflicting grants happen in arrival (FIFO) order;
//! * the MVCC chains satisfy read-your-writes, snapshots at or above the
//!   GC frontier are stable under later installs and folds, and a folded
//!   or undone version is never read again.
//!
//! The MVCC properties run against a deliberately naive reference model
//! (the full never-folded write history), so they catch both wrong reads
//! and resurrected values.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use mla_model::{EntityId, TxnId, Value};
use mla_storage::{LatchMode, LatchTree, MvccStore};
use proptest::prelude::*;

fn e(i: u32) -> EntityId {
    EntityId(i)
}

/// A latch request: `(start, extra length, exclusive)`.
fn req_strategy() -> impl Strategy<Value = (u32, u32, bool)> {
    (0u32..12, 0u32..4, any::<bool>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Threads race random acquire/release sequences while a shared
    /// audit set records what is held: at no instant may two overlapping
    /// latches coexist when either is exclusive.
    #[test]
    fn latches_never_overlap_exclusively(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(req_strategy(), 1..5), 2..5),
    ) {
        let tree = Arc::new(LatchTree::new());
        let active: Arc<Mutex<Vec<(u32, u32, bool, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let token = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for reqs in per_thread {
            let tree = Arc::clone(&tree);
            let active = Arc::clone(&active);
            let token = Arc::clone(&token);
            threads.push(std::thread::spawn(move || {
                for (lo, len, exclusive) in reqs {
                    let hi = lo + len;
                    let mode = if exclusive { LatchMode::Exclusive } else { LatchMode::Shared };
                    let guard = tree.acquire(e(lo), e(hi), mode);
                    let my_token = token.fetch_add(1, Ordering::SeqCst);
                    {
                        let mut held = active.lock().unwrap();
                        for &(olo, ohi, oexcl, _) in held.iter() {
                            assert!(
                                !((exclusive || oexcl) && lo <= ohi && olo <= hi),
                                "granted [{lo},{hi}] excl={exclusive} while \
                                 [{olo},{ohi}] excl={oexcl} held"
                            );
                        }
                        held.push((lo, hi, exclusive, my_token));
                    }
                    std::thread::yield_now();
                    active.lock().unwrap().retain(|&(_, _, _, t)| t != my_token);
                    drop(guard);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        prop_assert_eq!(tree.held_count(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One exclusive holder spans the whole range; waiters with random
    /// ranges and modes queue in a serialized arrival order. After the
    /// holder releases, every *mutually conflicting* pair of waiters
    /// must be granted in arrival order (the no-barge rule).
    #[test]
    fn conflicting_waiters_wake_fifo(
        reqs in proptest::collection::vec(req_strategy(), 2..6),
    ) {
        let tree = Arc::new(LatchTree::new());
        let holder = tree.acquire(e(0), e(15), LatchMode::Exclusive);
        let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let arrived = Arc::new(AtomicU64::new(0));
        let all_queued = Arc::new(Barrier::new(reqs.len() + 1));
        let mut threads = Vec::new();
        for (i, &(lo, len, exclusive)) in reqs.iter().enumerate() {
            let tree = Arc::clone(&tree);
            let order = Arc::clone(&order);
            let arrived = Arc::clone(&arrived);
            let all_queued = Arc::clone(&all_queued);
            threads.push(std::thread::spawn(move || {
                while arrived.load(Ordering::SeqCst) != i as u64 {
                    std::thread::yield_now();
                }
                let mode = if exclusive { LatchMode::Exclusive } else { LatchMode::Shared };
                let handle = std::thread::spawn(move || {
                    let guard = tree.acquire(e(lo), e(lo + len), mode);
                    // Record while still holding: a conflicting later
                    // grant cannot run until this guard drops.
                    order.lock().unwrap().push(i);
                    drop(guard);
                });
                // Give the request time to queue before the next arrival.
                std::thread::sleep(std::time::Duration::from_millis(10));
                arrived.fetch_add(1, Ordering::SeqCst);
                all_queued.wait();
                handle.join().unwrap();
            }));
        }
        all_queued.wait();
        drop(holder);
        for t in threads {
            t.join().unwrap();
        }
        let order = order.lock().unwrap();
        prop_assert_eq!(order.len(), reqs.len());
        for (pa, &a) in order.iter().enumerate() {
            for &b in order.iter().skip(pa + 1) {
                let (alo, alen, aexcl) = reqs[a];
                let (blo, blen, bexcl) = reqs[b];
                let overlap = alo <= blo + blen && blo <= alo + alen;
                if overlap && (aexcl || bexcl) {
                    prop_assert!(
                        a < b,
                        "waiter {} (arrived later) granted before conflicting waiter {}",
                        a, b
                    );
                }
            }
        }
    }
}

/// The reference model: the full, never-folded install history plus the
/// highest GC frontier applied so far. Reads at tickets at or above the
/// frontier must agree with the real store exactly.
#[derive(Default)]
struct Model {
    history: HashMap<u32, Vec<(u64, Value)>>,
    initial: HashMap<u32, Value>,
    frontier: u64,
}

impl Model {
    fn read_at(&self, entity: u32, ticket: u64) -> Value {
        self.history
            .get(&entity)
            .and_then(|h| h.iter().rev().find(|(t, _)| *t <= ticket))
            .map(|(_, v)| *v)
            .unwrap_or_else(|| self.initial.get(&entity).copied().unwrap_or(0))
    }

    fn latest(&self, entity: u32) -> Value {
        self.history
            .get(&entity)
            .and_then(|h| h.last())
            .map(|(_, v)| *v)
            .unwrap_or_else(|| self.initial.get(&entity).copied().unwrap_or(0))
    }
}

/// One scripted op: `(kind, entity, value)` where kind selects
/// install / undo / GC.
fn op_strategy() -> impl Strategy<Value = (u8, u32, i64)> {
    (0u8..10, 0u32..6, -100i64..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential run of a random install/undo/GC script against the
    /// reference model:
    ///
    /// * **read-your-writes** — right after an install, reading at its
    ///   ticket returns the written value and `latest` moves to it;
    /// * **snapshot stability** — a snapshot taken at the current head
    ///   ticket re-reads identically after any number of later installs
    ///   and folds at or below it;
    /// * **no resurrection** — every read at or above the GC frontier
    ///   agrees with the full-history model, so no folded or undone
    ///   version's value ever reappears.
    #[test]
    fn mvcc_agrees_with_full_history_model(
        shards in 1usize..5,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let initial: Vec<(EntityId, Value)> = vec![(e(0), 100), (e(1), 7)];
        let store = MvccStore::new(shards, initial.iter().copied());
        let mut model = Model::default();
        for (ent, v) in &initial {
            model.initial.insert(ent.0, *v);
        }
        let mut next_ticket = 1u64;
        // A snapshot pinned mid-run: (ticket, per-entity values).
        let mut snapshot: Option<(u64, Vec<Value>)> = None;
        for (kind, entity, value) in ops {
            match kind {
                // Install a new version at a fresh global ticket.
                0..=5 => {
                    let ticket = next_ticket;
                    next_ticket += 1;
                    store.install(e(entity), ticket, TxnId(0), value);
                    model.history.entry(entity).or_default().push((ticket, value));
                    prop_assert_eq!(store.read_at(e(entity), ticket), value);
                    prop_assert_eq!(store.latest(e(entity)), (ticket, value));
                    if snapshot.is_none() && ticket % 3 == 0 {
                        let t = next_ticket - 1;
                        snapshot = Some((t, (0..6).map(|i| store.read_at(e(i), t)).collect()));
                    }
                }
                // Undo the entity's head version, if it is still above
                // the frontier (the service never undoes below it).
                6 | 7 => {
                    let head = model.history.get(&entity).and_then(|h| h.last()).copied();
                    if let Some((ticket, value)) = head {
                        if ticket >= model.frontier
                            && snapshot.as_ref().is_none_or(|(pin, _)| ticket > *pin)
                        {
                            let removed = store.remove(e(entity), ticket);
                            prop_assert_eq!(removed.value, value);
                            model.history.get_mut(&entity).unwrap().pop();
                        }
                    }
                }
                // Fold everything below a frontier no pin can precede:
                // the snapshot's pin (if any) caps it.
                _ => {
                    let cap = snapshot.as_ref().map_or(next_ticket, |(pin, _)| *pin);
                    let f = (next_ticket.min(cap)).max(model.frontier);
                    store.gc_before(f);
                    model.frontier = f;
                }
            }
            // Snapshot stability: the pinned read-set never changes.
            if let Some((pin, values)) = &snapshot {
                for (i, expect) in values.iter().enumerate() {
                    prop_assert_eq!(
                        store.read_at(e(i as u32), *pin), *expect,
                        "snapshot at ticket {} drifted on entity {}", pin, i
                    );
                }
            }
            // Full agreement with the model at and above the frontier.
            for ent in 0..6u32 {
                prop_assert_eq!(store.latest(e(ent)).1, model.latest(ent));
                for t in [model.frontier, model.frontier + 1, next_ticket] {
                    prop_assert_eq!(
                        store.read_at(e(ent), t), model.read_at(ent, t),
                        "read_at({}, {}) diverged from the model", ent, t
                    );
                }
            }
        }
        // No resurrection, structurally: every surviving version sits at
        // or above the frontier... unless it was the newest below it
        // (the fold keeps exactly one value *as base*, not a version).
        let live = store.version_count();
        let model_live: usize = model
            .history
            .values()
            .map(|h| h.iter().filter(|(t, _)| *t >= model.frontier).count())
            .sum();
        prop_assert_eq!(live, model_live);
    }
}
