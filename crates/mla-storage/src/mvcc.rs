//! Timestamped multi-version storage — the live-service substrate.
//!
//! Where [`Store`](crate::Store) journals a single current value per
//! entity (enough for the tick-driven simulator, which owns the world
//! exclusively), a real service has OS threads racing through the store:
//! writers install under the admission gate while snapshot readers scan
//! concurrently. [`MvccStore`] therefore keeps a *version chain* per
//! entity — `(ticket, txn, value)` triples ascending by the global
//! admission ticket — sharded under reader/writer locks:
//!
//! * writers [`install`](MvccStore::install) a new version at their
//!   step's admission ticket (per-entity monotone, guaranteed by the
//!   exclusive entity latch held across admission);
//! * readers [`read_at`](MvccStore::read_at) any ticket and see the
//!   newest version at or below it — a stable snapshot no concurrent
//!   writer can disturb;
//! * rollback [`remove`](MvccStore::remove)s a txn's version, exposing
//!   the predecessor — the cascading-undo primitive, version-chain
//!   edition;
//! * [`gc_before`](MvccStore::gc_before) folds every version no live
//!   frontier can reach into the chain base — the same invariant the
//!   closure engine's live-window eviction uses (once nothing live can
//!   reach a version, nothing ever will again).

use std::collections::HashMap;
use std::sync::RwLock;

use mla_model::{EntityId, TxnId, Value};

/// One committed-or-pending version of an entity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Version {
    /// Global admission ticket of the installing step.
    pub ticket: u64,
    /// The installing transaction.
    pub txn: TxnId,
    /// The value the step wrote.
    pub value: Value,
}

/// A per-entity version chain: a garbage-collected base plus explicit
/// versions ascending by ticket.
#[derive(Clone, Debug)]
struct Chain {
    /// Ticket at (or below) which the chain was last folded; reads below
    /// this resolve to `base`.
    base_ticket: u64,
    /// Value of the newest folded-away version (initial value when no GC
    /// has run).
    base: Value,
    /// Live versions, strictly ascending by ticket, all `> base_ticket`.
    versions: Vec<Version>,
}

impl Chain {
    fn new(initial: Value) -> Self {
        Chain {
            base_ticket: 0,
            base: initial,
            versions: Vec::new(),
        }
    }

    fn read_at(&self, ticket: u64) -> Value {
        match self.versions.iter().rev().find(|v| v.ticket <= ticket) {
            Some(v) => v.value,
            None => self.base,
        }
    }

    fn latest(&self) -> (u64, Value) {
        match self.versions.last() {
            Some(v) => (v.ticket, v.value),
            None => (self.base_ticket, self.base),
        }
    }
}

/// Sharded multi-version store. All methods take `&self`; shard locks
/// serialize only same-shard access, and the per-entity monotonicity
/// writers rely on is provided by the caller's entity latch, not by this
/// structure.
pub struct MvccStore {
    shards: Vec<RwLock<HashMap<EntityId, Chain>>>,
}

impl MvccStore {
    /// A store with `shards` internal lock shards (≥ 1) holding the given
    /// initial values; absent entities read 0, like
    /// [`Store`](crate::Store).
    pub fn new(shards: usize, initial: impl IntoIterator<Item = (EntityId, Value)>) -> Self {
        let shards = shards.max(1);
        let store = MvccStore {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        };
        for (e, v) in initial {
            if v != 0 {
                store.shards[store.shard_of(e)]
                    .write()
                    .expect("mvcc shard lock poisoned")
                    .insert(e, Chain::new(v));
            }
        }
        store
    }

    fn shard_of(&self, e: EntityId) -> usize {
        e.index() % self.shards.len()
    }

    /// The newest version of `e`: `(ticket, value)`. `(0, 0)` for a
    /// never-written entity.
    pub fn latest(&self, e: EntityId) -> (u64, Value) {
        let shard = self.shards[self.shard_of(e)]
            .read()
            .expect("mvcc shard lock poisoned");
        shard.get(&e).map_or((0, 0), |c| c.latest())
    }

    /// Snapshot read: the value of `e` as of `ticket` (the newest version
    /// at or below it). Stable for any `ticket` at or above the GC
    /// frontier the caller holds a pin for.
    pub fn read_at(&self, e: EntityId, ticket: u64) -> Value {
        let shard = self.shards[self.shard_of(e)]
            .read()
            .expect("mvcc shard lock poisoned");
        shard.get(&e).map_or(0, |c| c.read_at(ticket))
    }

    /// Installs a new version of `e` at `ticket`.
    ///
    /// # Panics
    /// Panics if `ticket` is not strictly newer than the chain head — the
    /// caller must hold the exclusive entity latch across ticket
    /// assignment and install, which makes per-entity tickets monotone.
    pub fn install(&self, e: EntityId, ticket: u64, txn: TxnId, value: Value) {
        let mut shard = self.shards[self.shard_of(e)]
            .write()
            .expect("mvcc shard lock poisoned");
        let chain = shard.entry(e).or_insert_with(|| Chain::new(0));
        let (head, _) = chain.latest();
        assert!(
            ticket > head,
            "install ticket {ticket} not past chain head {head} for {e:?}"
        );
        chain.versions.push(Version { ticket, txn, value });
    }

    /// Rolls back the version of `e` installed at `ticket`, exposing its
    /// predecessor. Returns the removed version.
    ///
    /// # Panics
    /// Panics if that version is not the chain head: cascading undo must
    /// remove later versions of the entity first (the journal-store
    /// [`UndoError::NotLatest`](crate::UndoError::NotLatest) invariant,
    /// version-chain edition).
    pub fn remove(&self, e: EntityId, ticket: u64) -> Version {
        let mut shard = self.shards[self.shard_of(e)]
            .write()
            .expect("mvcc shard lock poisoned");
        let chain = shard
            .get_mut(&e)
            .expect("removing a version of an unwritten entity");
        let head = chain.versions.last().copied();
        match head {
            Some(v) if v.ticket == ticket => chain.versions.pop().expect("head checked"),
            other => panic!(
                "remove at ticket {ticket} on {e:?} but chain head is {other:?}: \
                 undo later versions first"
            ),
        }
    }

    /// Epoch GC: folds every version strictly below `frontier` into the
    /// chain base (keeping the newest such version's value as the base —
    /// it is still the read target for snapshots in `[base_ticket,
    /// next-version)`). Returns how many versions were reclaimed.
    ///
    /// Sound when the caller's frontier is a lower bound on (a) every
    /// live reader pin and (b) the first ticket of every transaction that
    /// can still be rolled back: below that, no read and no undo can ever
    /// target a folded version again.
    pub fn gc_before(&self, frontier: u64) -> usize {
        let mut reclaimed = 0;
        for shard in &self.shards {
            let mut shard = shard.write().expect("mvcc shard lock poisoned");
            for chain in shard.values_mut() {
                let cut = chain.versions.partition_point(|v| v.ticket < frontier);
                if cut == 0 {
                    continue;
                }
                let folded = chain.versions[cut - 1];
                chain.base_ticket = folded.ticket;
                chain.base = folded.value;
                chain.versions.drain(..cut);
                reclaimed += cut;
            }
        }
        reclaimed
    }

    /// Total live (unfolded) versions across all entities.
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("mvcc shard lock poisoned")
                    .values()
                    .map(|c| c.versions.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Number of entities with a materialized chain.
    pub fn entity_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("mvcc shard lock poisoned").len())
            .sum()
    }

    /// Sum of latest values over `entities` (conservation audits).
    pub fn total(&self, entities: impl IntoIterator<Item = EntityId>) -> Value {
        entities.into_iter().map(|e| self.latest(e).1).sum()
    }

    /// Sum of snapshot values over `entities` as of `ticket`.
    pub fn total_at(&self, entities: impl IntoIterator<Item = EntityId>, ticket: u64) -> Value {
        entities.into_iter().map(|e| self.read_at(e, ticket)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn read_your_writes_and_snapshots() {
        let s = MvccStore::new(4, [(e(1), 100)]);
        assert_eq!(s.latest(e(1)), (0, 100));
        assert_eq!(s.latest(e(2)), (0, 0));
        s.install(e(1), 5, TxnId(0), 90);
        s.install(e(1), 9, TxnId(1), 80);
        assert_eq!(s.latest(e(1)), (9, 80));
        assert_eq!(s.read_at(e(1), 4), 100);
        assert_eq!(s.read_at(e(1), 5), 90);
        assert_eq!(s.read_at(e(1), 8), 90);
        assert_eq!(s.read_at(e(1), 100), 80);
    }

    #[test]
    fn remove_exposes_predecessor() {
        let s = MvccStore::new(1, []);
        s.install(e(7), 3, TxnId(0), 10);
        s.install(e(7), 6, TxnId(1), 20);
        let v = s.remove(e(7), 6);
        assert_eq!(v.value, 20);
        assert_eq!(s.latest(e(7)), (3, 10));
        s.remove(e(7), 3);
        assert_eq!(s.latest(e(7)), (0, 0));
    }

    #[test]
    #[should_panic(expected = "undo later versions first")]
    fn remove_of_non_head_panics() {
        let s = MvccStore::new(1, []);
        s.install(e(7), 3, TxnId(0), 10);
        s.install(e(7), 6, TxnId(1), 20);
        s.remove(e(7), 3);
    }

    #[test]
    #[should_panic(expected = "not past chain head")]
    fn stale_install_panics() {
        let s = MvccStore::new(1, []);
        s.install(e(7), 3, TxnId(0), 10);
        s.install(e(7), 3, TxnId(1), 20);
    }

    #[test]
    fn gc_folds_but_preserves_reads_at_or_past_frontier() {
        let s = MvccStore::new(2, [(e(1), 100)]);
        for (t, v) in [(2u64, 90), (4, 80), (6, 70)] {
            s.install(e(1), t, TxnId(0), v);
        }
        assert_eq!(s.version_count(), 3);
        let reclaimed = s.gc_before(5);
        assert_eq!(reclaimed, 2);
        assert_eq!(s.version_count(), 1);
        // Reads at or past the frontier are untouched.
        assert_eq!(s.read_at(e(1), 5), 80);
        assert_eq!(s.read_at(e(1), 6), 70);
        assert_eq!(s.latest(e(1)), (6, 70));
        // Undo of the live head still works after folding underneath it.
        s.remove(e(1), 6);
        assert_eq!(s.latest(e(1)).1, 80);
    }

    #[test]
    fn totals_and_counts() {
        let s = MvccStore::new(3, [(e(0), 5), (e(1), 7)]);
        s.install(e(0), 1, TxnId(0), 6);
        assert_eq!(s.total([e(0), e(1), e(2)]), 13);
        assert_eq!(s.total_at([e(0), e(1)], 0), 12);
        assert_eq!(s.entity_count(), 2);
    }
}
