//! Epoch pins: the reader-side half of version garbage collection.
//!
//! A snapshot reader pins the ticket it is reading at; the GC frontier is
//! then `min(scheduler live-window frontier, min pinned ticket)` — no
//! version at or above it is folded, so every in-flight snapshot stays
//! stable for as long as its pin lives. Pins are plain atomic slots
//! (store on pin, reset on drop), so readers never contend on a lock and
//! the whole registry is a linear scan to fold — deliberately boring, in
//! the crossbeam-epoch shape but with tickets instead of collector
//! epochs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Slot value meaning "unpinned".
const EMPTY: u64 = u64::MAX;

/// A fixed-capacity registry of reader pins.
pub struct EpochRegistry {
    slots: Vec<AtomicU64>,
}

impl EpochRegistry {
    /// A registry with room for `capacity` simultaneous pins.
    pub fn new(capacity: usize) -> Self {
        EpochRegistry {
            slots: (0..capacity.max(1))
                .map(|_| AtomicU64::new(EMPTY))
                .collect(),
        }
    }

    /// Pins `ticket`, holding the GC frontier at or below it until the
    /// returned guard drops.
    ///
    /// # Panics
    /// Panics if every slot is busy — size the registry to the maximum
    /// number of concurrent readers (the service uses session count).
    pub fn pin(&self, ticket: u64) -> EpochPin<'_> {
        assert_ne!(ticket, EMPTY, "u64::MAX is the unpinned sentinel");
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(EMPTY, ticket, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return EpochPin {
                    registry: self,
                    slot: i,
                };
            }
        }
        panic!(
            "epoch registry exhausted ({} slots): more concurrent readers than planned",
            self.slots.len()
        );
    }

    /// The smallest pinned ticket, or `None` when nothing is pinned.
    pub fn min_active(&self) -> Option<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|&t| t != EMPTY)
            .min()
    }

    /// The GC frontier given the scheduler's own lower bound: the
    /// smallest of `window_frontier` and every live pin.
    pub fn frontier(&self, window_frontier: u64) -> u64 {
        self.min_active()
            .map_or(window_frontier, |p| p.min(window_frontier))
    }
}

/// An active pin; unpins on drop.
pub struct EpochPin<'a> {
    registry: &'a EpochRegistry,
    slot: usize,
}

impl EpochPin<'_> {
    /// The pinned ticket.
    pub fn ticket(&self) -> u64 {
        self.registry.slots[self.slot].load(Ordering::Acquire)
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        self.registry.slots[self.slot].store(EMPTY, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_bound_the_frontier() {
        let reg = EpochRegistry::new(4);
        assert_eq!(reg.min_active(), None);
        assert_eq!(reg.frontier(100), 100);
        let p1 = reg.pin(42);
        let p2 = reg.pin(17);
        assert_eq!(reg.min_active(), Some(17));
        assert_eq!(reg.frontier(100), 17);
        assert_eq!(reg.frontier(5), 5);
        drop(p2);
        assert_eq!(reg.frontier(100), 42);
        assert_eq!(p1.ticket(), 42);
        drop(p1);
        assert_eq!(reg.min_active(), None);
    }

    #[test]
    fn slots_recycle() {
        let reg = EpochRegistry::new(1);
        for t in 1..100u64 {
            let p = reg.pin(t);
            assert_eq!(reg.min_active(), Some(t));
            drop(p);
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let reg = EpochRegistry::new(1);
        let _p = reg.pin(1);
        let _q = reg.pin(2);
    }

    #[test]
    fn concurrent_pins_are_clean() {
        let reg = std::sync::Arc::new(EpochRegistry::new(64));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for t in 0..200u64 {
                        let p = reg.pin(t * 8 + i + 1);
                        assert!(p.ticket() >= 1);
                        drop(p);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.min_active(), None);
    }
}
