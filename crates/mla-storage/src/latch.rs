//! Interval latches over the entity key space — short-lived range guards
//! for the live service.
//!
//! A session thread latches the key range its next step touches (a point
//! for ordinary steps, a span for scanners) *before* entering the
//! admission gate, and drops the latch after its install completes. That
//! gives two properties the service's correctness argument leans on:
//!
//! * **Per-entity write serialization** — two steps on the same entity
//!   cannot interleave between ticket assignment and version install, so
//!   per-entity tickets are monotone and the recorded history's
//!   same-entity order equals the install order.
//! * **FIFO admission per conflict class** — conflicting requests are
//!   granted in arrival order (no barging): a request is granted only
//!   when it conflicts with no held latch *and* no earlier-arrived
//!   waiter. Non-conflicting requests skip past blocked ones freely.
//!
//! The held set is indexed by a B-tree keyed on interval start (the
//! `latch_interval_btree` shape); conflict probes scan only entries whose
//! start is at or below the probe's end, and the wait queue is kept in
//! arrival order.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use mla_model::EntityId;

/// Latch mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatchMode {
    /// Compatible with other shared holders of an overlapping range.
    Shared,
    /// Conflicts with every overlapping holder.
    Exclusive,
}

#[derive(Clone, Copy, Debug)]
struct Request {
    seq: u64,
    lo: u32,
    hi: u32,
    exclusive: bool,
}

impl Request {
    fn conflicts(&self, other: &Request) -> bool {
        (self.exclusive || other.exclusive) && self.lo <= other.hi && other.lo <= self.hi
    }
}

#[derive(Default)]
struct TreeState {
    next_seq: u64,
    /// Held latches, keyed by (interval start, seq) so overlap probes can
    /// stop at entries starting past the probe's end.
    held: BTreeMap<(u32, u64), Request>,
    /// Blocked requests in arrival order.
    waiting: VecDeque<Request>,
    /// Seqs promoted to `held` whose owner has not observed the grant
    /// yet.
    grants: u64, // statistics
    wait_events: u64,
}

impl TreeState {
    /// Whether `req` may be granted right now: no conflict with any held
    /// latch and no earlier-arrived waiter it conflicts with (the no-barge
    /// rule that makes conflicting grants FIFO).
    fn can_grant(&self, req: &Request) -> bool {
        let held_conflict = self
            .held
            .range(..=(req.hi, u64::MAX))
            .any(|(_, h)| h.conflicts(req));
        if held_conflict {
            return false;
        }
        !self
            .waiting
            .iter()
            .take_while(|w| w.seq < req.seq)
            .any(|w| w.conflicts(req))
    }

    fn grant(&mut self, req: Request) {
        self.grants += 1;
        self.held.insert((req.lo, req.seq), req);
    }

    /// Promotes every now-grantable waiter, in arrival order. Returns
    /// whether anything was promoted.
    fn promote(&mut self) -> bool {
        let mut promoted = false;
        let mut i = 0;
        while i < self.waiting.len() {
            let req = self.waiting[i];
            // The no-barge rule against earlier *still-waiting* entries:
            // entries before index i are exactly those.
            let blocked = self
                .held
                .range(..=(req.hi, u64::MAX))
                .any(|(_, h)| h.conflicts(&req))
                || self.waiting.iter().take(i).any(|w| w.conflicts(&req));
            if blocked {
                i += 1;
            } else {
                self.waiting.remove(i);
                self.grant(req);
                promoted = true;
            }
        }
        promoted
    }
}

/// A latch manager over the entity key space. All methods take `&self`.
#[derive(Default)]
pub struct LatchTree {
    state: Mutex<TreeState>,
    wakeup: Condvar,
}

impl LatchTree {
    /// An empty tree.
    pub fn new() -> Self {
        LatchTree::default()
    }

    /// Acquires a latch on the inclusive entity range `[lo, hi]`,
    /// blocking until granted. Returns a guard that releases on drop.
    pub fn acquire(&self, lo: EntityId, hi: EntityId, mode: LatchMode) -> LatchGuard<'_> {
        assert!(lo.0 <= hi.0, "inverted latch range");
        let mut st = self.state.lock().expect("latch tree poisoned");
        let req = Request {
            seq: st.next_seq,
            lo: lo.0,
            hi: hi.0,
            exclusive: mode == LatchMode::Exclusive,
        };
        st.next_seq += 1;
        if st.can_grant(&req) {
            st.grant(req);
        } else {
            st.wait_events += 1;
            st.waiting.push_back(req);
            while !st.held.contains_key(&(req.lo, req.seq)) {
                st = self.wakeup.wait(st).expect("latch tree poisoned");
            }
        }
        LatchGuard {
            tree: self,
            key: (req.lo, req.seq),
        }
    }

    /// Point-range convenience: `acquire(e, e, mode)`.
    pub fn acquire_point(&self, e: EntityId, mode: LatchMode) -> LatchGuard<'_> {
        self.acquire(e, e, mode)
    }

    /// `(grants, wait_events)` so far — how often requests were granted
    /// and how often one had to queue.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.state.lock().expect("latch tree poisoned");
        (st.grants, st.wait_events)
    }

    /// Number of currently held latches.
    pub fn held_count(&self) -> usize {
        self.state.lock().expect("latch tree poisoned").held.len()
    }

    fn release(&self, key: (u32, u64)) {
        let mut st = self.state.lock().expect("latch tree poisoned");
        let removed = st.held.remove(&key);
        debug_assert!(removed.is_some(), "latch released twice");
        if st.promote() {
            self.wakeup.notify_all();
        }
    }
}

/// A held latch; releases (and wakes eligible waiters) on drop.
pub struct LatchGuard<'a> {
    tree: &'a LatchTree,
    key: (u32, u64),
}

impl LatchGuard<'_> {
    /// The arrival sequence number of this latch (grant-order proofs in
    /// tests).
    pub fn seq(&self) -> u64 {
        self.key.1
    }
}

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.tree.release(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier, Mutex as StdMutex};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn disjoint_exclusive_latches_coexist() {
        let tree = LatchTree::new();
        let a = tree.acquire(e(0), e(4), LatchMode::Exclusive);
        let b = tree.acquire(e(5), e(9), LatchMode::Exclusive);
        assert_eq!(tree.held_count(), 2);
        drop(a);
        drop(b);
        assert_eq!(tree.held_count(), 0);
    }

    #[test]
    fn shared_latches_overlap_but_exclusive_waits() {
        let tree = Arc::new(LatchTree::new());
        let s1 = tree.acquire(e(0), e(9), LatchMode::Shared);
        let _s2 = tree.acquire(e(3), e(12), LatchMode::Shared);
        let (granted_tx, granted_rx) = std::sync::mpsc::channel();
        let t2 = {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let g = tree.acquire(e(5), e(5), LatchMode::Exclusive);
                granted_tx.send(()).unwrap();
                drop(g);
            })
        };
        // The exclusive request must block while a shared overlap holds.
        assert!(granted_rx
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
        drop(s1);
        drop(_s2);
        granted_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("exclusive latch granted after shared release");
        t2.join().unwrap();
    }

    #[test]
    fn conflicting_grants_are_fifo() {
        // One holder + N conflicting waiters arriving in a known order:
        // grants must happen in that order.
        let tree = Arc::new(LatchTree::new());
        let order = Arc::new(StdMutex::new(Vec::new()));
        let holder = tree.acquire(e(0), e(0), LatchMode::Exclusive);
        let arrived = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        let n = 8u64;
        let all_queued = Arc::new(Barrier::new(n as usize + 1));
        for i in 0..n {
            let tree = Arc::clone(&tree);
            let order = Arc::clone(&order);
            let arrived = Arc::clone(&arrived);
            let all_queued = Arc::clone(&all_queued);
            threads.push(std::thread::spawn(move || {
                // Serialize arrival: thread i enqueues i-th.
                while arrived.load(Ordering::SeqCst) != i {
                    std::thread::yield_now();
                }
                let handle = std::thread::spawn(move || {
                    let g = tree.acquire(e(0), e(0), LatchMode::Exclusive);
                    order.lock().unwrap().push(i);
                    drop(g);
                });
                // Wait until the request is actually queued before
                // releasing the next arrival.
                std::thread::sleep(std::time::Duration::from_millis(10));
                arrived.fetch_add(1, Ordering::SeqCst);
                all_queued.wait();
                handle.join().unwrap();
            }));
        }
        all_queued.wait();
        drop(holder);
        for t in threads {
            t.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(
            *order,
            (0..n).collect::<Vec<_>>(),
            "grant order != arrival order"
        );
    }

    #[test]
    fn non_conflicting_requests_skip_blocked_waiters() {
        let tree = Arc::new(LatchTree::new());
        let holder = tree.acquire(e(0), e(0), LatchMode::Exclusive);
        let (tx, rx) = std::sync::mpsc::channel();
        let blocked = {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let _g = tree.acquire(e(0), e(0), LatchMode::Exclusive);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Disjoint latch must not queue behind the blocked waiter.
        let t = {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let _g = tree.acquire(e(9), e(9), LatchMode::Exclusive);
                tx.send(()).unwrap();
            })
        };
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("disjoint latch granted while conflicting waiter blocked");
        t.join().unwrap();
        drop(holder);
        blocked.join().unwrap();
    }
}
