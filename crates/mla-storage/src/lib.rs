//! Entity storage with undo logging — the substrate the §6 concurrency
//! controls run on.
//!
//! The paper's schedulers need more than a key-value map: the
//! cycle-detection control rolls transactions back, and multilevel
//! atomicity makes rollback *cascading* (§6 notes an aborted transaction
//! can force rollback of transactions that read its published partial
//! results, potentially in long chains). [`Store`] therefore journals
//! every performed step as a [`StepRecord`] and supports undoing any
//! per-entity suffix of the journal in reverse order, verifying at each
//! undo that the store still holds the value the step wrote (the
//! scheduler must have undone every later access to the entity first —
//! exactly the cascade).
//!
//! The surviving journal is replayable as an [`Execution`], which is how
//! every simulation feeds its actual history back through the offline
//! Theorem 2 checker (the "safety oracle" in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod latch;
pub mod mvcc;

pub use epoch::{EpochPin, EpochRegistry};
pub use latch::{LatchGuard, LatchMode, LatchTree};
pub use mvcc::{MvccStore, Version};

use std::collections::HashMap;

use mla_model::{EntityId, Execution, Step, TxnId, Value};

/// The store abstraction the admission layer is written against: current
/// entity values plus the live history as model steps. The simulator's
/// journal [`Store`] and the service's MVCC history recorder both
/// implement it, so `mla-cc`'s schedulers (and their certificate-voiding
/// replay path) run unchanged over either substrate.
pub trait StepSource {
    /// The live (not rolled back) steps, in performance order.
    fn live_steps(&self) -> Vec<Step>;
    /// The current value of an entity (0 if never written).
    fn current_value(&self, e: EntityId) -> Value;
}

impl StepSource for Store {
    fn live_steps(&self) -> Vec<Step> {
        self.journal.iter().map(StepRecord::as_step).collect()
    }

    fn current_value(&self, e: EntityId) -> Value {
        self.value(e)
    }
}

/// A journaled step: what [`Store::perform`] did, with enough information
/// to undo it and to reconstruct the execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Monotone journal id (performance order).
    pub id: u64,
    /// The transaction that performed the step.
    pub txn: TxnId,
    /// The step's sequence number within the transaction's current run.
    pub seq: u32,
    /// The entity accessed.
    pub entity: EntityId,
    /// Entity value before the step.
    pub observed: Value,
    /// Entity value after the step.
    pub wrote: Value,
}

impl StepRecord {
    /// The record as a model [`Step`].
    pub fn as_step(&self) -> Step {
        Step {
            txn: self.txn,
            seq: self.seq,
            entity: self.entity,
            observed: self.observed,
            wrote: self.wrote,
        }
    }
}

/// Errors from [`Store::undo`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UndoError {
    /// The record is not live in the journal (already undone, or never
    /// performed here).
    NotLive {
        /// The offending record id.
        id: u64,
    },
    /// The entity no longer holds the value the step wrote: some later
    /// access to the entity is still live and must be undone first.
    NotLatest {
        /// The offending record id.
        id: u64,
        /// The value the entity currently holds.
        current: Value,
        /// The value the record wrote (and expected to find).
        wrote: Value,
    },
}

impl std::fmt::Display for UndoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UndoError::NotLive { id } => write!(f, "record {id} is not live"),
            UndoError::NotLatest { id, current, wrote } => write!(
                f,
                "record {id} is not the latest access: entity holds {current}, step wrote {wrote}"
            ),
        }
    }
}

impl std::error::Error for UndoError {}

/// The entity store: current values plus the live journal.
///
/// ```
/// use mla_storage::Store;
/// use mla_model::{EntityId, TxnId};
///
/// let mut store = Store::new([(EntityId(0), 100)]);
/// let w = store.perform(TxnId(0), 0, EntityId(0), |v| v - 30);
/// assert_eq!(store.value(EntityId(0)), 70);
/// // Roll it back (reverse order, full cascade — trivially just `w`).
/// store.undo(&[w]).unwrap();
/// assert_eq!(store.value(EntityId(0)), 100);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Store {
    values: HashMap<EntityId, Value>,
    initial: HashMap<EntityId, Value>,
    /// Live journal, in performance order. Undone records are removed.
    journal: Vec<StepRecord>,
    next_id: u64,
    undone_count: u64,
}

impl Store {
    /// Creates a store; entities absent from `initial` start at 0.
    pub fn new(initial: impl IntoIterator<Item = (EntityId, Value)>) -> Self {
        let initial: HashMap<EntityId, Value> = initial.into_iter().collect();
        Store {
            values: initial.clone(),
            initial,
            journal: Vec::new(),
            next_id: 0,
            undone_count: 0,
        }
    }

    /// Current value of an entity.
    pub fn value(&self, e: EntityId) -> Value {
        self.values.get(&e).copied().unwrap_or(0)
    }

    /// The entity's configured initial value.
    pub fn initial_value(&self, e: EntityId) -> Value {
        self.initial.get(&e).copied().unwrap_or(0)
    }

    /// Performs one step: applies `f` to the entity's current value and
    /// journals the access.
    pub fn perform(
        &mut self,
        txn: TxnId,
        seq: u32,
        entity: EntityId,
        f: impl FnOnce(Value) -> Value,
    ) -> StepRecord {
        let observed = self.value(entity);
        let wrote = f(observed);
        self.values.insert(entity, wrote);
        let record = StepRecord {
            id: self.next_id,
            txn,
            seq,
            entity,
            observed,
            wrote,
        };
        self.next_id += 1;
        self.journal.push(record);
        record
    }

    /// Undoes `records`, which must be supplied in **reverse** performance
    /// order.
    ///
    /// A *value-changing* record must be the latest live value-changing
    /// access to its entity when reached (the caller — the scheduler —
    /// computes that cascade). A *pure read* (`wrote == observed`) is a
    /// no-op in the entity's value chain and may be removed from anywhere
    /// in the journal without disturbing later accesses — this is what
    /// keeps read-only transactions (audits, snapshots) from dragging
    /// every later writer into their rollbacks.
    ///
    /// On error the store is left with all records preceding the failing
    /// one already undone.
    pub fn undo(&mut self, records: &[StepRecord]) -> Result<(), UndoError> {
        for r in records {
            let pos = self
                .journal
                .iter()
                .rposition(|j| j.id == r.id)
                .ok_or(UndoError::NotLive { id: r.id })?;
            let live = self.journal[pos];
            if live.wrote != live.observed {
                let current = self.value(live.entity);
                if current != live.wrote {
                    return Err(UndoError::NotLatest {
                        id: r.id,
                        current,
                        wrote: live.wrote,
                    });
                }
                self.values.insert(live.entity, live.observed);
            }
            self.journal.remove(pos);
            self.undone_count += 1;
        }
        Ok(())
    }

    /// All records of a transaction still live in the journal, in
    /// performance order.
    pub fn live_records_of(&self, txn: TxnId) -> Vec<StepRecord> {
        self.journal
            .iter()
            .copied()
            .filter(|r| r.txn == txn)
            .collect()
    }

    /// The latest live access to `entity`, if any.
    pub fn latest_access(&self, entity: EntityId) -> Option<StepRecord> {
        self.journal
            .iter()
            .rev()
            .find(|r| r.entity == entity)
            .copied()
    }

    /// Every live record with id >= `from`, in performance order. This is
    /// the tail a cascading rollback must consider.
    pub fn live_records_since(&self, from: u64) -> Vec<StepRecord> {
        self.journal
            .iter()
            .copied()
            .filter(|r| r.id >= from)
            .collect()
    }

    /// The live journal, in performance order.
    pub fn journal(&self) -> &[StepRecord] {
        &self.journal
    }

    /// Number of records undone over the store's lifetime (rollback work —
    /// an experiment metric).
    pub fn undone_count(&self) -> u64 {
        self.undone_count
    }

    /// Rebuilds the surviving history as an [`Execution`].
    ///
    /// # Panics
    /// Panics if surviving per-transaction sequences are not contiguous —
    /// the scheduler must undo whole transaction suffixes, never interior
    /// steps.
    pub fn execution(&self) -> Execution {
        Execution::new(self.journal.iter().map(StepRecord::as_step).collect())
            .expect("journal sequences must be contiguous per transaction")
    }

    /// Sum of values over a set of entities (used by audit-style checks).
    pub fn total(&self, entities: impl IntoIterator<Item = EntityId>) -> Value {
        entities.into_iter().map(|e| self.value(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(x: u32) -> EntityId {
        EntityId(x)
    }

    fn t(x: u32) -> TxnId {
        TxnId(x)
    }

    #[test]
    fn perform_reads_and_writes() {
        let mut s = Store::new([(e(0), 100)]);
        let r = s.perform(t(0), 0, e(0), |v| v - 30);
        assert_eq!(r.observed, 100);
        assert_eq!(r.wrote, 70);
        assert_eq!(s.value(e(0)), 70);
        assert_eq!(s.value(e(9)), 0, "absent entities default to 0");
        assert_eq!(s.initial_value(e(0)), 100);
    }

    #[test]
    fn journal_ids_are_monotone() {
        let mut s = Store::new([]);
        let a = s.perform(t(0), 0, e(0), |v| v + 1);
        let b = s.perform(t(1), 0, e(1), |v| v + 1);
        assert!(a.id < b.id);
        assert_eq!(s.journal().len(), 2);
    }

    #[test]
    fn undo_restores_values_and_journal() {
        let mut s = Store::new([(e(0), 10)]);
        let r0 = s.perform(t(0), 0, e(0), |v| v + 5);
        let r1 = s.perform(t(0), 1, e(1), |_| 42);
        s.undo(&[r1, r0]).unwrap();
        assert_eq!(s.value(e(0)), 10);
        assert_eq!(s.value(e(1)), 0);
        assert!(s.journal().is_empty());
        assert_eq!(s.undone_count(), 2);
    }

    #[test]
    fn undo_rejects_stale_record() {
        let mut s = Store::new([]);
        let r0 = s.perform(t(0), 0, e(0), |_| 1);
        let _r1 = s.perform(t(1), 0, e(0), |_| 2);
        // r0 is no longer the latest access to e0.
        let err = s.undo(&[r0]).unwrap_err();
        assert!(matches!(
            err,
            UndoError::NotLatest {
                current: 2,
                wrote: 1,
                ..
            }
        ));
        // Undo in proper cascade order works.
        let r1 = s.latest_access(e(0)).unwrap();
        s.undo(&[r1, r0]).unwrap();
        assert_eq!(s.value(e(0)), 0);
    }

    #[test]
    fn undo_rejects_double_undo() {
        let mut s = Store::new([]);
        let r = s.perform(t(0), 0, e(0), |_| 1);
        s.undo(&[r]).unwrap();
        assert_eq!(s.undo(&[r]).unwrap_err(), UndoError::NotLive { id: r.id });
    }

    #[test]
    fn cascade_queries() {
        let mut s = Store::new([]);
        let r0 = s.perform(t(0), 0, e(0), |_| 1);
        let r1 = s.perform(t(1), 0, e(0), |_| 2);
        let r2 = s.perform(t(1), 1, e(1), |_| 3);
        assert_eq!(s.live_records_of(t(1)), vec![r1, r2]);
        assert_eq!(s.live_records_since(r1.id), vec![r1, r2]);
        assert_eq!(s.latest_access(e(0)), Some(r1));
        assert_eq!(s.latest_access(e(2)), None);
        let _ = r0;
    }

    #[test]
    fn execution_reconstruction_is_valid() {
        use mla_model::program::{ScriptOp::*, ScriptProgram, System};
        let sys = System::new(
            vec![
                Box::new(ScriptProgram::new(vec![Add(e(0), -10), Add(e(1), 10)])),
                Box::new(ScriptProgram::new(vec![Add(e(0), -5)])),
            ],
            [(e(0), 100)],
        );
        let mut s = Store::new([(e(0), 100)]);
        // Interleave: t0 w, t1 w, t0 d.
        s.perform(t(0), 0, e(0), |v| v - 10);
        s.perform(t(1), 0, e(0), |v| v - 5);
        s.perform(t(0), 1, e(1), |v| v + 10);
        let exec = s.execution();
        sys.validate(&exec)
            .expect("journal replays as a valid execution");
        assert_eq!(s.value(e(0)), 85);
    }

    #[test]
    fn execution_after_abort_and_retry() {
        let mut s = Store::new([]);
        // t0 runs two steps, aborts, reruns.
        let a0 = s.perform(t(0), 0, e(0), |_| 1);
        let a1 = s.perform(t(0), 1, e(1), |_| 2);
        s.undo(&[a1, a0]).unwrap();
        s.perform(t(0), 0, e(0), |_| 7);
        s.perform(t(0), 1, e(1), |_| 8);
        let exec = s.execution();
        assert_eq!(exec.len(), 2);
        assert_eq!(exec.steps()[0].wrote, 7);
    }

    #[test]
    fn total_sums_entities() {
        let mut s = Store::new([(e(0), 5), (e(1), 7)]);
        s.perform(t(0), 0, e(1), |v| v + 3);
        assert_eq!(s.total([e(0), e(1), e(2)]), 15);
    }

    #[test]
    fn pure_read_undoes_from_anywhere() {
        let mut s = Store::new([(e(0), 10)]);
        let read = s.perform(t(0), 0, e(0), |v| v); // pure read
        let write = s.perform(t(1), 0, e(0), |v| v + 5); // later write
                                                         // The read is not the latest access, but being value-neutral it
                                                         // can still be undone without touching the value.
        s.undo(&[read]).unwrap();
        assert_eq!(s.value(e(0)), 15);
        assert_eq!(s.journal().len(), 1);
        assert_eq!(s.journal()[0].id, write.id);
    }

    #[test]
    fn write_undo_still_requires_latest() {
        let mut s = Store::new([]);
        let w0 = s.perform(t(0), 0, e(0), |_| 1);
        let _r1 = s.perform(t(1), 0, e(0), |v| v); // read of the dirty value
        let _w2 = s.perform(t(2), 0, e(0), |_| 2);
        // w0 cannot be undone while w2's value stands.
        assert!(matches!(
            s.undo(&[w0]).unwrap_err(),
            UndoError::NotLatest { .. }
        ));
    }

    #[test]
    fn write_undo_succeeds_past_interleaved_reads() {
        let mut s = Store::new([(e(0), 7)]);
        let w = s.perform(t(0), 0, e(0), |v| v + 3);
        let r = s.perform(t(1), 0, e(0), |v| v); // observed the dirty 10
                                                 // Cascade order: the read first (it observed w's value), then w.
        s.undo(&[r, w]).unwrap();
        assert_eq!(s.value(e(0)), 7);
        assert!(s.journal().is_empty());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn interior_undo_breaks_reconstruction() {
        let mut s = Store::new([]);
        let a0 = s.perform(t(0), 0, e(0), |_| 1);
        let _a1 = s.perform(t(0), 1, e(1), |_| 2);
        // Undo only the first step of t0 (an interior undo the schedulers
        // never do): the journal then starts t0 at seq 1.
        s.undo(&[a0]).unwrap();
        let _ = s.execution();
    }
}
