//! Property-based tests for the graph substrate.

#![allow(clippy::needless_range_loop)] // dense-index pairwise comparisons

use std::collections::HashSet;

use mla_graph::reach::{predecessor_sets, reachable_from};
use mla_graph::topo::is_acyclic;
use mla_graph::{find_cycle, tarjan, topo_sort, BitSet, DiGraph, IncrementalTopo};
use proptest::prelude::*;

/// Strategy: a graph as (node count, edge list).
fn graph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (1..=max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn bitset_behaves_like_hashset(ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..200)) {
        let mut bs = BitSet::new(64);
        let mut hs: HashSet<usize> = HashSet::new();
        for (x, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(x), hs.insert(x));
            } else {
                prop_assert_eq!(bs.remove(x), hs.remove(&x));
            }
            prop_assert_eq!(bs.count(), hs.len());
            prop_assert_eq!(bs.contains(x), hs.contains(&x));
        }
        let from_iter: Vec<usize> = bs.iter().collect();
        let mut expected: Vec<usize> = hs.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(from_iter, expected);
    }

    #[test]
    fn bitset_union_is_set_union(a in proptest::collection::hash_set(0usize..128, 0..50),
                                 b in proptest::collection::hash_set(0usize..128, 0..50)) {
        let mut ba = BitSet::new(128);
        let mut bb = BitSet::new(128);
        for &x in &a { ba.insert(x); }
        for &x in &b { bb.insert(x); }
        let changed = ba.union_with_returning_changed(&bb);
        prop_assert_eq!(changed, !b.is_subset(&a));
        let union: HashSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(ba.count(), union.len());
        for x in union { prop_assert!(ba.contains(x)); }
    }

    #[test]
    fn topo_sort_is_sound_and_complete((n, edges) in graph_strategy(16, 40)) {
        let g = DiGraph::from_edges(n, edges.iter().copied());
        match topo_sort(&g) {
            Ok(order) => {
                // A valid topological order over all nodes.
                prop_assert_eq!(order.len(), n);
                let mut pos = vec![0usize; n];
                for (i, &v) in order.iter().enumerate() { pos[v as usize] = i; }
                for (u, v) in g.edges() {
                    prop_assert!(pos[u as usize] < pos[v as usize]);
                }
                // And the SCC view agrees: all singletons, no self-loops.
                prop_assert!(tarjan(&g).is_acyclic_ignoring_self_loops());
                prop_assert!(!g.edges().any(|(u, v)| u == v));
            }
            Err(cycle) => {
                // The witness is a real cycle in the graph.
                let nodes = cycle.nodes();
                prop_assert!(!nodes.is_empty());
                for i in 0..nodes.len() {
                    let u = nodes[i];
                    let v = nodes[(i + 1) % nodes.len()];
                    prop_assert!(g.has_edge(u, v), "cycle edge ({u},{v}) missing");
                }
            }
        }
    }

    #[test]
    fn scc_members_mutually_reachable((n, edges) in graph_strategy(12, 30)) {
        let g = DiGraph::from_edges(n, edges.iter().copied());
        let c = tarjan(&g);
        for members in &c.members {
            if members.len() < 2 { continue; }
            for &a in members {
                let reach = reachable_from(&g, a);
                for &b in members {
                    if a != b {
                        prop_assert!(reach.contains(b as usize),
                            "SCC members {a},{b} must be mutually reachable");
                    }
                }
            }
        }
        // Cross-component edges respect reverse-topological numbering.
        for (u, v) in g.edges() {
            let (cu, cv) = (c.comp_of[u as usize], c.comp_of[v as usize]);
            if cu != cv {
                prop_assert!(cu > cv);
            }
        }
    }

    #[test]
    fn predecessor_sets_match_per_node_dfs((n, edges) in graph_strategy(12, 30)) {
        let g = DiGraph::from_edges(n, edges.iter().copied());
        let preds = predecessor_sets(&g);
        for u in 0..n as u32 {
            let reach = reachable_from(&g, u);
            for v in 0..n {
                prop_assert_eq!(reach.contains(v), preds[v].contains(u as usize),
                    "pred/reach disagreement at ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn incremental_topo_equals_batch((n, edges) in graph_strategy(12, 40)) {
        let mut inc = IncrementalTopo::new(n);
        let mut accepted: Vec<(u32, u32)> = Vec::new();
        for (u, v) in edges {
            let mut candidate = accepted.clone();
            candidate.push((u, v));
            let batch_ok = is_acyclic(&DiGraph::from_edges(n, candidate.iter().copied()));
            match inc.add_edge(u, v) {
                Ok(_) => {
                    prop_assert!(batch_ok, "incremental accepted a cyclic edge ({u},{v})");
                    accepted.push((u, v));
                }
                Err(_) => prop_assert!(!batch_ok, "incremental rejected an acyclic edge ({u},{v})"),
            }
            prop_assert!(inc.check_invariants());
        }
    }

    #[test]
    fn find_cycle_none_iff_acyclic((n, edges) in graph_strategy(14, 35)) {
        let g = DiGraph::from_edges(n, edges.iter().copied());
        prop_assert_eq!(find_cycle(&g).is_none(), is_acyclic(&g));
    }
}
