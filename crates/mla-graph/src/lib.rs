//! Directed-graph algorithms underpinning multilevel-atomicity checking.
//!
//! Everything in the reproduction that involves "absence of cycles in a
//! dependency relation" (the paper's Theorem 2 and its serializability
//! analogue from \[EGLT\]) bottoms out in this crate:
//!
//! * [`DiGraph`] — a compact adjacency-list directed graph over dense
//!   `u32` node indices.
//! * [`scc::tarjan`] / [`scc::Condensation`] — strongly connected
//!   components and the component DAG. The constructive proof of the
//!   paper's combinatorial Lemma 1 orders SCCs of a segment graph at each
//!   nesting stage; `Condensation` is exactly that object.
//! * [`topo`] — topological sorting and concrete cycle extraction, used to
//!   produce *witness* cycles when an execution is not correctable.
//! * [`reach`] — dense bitset-based reachability closure, the workhorse of
//!   the reference coherent-closure fixpoint.
//! * [`incremental::IncrementalTopo`] — Pearce–Kelly online topological
//!   order maintenance, used by the cycle-detection schedulers to reject a
//!   step the moment it would close a dependency cycle.
//! * [`summary::PairSummary`] — deduplicated transaction-level pair sets
//!   with forward reachability: what closure-engine shards exchange at
//!   their boundary and what live-window eviction reaches over.
//! * [`bitset::BitSet`] — a minimal fixed-capacity bitset (no external
//!   dependency) shared by the above.
//!
//! All algorithms are iterative (no recursion) so deep dependency chains —
//! which multilevel atomicity explicitly permits, see the rollback-cascade
//! discussion in §6 of the paper — cannot overflow the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod dense;
pub mod digraph;
pub mod incremental;
pub mod reach;
pub mod scc;
pub mod summary;
pub mod topo;

pub use bitset::BitSet;
pub use dense::DenseMap;
pub use digraph::DiGraph;
pub use incremental::IncrementalTopo;
pub use scc::{tarjan, Condensation};
pub use summary::PairSummary;
pub use topo::{find_cycle, topo_sort, Cycle, TopoResult};
