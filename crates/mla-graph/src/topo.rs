//! Topological sorting and witness-cycle extraction.
//!
//! Theorem 2 of the paper reduces correctability to acyclicity of the
//! coherent closure. When the check fails we want more than a boolean: the
//! experiments (and the cycle-detection scheduler's victim selection) need
//! the *actual* cycle of steps. [`topo_sort`] returns either a topological
//! order or a concrete [`Cycle`].

use crate::digraph::{DiGraph, NodeId};

/// A cycle witness: a sequence of nodes `v0, v1, ..., vk` such that each
/// consecutive pair is an edge and `(vk, v0)` is an edge. Self-loops yield
/// a single-node cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cycle(pub Vec<NodeId>);

impl Cycle {
    /// The nodes on the cycle, in traversal order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.0
    }

    /// Length of the cycle (number of edges = number of nodes).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// A cycle always has at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Result of [`topo_sort`].
pub type TopoResult = Result<Vec<NodeId>, Cycle>;

/// Kahn's algorithm. Returns a topological order (sources first) or a
/// witness cycle if the graph is cyclic.
pub fn topo_sort(g: &DiGraph) -> TopoResult {
    let n = g.node_count();
    let mut in_deg = g.in_degrees();
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| in_deg[v as usize] == 0)
        .collect();

    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in g.successors(v) {
            in_deg[w as usize] -= 1;
            if in_deg[w as usize] == 0 {
                queue.push(w);
            }
        }
    }

    if order.len() == n {
        Ok(order)
    } else {
        // Some node kept positive in-degree: it has a residual predecessor,
        // which itself has a residual predecessor, and so on — walking
        // backwards must eventually repeat a node, exposing a cycle.
        let start = (0..n as NodeId)
            .find(|&v| in_deg[v as usize] > 0)
            .expect("cyclic graph must have a node with residual in-degree");
        Err(find_cycle_backwards(g, start, &in_deg))
    }
}

/// Whether the graph is acyclic.
pub fn is_acyclic(g: &DiGraph) -> bool {
    topo_sort(g).is_ok()
}

/// Finds any cycle in `g`, or `None` if it is a DAG.
pub fn find_cycle(g: &DiGraph) -> Option<Cycle> {
    topo_sort(g).err()
}

/// Walks *backwards* within the residual (positive in-degree) subgraph
/// from `start` until a node repeats, then extracts the loop.
///
/// In Kahn's residual subgraph every node has positive residual in-degree,
/// and a residual edge's source is itself residual (a popped predecessor
/// would have decremented the edge away). So a backward walk never gets
/// stuck and must repeat within `n` steps; the repeated suffix, reversed,
/// is a forward cycle.
fn find_cycle_backwards(g: &DiGraph, start: NodeId, in_deg: &[usize]) -> Cycle {
    let rev = g.reversed();
    let n = g.node_count();
    let mut visited_at = vec![usize::MAX; n];
    let mut path: Vec<NodeId> = Vec::new();
    let mut v = start;
    loop {
        if visited_at[v as usize] != usize::MAX {
            let cycle_start = visited_at[v as usize];
            let mut cycle: Vec<NodeId> = path[cycle_start..].to_vec();
            cycle.reverse(); // backward walk order -> forward edge order
            return Cycle(cycle);
        }
        visited_at[v as usize] = path.len();
        path.push(v);
        // Prefer a predecessor already on the walk (tightest loop).
        v = rev
            .successors(v)
            .iter()
            .copied()
            .filter(|&w| in_deg[w as usize] > 0)
            .max_by_key(|&w| {
                let at = visited_at[w as usize];
                if at == usize::MAX {
                    (0, 0)
                } else {
                    (1, at)
                }
            })
            .expect("residual node must have a residual predecessor");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_topo(g: &DiGraph, order: &[NodeId]) {
        assert_eq!(order.len(), g.node_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, &v) in order.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u as usize] < pos[v as usize], "edge ({u},{v}) reversed");
        }
    }

    fn assert_valid_cycle(g: &DiGraph, c: &Cycle) {
        let nodes = c.nodes();
        assert!(!nodes.is_empty());
        for i in 0..nodes.len() {
            let u = nodes[i];
            let v = nodes[(i + 1) % nodes.len()];
            assert!(g.has_edge(u, v), "cycle edge ({u},{v}) missing");
        }
    }

    #[test]
    fn sorts_a_dag() {
        let g = DiGraph::from_edges(5, [(0, 2), (1, 2), (2, 3), (3, 4), (1, 4)]);
        let order = topo_sort(&g).expect("DAG");
        assert_valid_topo(&g, &order);
    }

    #[test]
    fn detects_a_triangle() {
        let g = DiGraph::from_edges(4, [(3, 0), (0, 1), (1, 2), (2, 0)]);
        let c = find_cycle(&g).expect("cyclic");
        assert_valid_cycle(&g, &c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn detects_self_loop() {
        let g = DiGraph::from_edges(2, [(0, 1), (1, 1)]);
        let c = find_cycle(&g).expect("self-loop is a cycle");
        assert_valid_cycle(&g, &c);
        assert_eq!(c.nodes(), &[1]);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(topo_sort(&DiGraph::new(0)).unwrap(), Vec::<NodeId>::new());
        assert_eq!(topo_sort(&DiGraph::new(1)).unwrap(), vec![0]);
    }

    #[test]
    fn cycle_reachable_only_through_prefix() {
        // 0 -> 1 -> 2 -> 3 -> 1 : cycle is {1,2,3}, entered via 0.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 1)]);
        let c = find_cycle(&g).expect("cyclic");
        assert_valid_cycle(&g, &c);
        assert_eq!(c.len(), 3);
        assert!(!c.nodes().contains(&0));
    }

    #[test]
    fn two_disjoint_cycles_returns_one() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]);
        let c = find_cycle(&g).expect("cyclic");
        assert_valid_cycle(&g, &c);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn is_acyclic_agrees_with_scc() {
        use crate::scc::tarjan;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..200 {
            let n = rng.gen_range(1..20);
            let m = rng.gen_range(0..40);
            let g = DiGraph::from_edges(
                n,
                (0..m).map(|_| (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId))),
            );
            let has_self_loop = g.edges().any(|(u, v)| u == v);
            let scc_acyclic = tarjan(&g).is_acyclic_ignoring_self_loops() && !has_self_loop;
            assert_eq!(is_acyclic(&g), scc_acyclic, "trial {trial} disagrees");
        }
    }

    #[test]
    fn long_path_no_stack_overflow() {
        let n = 200_000;
        let g = DiGraph::from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)));
        let order = topo_sort(&g).expect("path is a DAG");
        assert_eq!(order.len(), n);
    }
}
